//! Live slowdown estimation: the probed latency distribution mapped back
//! through the paper's four models.
//!
//! The offline pipeline predicts `victim`'s slowdown from an impact
//! profile measured in a dedicated campaign. The monitor produces the
//! same kind of profile continuously ([`crate::LiveEstimator::live_profile`],
//! or [`crate::probed_profile_of_app`] for a one-shot measurement), so the
//! identical model machinery turns a *live* probe stream into a *live*
//! per-job slowdown estimate — the number a production scheduler or an
//! operator dashboard would actually watch.

use anp_core::{LatencyProfile, LookupTable, ModelKind};
use anp_workloads::AppKind;

/// One model's live verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LiveSlowdown {
    /// Which of the four models produced it.
    pub model: ModelKind,
    /// Predicted % slowdown of the victim under the probed interference;
    /// `None` when the table carries no degradation data for the victim.
    pub predicted_pct: Option<f64>,
}

/// Maps a live probed profile through all four models: the predicted %
/// slowdown `victim` would suffer if co-scheduled with whatever is
/// currently inflating the probe stream. Model order is
/// [`ModelKind::ALL`].
pub fn live_slowdowns(
    table: &LookupTable,
    victim: AppKind,
    probed: &LatencyProfile,
) -> Vec<LiveSlowdown> {
    ModelKind::ALL
        .into_iter()
        .map(|kind| LiveSlowdown {
            model: kind,
            predicted_pct: kind.model().predict(table, victim, probed),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_core::{Calibration, CompressionEntry, MuPolicy};
    use anp_workloads::CompressionConfig;
    use std::collections::BTreeMap;

    /// A synthetic two-point profile centred on `mean` with spread `sd`.
    fn profile(mean: f64, sd: f64) -> LatencyProfile {
        let xs: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { mean - sd } else { mean + sd })
            .collect();
        LatencyProfile::from_samples(&xs)
    }

    fn synthetic_table() -> LookupTable {
        let calib = Calibration::from_idle_profile(&profile(2.0, 0.2), MuPolicy::MeanLatency)
            .expect("valid idle profile");
        // Three rungs of rising interference; FFTW degrades linearly with
        // the rung's latency inflation.
        let entries = (0..3)
            .map(|i| {
                let mean = 3.0 + i as f64 * 2.0;
                let p = profile(mean, 0.4);
                let utilization = calib.utilization(&p);
                CompressionEntry {
                    config: CompressionConfig::new(1 + i, 25_000, 1),
                    profile: p,
                    utilization,
                    slowdown: BTreeMap::from([(AppKind::Fftw, 10.0 * (i as f64 + 1.0))]),
                }
            })
            .collect();
        LookupTable::from_parts(calib, entries, BTreeMap::new())
    }

    #[test]
    fn all_four_models_answer_for_a_known_victim() {
        let table = synthetic_table();
        let verdicts = live_slowdowns(&table, AppKind::Fftw, &profile(5.0, 0.4));
        assert_eq!(verdicts.len(), 4);
        for v in &verdicts {
            let p = v
                .predicted_pct
                .unwrap_or_else(|| panic!("{} must predict", v.model.name()));
            assert!(
                (5.0..=35.0).contains(&p),
                "{}: {p:.1}% out of the table's range",
                v.model.name()
            );
        }
    }

    #[test]
    fn hotter_probe_stream_predicts_more_slowdown() {
        let table = synthetic_table();
        let cool = live_slowdowns(&table, AppKind::Fftw, &profile(3.0, 0.4));
        let hot = live_slowdowns(&table, AppKind::Fftw, &profile(7.0, 0.4));
        for (c, h) in cool.iter().zip(&hot) {
            assert!(
                h.predicted_pct.unwrap() >= c.predicted_pct.unwrap(),
                "{} must not predict less under more load",
                c.model.name()
            );
        }
    }

    #[test]
    fn unknown_victim_is_a_typed_absence() {
        let table = synthetic_table();
        for v in live_slowdowns(&table, AppKind::Amg, &profile(5.0, 0.4)) {
            assert_eq!(v.predicted_pct, None, "{}", v.model.name());
        }
    }
}
