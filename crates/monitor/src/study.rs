//! The monitor study: accuracy, detection latency, and overhead of the
//! online pipeline, measured against DES ground truth.
//!
//! Three cell families, all fanned out through the index-ordered sweep
//! engine (so `--jobs N` is byte-identical to serial):
//!
//! * **utilization** — per ladder rung, the live streaming estimate vs.
//!   the offline full-window inversion of the *same* simulated load;
//! * **detection** — per application, an arrive-and-depart episode and
//!   the CUSUM's lag (in probe windows) behind each ground-truth edge;
//! * **overhead** — per application, solo runtime vs. runtime with the
//!   probe train co-resident: the monitoring tax on real work.

use anp_core::{
    calibrate, degradation_percent, impact_series, runtime_of, solo_runtime, sweep_recorded,
    Calibration, ExperimentConfig, ExperimentError, LatencyProfile, MuPolicy, Parallelism,
    SweepTelemetry,
};
use anp_metrics::Shift;
use anp_simnet::{SimDuration, SimTime, SwitchConfig};
use anp_workloads::{
    build_compressionb, build_probe_train, AppKind, CompressionConfig, ImpactConfig, RunMode,
};

use crate::scenario::{run_change_scenario, train_config, train_series, ChangeScenario};
use crate::stream::{LiveEstimator, MonitorConfig, WindowEstimate};

/// Everything a monitor study needs fixed up front.
#[derive(Debug, Clone)]
pub struct MonitorOpts {
    /// Fabric and probe parameters (shared with the offline methodology).
    pub cfg: ExperimentConfig,
    /// Streaming-pipeline tuning.
    pub monitor: MonitorConfig,
    /// Applications for the overhead family (the probe-train tax is
    /// measured on every proxy).
    pub apps: Vec<AppKind>,
    /// Applications for the change-point family. Only communication-steady
    /// proxies belong here: a job that ends on a compute phase (Lulesh) or
    /// barely touches the switch (MCB) has job edges that are *invisible*
    /// at the switch, so gating on them would measure the workload's duty
    /// cycle, not the detector.
    pub detect_apps: Vec<AppKind>,
    /// CompressionB rungs for the utilization family.
    pub ladder: Vec<CompressionConfig>,
    /// Gate: max |estimated − true| utilization per rung.
    pub util_tolerance: f64,
    /// Gate: max probe windows between a ground-truth edge and its flag.
    pub detect_budget_windows: u64,
    /// Gate: max probe-train overhead on a co-running job (%).
    pub overhead_budget_pct: f64,
    /// Arrival offset of the detection episodes.
    pub episode_arrival: SimDuration,
    /// Total horizon of the detection episodes.
    pub episode_horizon: SimDuration,
}

impl MonitorOpts {
    /// CI-sized study on the small deterministic fabric (probe layout
    /// widened to 18 nodes so every proxy builds). Finishes in seconds.
    pub fn quick(seed: u64, jobs: usize) -> Self {
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        let cfg = ExperimentConfig {
            switch,
            impact: ImpactConfig {
                period: SimDuration::from_micros(100),
                pairs_per_node: 1,
                ..ImpactConfig::default()
            },
            measure_window: SimDuration::from_millis(5),
            warmup_frac: 0.1,
            run_cap: SimDuration::from_secs(60),
            seed,
            jobs: Parallelism::fixed(jobs),
            audit: false,
        }
        .with_seed(seed);
        MonitorOpts {
            cfg,
            monitor: MonitorConfig {
                window: SimDuration::from_micros(250),
                min_window_samples: 2,
                ..MonitorConfig::default()
            },
            apps: vec![AppKind::Fftw, AppKind::Lulesh, AppKind::Mcb, AppKind::Milc],
            detect_apps: vec![AppKind::Fftw, AppKind::Milc],
            ladder: crate::gated_ladder(),
            util_tolerance: 0.05,
            detect_budget_windows: 6,
            overhead_budget_pct: 5.0,
            episode_arrival: SimDuration::from_millis(2),
            episode_horizon: SimDuration::from_millis(12),
        }
    }

    /// Paper-sized study on the Cab fabric with all six applications.
    pub fn full(seed: u64, jobs: usize) -> Self {
        let cfg = ExperimentConfig::cab().with_seed(seed).with_jobs(jobs);
        MonitorOpts {
            monitor: MonitorConfig::default(),
            apps: AppKind::ALL.to_vec(),
            detect_apps: vec![AppKind::Fftw, AppKind::Milc],
            ladder: crate::gated_ladder(),
            util_tolerance: 0.15,
            detect_budget_windows: 12,
            overhead_budget_pct: 5.0,
            episode_arrival: SimDuration::from_millis(20),
            episode_horizon: SimDuration::from_millis(120),
            cfg,
        }
    }
}

/// One utilization-accuracy cell: live streaming estimate vs. the
/// offline inversion on one ladder rung.
#[derive(Debug, Clone)]
pub struct UtilizationRow {
    /// The rung's CompressionB label.
    pub rung: String,
    /// Offline ground truth: full-window profile through P-K inversion.
    pub true_util: f64,
    /// The live estimator's final reading on the jittered probe stream.
    pub est_util: f64,
    /// Probe windows the estimator closed while converging.
    pub windows: usize,
}

impl UtilizationRow {
    /// |estimated − true| utilization.
    pub fn abs_error(&self) -> f64 {
        (self.est_util - self.true_util).abs()
    }
}

/// One change-point cell: detection lags (in probe windows) behind the
/// two ground-truth edges of an arrive-and-depart episode.
#[derive(Debug, Clone)]
pub struct DetectionRow {
    /// The arriving (and departing) application.
    pub app: AppKind,
    /// Windows between the arrival instant and the first Up flag at or
    /// after it (`None`: never flagged).
    pub arrival_lag: Option<u64>,
    /// Windows between the departure instant and the first Down flag at
    /// or after it (`None`: never flagged, or the job outlived the
    /// horizon).
    pub departure_lag: Option<u64>,
    /// Whether the episode's job actually departed inside the horizon.
    pub departed: bool,
    /// Total probe windows in the episode.
    pub windows: u64,
}

/// One overhead cell: what the always-on probe train costs a real job.
#[derive(Debug, Clone)]
pub struct OverheadRow {
    /// The measured application.
    pub app: AppKind,
    /// Solo runtime, no monitor.
    pub solo: SimDuration,
    /// Runtime with the probe train co-resident.
    pub monitored: SimDuration,
}

impl OverheadRow {
    /// Probe-train overhead as percent slowdown.
    pub fn overhead_pct(&self) -> f64 {
        degradation_percent(self.solo, self.monitored)
    }
}

/// The assembled study result.
#[derive(Debug, Clone)]
pub struct MonitorReport {
    /// The queue-model calibration behind every utilization estimate.
    pub calib: Calibration,
    /// Utilization accuracy, ladder order.
    pub utilization: Vec<UtilizationRow>,
    /// Detection latency, app order.
    pub detection: Vec<DetectionRow>,
    /// Probe overhead, app order.
    pub overhead: Vec<OverheadRow>,
    /// Every closed estimation window, keyed by cell label
    /// (`util:RUNG` / `detect:APP`) — the raw material of the
    /// `anp-bench-v5` per-window telemetry records.
    pub windows: Vec<(String, Vec<WindowEstimate>)>,
    /// Sweep telemetry across all three families.
    pub telemetry: SweepTelemetry,
}

/// One per-window telemetry record of the `anp-bench-v5` `monitor` array.
#[derive(Debug, Clone)]
pub struct MonitorRecord {
    /// The study cell the window belongs to (`util:RUNG`, `detect:APP`).
    pub cell: String,
    /// Zero-based window index within the cell's probe stream.
    pub window: u64,
    /// Simulated end of the window (µs).
    pub end_us: f64,
    /// Probe samples in the window.
    pub samples: usize,
    /// Raw window mean latency (µs); `null` for under-populated windows.
    pub mean_us: Option<f64>,
    /// EWMA-smoothed mean latency (µs).
    pub smooth_mean_us: f64,
    /// Live utilization estimate at the window's close.
    pub utilization: f64,
    /// CUSUM verdict (`"up"`, `"down"`, or `null`).
    pub shift: Option<&'static str>,
}

impl MonitorRecord {
    /// Serializes the record as a JSON object.
    pub fn to_json(&self) -> String {
        let mean = self.mean_us.map_or("null".to_owned(), |m| format!("{m}"));
        let shift = self.shift.map_or("null".to_owned(), |s| format!("\"{s}\""));
        format!(
            "{{\"cell\":\"{}\",\"window\":{},\"end_us\":{},\"samples\":{},\
             \"mean_us\":{},\"smooth_mean_us\":{},\"utilization\":{},\"shift\":{}}}",
            self.cell,
            self.window,
            self.end_us,
            self.samples,
            mean,
            self.smooth_mean_us,
            self.utilization,
            shift
        )
    }
}

/// Flattens a report's per-window estimates into `anp-bench-v5` records,
/// cell order then window order.
pub fn monitor_records(report: &MonitorReport) -> Vec<MonitorRecord> {
    report
        .windows
        .iter()
        .flat_map(|(cell, windows)| {
            windows.iter().map(move |w| MonitorRecord {
                cell: cell.clone(),
                window: w.index,
                end_us: w.end.as_micros_f64(),
                samples: w.samples,
                mean_us: w.mean_us,
                smooth_mean_us: w.smooth_mean_us,
                utilization: w.utilization,
                shift: w.shift.map(|s| match s {
                    Shift::Up => "up",
                    Shift::Down => "down",
                }),
            })
        })
        .collect()
}

/// Runs the probe train against one endless workload and returns the
/// streaming pipeline's reading plus every closed window.
///
/// The accuracy gate compares against an offline *whole-window* truth, so
/// the fair live-side reading is the time average of the per-window means
/// (still a streaming quantity — one running sum), not the EWMA's
/// final instantaneous value, which on bursty rungs reflects whichever
/// phase of the burst cycle the stream happened to end in.
fn live_estimate(
    cfg: &ExperimentConfig,
    monitor: &MonitorConfig,
    calib: &Calibration,
    idle_live: &LatencyProfile,
    workload: anp_core::Members,
) -> Result<(f64, Vec<WindowEstimate>), ExperimentError> {
    let series = train_series(cfg, Some(workload))?;
    let mut est = LiveEstimator::new(monitor.clone(), *calib, idle_live);
    let windows = est.run(series.samples());
    let means: Vec<f64> = windows.iter().filter_map(|w| w.mean_us).collect();
    let util = if means.is_empty() {
        est.utilization()
    } else {
        calib.utilization_from_sojourn(means.iter().sum::<f64>() / means.len() as f64)
    };
    Ok((util, windows))
}

/// Runs the full study. `progress` receives one line per completed cell
/// family (wall-clock-free, so callers can mirror it to stdout without
/// breaking byte-identity).
pub fn run_monitor_study(
    opts: &MonitorOpts,
    mut progress: impl FnMut(&str),
) -> Result<MonitorReport, ExperimentError> {
    let cfg = &opts.cfg;
    // Calibration is shared by the offline truth and the live pipeline;
    // the CUSUM references the *train's* own idle footprint so jitter
    // noise is part of its in-control model.
    let calib = calibrate(cfg, MuPolicy::MinLatency)?;
    let idle_live = train_series(cfg, None)?.profile();
    progress(&format!(
        "calibrated: idle {:.3}us (offline) / {:.3}us (train), mu {:.3}",
        calib.idle_mean,
        idle_live.mean(),
        calib.mu
    ));
    // Family 1: utilization accuracy over the ladder.
    let util_tasks: Vec<(String, _)> = opts
        .ladder
        .iter()
        .map(|comp| {
            let comp = *comp;
            let idle_live = idle_live.clone();
            let monitor = opts.monitor.clone();
            let label = format!("monitor:util:{}", comp.label());
            (
                label,
                move || -> Result<(UtilizationRow, Vec<WindowEstimate>), ExperimentError> {
                    let noise = build_compressionb(&comp, cfg.switch.nodes, 2, cfg.switch.cpu_hz);
                    let truth_series = impact_series(cfg, Some(noise))?;
                    let true_util = calib.utilization(&truth_series.profile());
                    let noise = build_compressionb(&comp, cfg.switch.nodes, 2, cfg.switch.cpu_hz);
                    let (est_util, windows) =
                        live_estimate(cfg, &monitor, &calib, &idle_live, noise)?;
                    let row = UtilizationRow {
                        rung: comp.label(),
                        true_util,
                        est_util,
                        windows: windows.len(),
                    };
                    Ok((row, windows))
                },
            )
        })
        .collect();
    let (util_results, mut telemetry) = sweep_recorded("monitor-util", cfg.jobs, util_tasks);
    telemetry.name = "monitor-study".to_owned();
    let mut window_log: Vec<(String, Vec<WindowEstimate>)> = Vec::new();
    let mut utilization = Vec::new();
    for cell in util_results {
        let (row, windows) = cell?;
        window_log.push((format!("util:{}", row.rung), windows));
        utilization.push(row);
    }
    for row in &utilization {
        progress(&format!(
            "util {}: true {:.3} est {:.3} (err {:.3}, {} windows)",
            row.rung,
            row.true_util,
            row.est_util,
            row.abs_error(),
            row.windows
        ));
    }

    // Family 2: change-point detection latency.
    let detect_tasks: Vec<(String, _)> = opts
        .detect_apps
        .iter()
        .map(|&app| {
            let idle_live = idle_live.clone();
            let monitor = opts.monitor.clone();
            let scenario = ChangeScenario {
                app,
                arrival: opts.episode_arrival,
                iterations: 1,
                horizon: opts.episode_horizon,
            };
            let label = format!("monitor:detect:{}", app.name());
            (
                label,
                move || -> Result<(DetectionRow, Vec<WindowEstimate>), ExperimentError> {
                    let episode = run_change_scenario(cfg, &scenario)?;
                    let mut est = LiveEstimator::new(monitor, calib, &idle_live);
                    let windows = est.run(episode.series.samples());
                    let lag_behind = |edge: SimTime, want: Shift| -> Option<u64> {
                        let edge_idx = windows.iter().position(|w| w.end >= edge)?;
                        windows[edge_idx..]
                            .iter()
                            .position(|w| w.shift == Some(want))
                            .map(|off| off as u64)
                    };
                    let row = DetectionRow {
                        app,
                        arrival_lag: lag_behind(episode.arrival, Shift::Up),
                        departure_lag: episode.departure.and_then(|d| lag_behind(d, Shift::Down)),
                        departed: episode.departure.is_some(),
                        windows: windows.len() as u64,
                    };
                    Ok((row, windows))
                },
            )
        })
        .collect();
    let (detect_results, t) = sweep_recorded("monitor-detect", cfg.jobs, detect_tasks);
    telemetry.absorb(t);
    let mut detection = Vec::new();
    for cell in detect_results {
        let (row, windows) = cell?;
        window_log.push((format!("detect:{}", row.app.name()), windows));
        detection.push(row);
    }
    for row in &detection {
        progress(&format!(
            "detect {}: arrival lag {} departure lag {} ({} windows)",
            row.app.name(),
            lag_str(row.arrival_lag),
            lag_str(row.departure_lag),
            row.windows
        ));
    }

    // Family 3: probe overhead on real jobs.
    let overhead_tasks: Vec<(String, _)> = opts
        .apps
        .iter()
        .map(|&app| {
            let label = format!("monitor:overhead:{}", app.name());
            (label, move || -> Result<OverheadRow, ExperimentError> {
                let solo = solo_runtime(cfg, app)?;
                let members = app.build(RunMode::Iterations(0), cfg.workload_seed(app as u64 + 1));
                let (train, _sink) = build_probe_train(&train_config(cfg), cfg.switch.nodes);
                let monitored = runtime_of(cfg, app.name(), members, Some(train))?;
                Ok(OverheadRow {
                    app,
                    solo,
                    monitored,
                })
            })
        })
        .collect();
    let (overhead_results, t) = sweep_recorded("monitor-overhead", cfg.jobs, overhead_tasks);
    telemetry.absorb(t);
    let overhead = overhead_results
        .into_iter()
        .collect::<Result<Vec<_>, _>>()?;
    for row in &overhead {
        progress(&format!(
            "overhead {}: solo {} monitored {} ({:+.2}%)",
            row.app.name(),
            row.solo,
            row.monitored,
            row.overhead_pct()
        ));
    }

    Ok(MonitorReport {
        calib,
        utilization,
        detection,
        overhead,
        windows: window_log,
        telemetry,
    })
}

fn lag_str(lag: Option<u64>) -> String {
    match lag {
        Some(n) => format!("{n}w"),
        None => "-".to_owned(),
    }
}

/// Renders the three result tables (no wall clock — callers print this
/// to stdout and it stays byte-identical across `--jobs`).
pub fn render_report(opts: &MonitorOpts, report: &MonitorReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "monitor study: {} rungs, {} apps, window {}, tolerance {:.2}\n\n",
        report.utilization.len(),
        opts.apps.len(),
        opts.monitor.window,
        opts.util_tolerance
    ));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>8} {:>8}\n",
        "rung", "true", "est", "err", "windows"
    ));
    for r in &report.utilization {
        out.push_str(&format!(
            "{:<22} {:>9.3} {:>9.3} {:>8.3} {:>8}\n",
            r.rung,
            r.true_util,
            r.est_util,
            r.abs_error(),
            r.windows
        ));
    }
    out.push_str(&format!(
        "\n{:<8} {:>12} {:>14} {:>9}\n",
        "app", "arrival-lag", "departure-lag", "windows"
    ));
    for r in &report.detection {
        out.push_str(&format!(
            "{:<8} {:>12} {:>14} {:>9}\n",
            r.app.name(),
            lag_str(r.arrival_lag),
            lag_str(r.departure_lag),
            r.windows
        ));
    }
    out.push_str(&format!(
        "\n{:<8} {:>12} {:>12} {:>9}\n",
        "app", "solo", "monitored", "overhead"
    ));
    for r in &report.overhead {
        out.push_str(&format!(
            "{:<8} {:>12} {:>12} {:>8.2}%\n",
            r.app.name(),
            format!("{}", r.solo),
            format!("{}", r.monitored),
            r.overhead_pct()
        ));
    }
    out
}

/// Checks every gate of the study; returns one violation string per
/// failed gate (empty: all green).
pub fn gate_violations(opts: &MonitorOpts, report: &MonitorReport) -> Vec<String> {
    let mut out = Vec::new();
    for r in &report.utilization {
        if r.abs_error() > opts.util_tolerance {
            out.push(format!(
                "util {}: |{:.3} - {:.3}| = {:.3} exceeds tolerance {:.3}",
                r.rung,
                r.est_util,
                r.true_util,
                r.abs_error(),
                opts.util_tolerance
            ));
        }
    }
    for r in &report.detection {
        match r.arrival_lag {
            Some(lag) if lag <= opts.detect_budget_windows => {}
            Some(lag) => out.push(format!(
                "detect {}: arrival lag {lag} windows exceeds budget {}",
                r.app.name(),
                opts.detect_budget_windows
            )),
            None => out.push(format!("detect {}: arrival never flagged", r.app.name())),
        }
        if r.departed {
            match r.departure_lag {
                Some(lag) if lag <= opts.detect_budget_windows => {}
                Some(lag) => out.push(format!(
                    "detect {}: departure lag {lag} windows exceeds budget {}",
                    r.app.name(),
                    opts.detect_budget_windows
                )),
                None => out.push(format!("detect {}: departure never flagged", r.app.name())),
            }
        } else {
            out.push(format!(
                "detect {}: job outlived the episode horizon",
                r.app.name()
            ));
        }
    }
    for r in &report.overhead {
        if r.overhead_pct() > opts.overhead_budget_pct {
            out.push(format!(
                "overhead {}: {:+.2}% exceeds budget {:.2}%",
                r.app.name(),
                r.overhead_pct(),
                opts.overhead_budget_pct
            ));
        }
    }
    out
}
