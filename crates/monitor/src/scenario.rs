//! DES co-execution scenarios: the monitor job living next to real
//! workloads inside one simulated switch.
//!
//! Three drivers cover what the monitor needs measured:
//!
//! * [`train_series`] — the probe train next to an optional endless
//!   workload (the online counterpart of
//!   [`anp_core::impact_series`], with the jittered comb instead of the
//!   fixed-period one);
//! * [`probed_profile_of_app`] — the live impact footprint of one
//!   application, as the `probed:*` placement policy consumes it;
//! * [`run_change_scenario`] — a workload that *arrives* mid-run and
//!   *departs* before the horizon, with both ground-truth instants
//!   recorded, so change-point detection latency can be gated in probe
//!   windows rather than hand-waved.

use anp_core::{ExperimentConfig, ExperimentError, LatencyProfile, Members, TimedSeries};
use anp_simmpi::{Ctx, Op, Program, World};
use anp_simnet::{SimDuration, SimTime};
use anp_workloads::{build_probe_train, AppKind, RunMode, TrainConfig};

/// Wraps a program so its first op is a sleep: the job exists from time
/// zero (ranks are placed, the switch knows them) but stays silent until
/// `delay` — an arrival, as the monitor on the switch experiences one.
struct Delayed {
    delay: SimDuration,
    inner: Box<dyn Program>,
    started: bool,
}

impl Program for Delayed {
    fn next_op(&mut self, ctx: &Ctx) -> Op {
        if !self.started {
            self.started = true;
            if self.delay > SimDuration::ZERO {
                return Op::Sleep(self.delay);
            }
        }
        self.inner.next_op(ctx)
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// Delays every member of a job by the same offset (collective phases
/// stay aligned; the whole job just starts later).
pub fn delayed_members(members: Members, delay: SimDuration) -> Members {
    members
        .into_iter()
        .map(|(inner, node)| {
            (
                Box::new(Delayed {
                    delay,
                    inner,
                    started: false,
                }) as Box<dyn Program>,
                node,
            )
        })
        .collect()
}

/// The probe train's seed for a study configuration: derived from the
/// experiment seed with its own salt so the jitter stream never collides
/// with a workload's seed.
pub fn train_seed(cfg: &ExperimentConfig) -> u64 {
    cfg.workload_seed(0x300_717)
}

/// The train configuration a study uses: the study's probe shape with
/// the default jitter, seeded from the experiment seed.
pub fn train_config(cfg: &ExperimentConfig) -> TrainConfig {
    TrainConfig::new(cfg.impact.clone(), train_seed(cfg))
}

/// Runs the jittered probe train next to an optional endless workload
/// for `cfg.measure_window`, returning the timed probe series after
/// warm-up removal. The online counterpart of
/// [`anp_core::impact_series`].
pub fn train_series(
    cfg: &ExperimentConfig,
    workload: Option<Members>,
) -> Result<TimedSeries, ExperimentError> {
    train_series_until(cfg, workload, SimTime::ZERO + cfg.measure_window).map(|(series, _)| series)
}

/// [`train_series`] with an explicit horizon; also returns the finish
/// time of the co-running job when it completed before the horizon
/// (ground truth for departure detection).
fn train_series_until(
    cfg: &ExperimentConfig,
    workload: Option<Members>,
    horizon: SimTime,
) -> Result<(TimedSeries, Option<SimTime>), ExperimentError> {
    let mut world = World::new(cfg.switch.clone());
    if cfg.audit {
        world.enable_audit();
    }
    let (probe_members, sink) = build_probe_train(&train_config(cfg), cfg.switch.nodes);
    let probe = world.add_job("probe-train", probe_members);
    let workload_job = workload.map(|members| world.add_job("workload", members));
    let (max_events, wall_deadline) = anp_core::supervise::world_allowance();
    world.set_run_budget(max_events, wall_deadline);
    world.run_until(horizon);
    anp_core::sweep::note_events(world.events_processed());
    if let Some(report) = world.take_audit_report() {
        if !report.is_clean() {
            return Err(ExperimentError::Invariant(report));
        }
    }
    if world.budget_exhausted() {
        return Err(ExperimentError::Budget(world.stall_report(probe)));
    }
    let finish = workload_job.and_then(|job| world.job_finish_time(job));
    let samples = sink.borrow();
    if samples.is_empty() {
        return Err(ExperimentError::NoSamples);
    }
    Ok((
        TimedSeries::with_warmup(samples.clone(), cfg.warmup_frac),
        finish,
    ))
}

/// The live impact footprint of `app`: the probe train co-runs with an
/// endless copy of the application and the resulting probe series is
/// collapsed to a latency profile. This is what the `probed:*` placement
/// policy feeds the paper's models — a profile measured *by the monitor*
/// rather than by a dedicated offline campaign. Workload seeding matches
/// [`anp_core::impact_series_of_app`] exactly, so probed and offline
/// profiles describe the same simulated execution.
pub fn probed_profile_of_app(
    cfg: &ExperimentConfig,
    app: AppKind,
) -> Result<LatencyProfile, ExperimentError> {
    let members = app.build(RunMode::Endless, cfg.workload_seed(app as u64 + 1));
    Ok(train_series(cfg, Some(members))?.profile())
}

/// A single arrive-and-depart episode on one switch.
#[derive(Debug, Clone)]
pub struct ChangeScenario {
    /// The application that arrives.
    pub app: AppKind,
    /// When it starts communicating.
    pub arrival: SimDuration,
    /// Iterations it runs before departing (`RunMode::Iterations`).
    pub iterations: u32,
    /// Total simulated horizon of the episode.
    pub horizon: SimDuration,
}

/// What an episode measured: the probe stream plus the ground-truth
/// instants the detector is judged against.
#[derive(Debug, Clone)]
pub struct ChangeOutcome {
    /// The probe series over the whole horizon (no warm-up removal — the
    /// pre-arrival quiet is signal here, not warm-up).
    pub series: TimedSeries,
    /// When the workload started communicating (ground truth).
    pub arrival: SimTime,
    /// When the workload finished, if it did before the horizon.
    pub departure: Option<SimTime>,
}

/// Runs one arrive-and-depart episode: the probe train samples the whole
/// horizon while the scenario's application sleeps until `arrival`, runs
/// `iterations` iterations, and stops. The caller feeds
/// [`ChangeOutcome::series`] to a [`crate::LiveEstimator`] and compares
/// flagged windows against the two ground-truth instants.
pub fn run_change_scenario(
    cfg: &ExperimentConfig,
    scenario: &ChangeScenario,
) -> Result<ChangeOutcome, ExperimentError> {
    let seed = cfg.workload_seed(scenario.app as u64 + 1);
    let members = scenario
        .app
        .build(RunMode::Iterations(scenario.iterations), seed);
    let members = delayed_members(members, scenario.arrival);
    let mut probe_cfg = cfg.clone();
    // The whole episode is the measurement; no warm-up trimming.
    probe_cfg.warmup_frac = 0.0;
    let (series, departure) =
        train_series_until(&probe_cfg, Some(members), SimTime::ZERO + scenario.horizon)?;
    Ok(ChangeOutcome {
        series,
        arrival: SimTime::ZERO + scenario.arrival,
        departure,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_core::Parallelism;
    use anp_simnet::SwitchConfig;
    use anp_workloads::ImpactConfig;

    fn quick_cfg() -> ExperimentConfig {
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        ExperimentConfig {
            switch,
            impact: ImpactConfig {
                period: SimDuration::from_micros(100),
                pairs_per_node: 1,
                ..ImpactConfig::default()
            },
            measure_window: SimDuration::from_millis(5),
            warmup_frac: 0.1,
            run_cap: SimDuration::from_secs(60),
            seed: 7,
            jobs: Parallelism::fixed(1),
            audit: false,
        }
    }

    #[test]
    fn idle_train_series_matches_fixed_probe_baseline() {
        let cfg = quick_cfg();
        let live = train_series(&cfg, None).unwrap().profile();
        let offline = anp_core::idle_profile(&cfg).unwrap();
        assert!(
            (live.mean() - offline.mean()).abs() < 0.1,
            "jittered idle mean {:.3} vs fixed {:.3}",
            live.mean(),
            offline.mean()
        );
    }

    #[test]
    fn probed_profile_shifts_under_an_app() {
        let cfg = quick_cfg();
        let idle = train_series(&cfg, None).unwrap().profile();
        let loaded = probed_profile_of_app(&cfg, AppKind::Fftw).unwrap();
        assert!(
            loaded.mean() > idle.mean() * 1.05,
            "FFTW must inflate probed latency: idle {:.3} vs loaded {:.3}",
            idle.mean(),
            loaded.mean()
        );
    }

    #[test]
    fn change_scenario_reports_both_ground_truth_instants() {
        let cfg = quick_cfg();
        let scenario = ChangeScenario {
            app: AppKind::Fftw,
            arrival: SimDuration::from_millis(2),
            iterations: 1,
            horizon: SimDuration::from_millis(12),
        };
        let out = run_change_scenario(&cfg, &scenario).unwrap();
        assert_eq!(out.arrival, SimTime::from_millis(2));
        let departure = out.departure.expect("one iteration fits the horizon");
        assert!(departure > out.arrival);
        assert!(departure < SimTime::ZERO + scenario.horizon);
        // The probe stream spans the episode on both sides of the edges.
        let (start, end) = out.series.span();
        assert!(start < out.arrival);
        assert!(end > departure);
    }

    #[test]
    fn scenarios_are_deterministic() {
        let cfg = quick_cfg();
        let scenario = ChangeScenario {
            app: AppKind::Mcb,
            arrival: SimDuration::from_millis(1),
            iterations: 1,
            horizon: SimDuration::from_millis(8),
        };
        let a = run_change_scenario(&cfg, &scenario).unwrap();
        let b = run_change_scenario(&cfg, &scenario).unwrap();
        assert_eq!(a.series.samples(), b.series.samples());
        assert_eq!(a.departure, b.departure);
    }
}
