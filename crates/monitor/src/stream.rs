//! The streaming estimation pipeline: probe samples in, per-window live
//! estimates out.
//!
//! The offline methodology collects a whole measurement window, collapses
//! it to a [`LatencyProfile`], and only then inverts the queue model. The
//! [`LiveEstimator`] does the same inversion *while the stream is still
//! flowing*: probe samples are bucketed into fixed sim-time windows; each
//! closed window yields a raw mean sojourn, an EWMA-smoothed mean (the
//! live utilization input), sliding-window quantiles over recent samples,
//! and a CUSUM verdict on whether the interference regime just shifted.

use anp_core::{Calibration, LatencyProfile};
use anp_metrics::{Cusum, Ewma, Shift, WindowedQuantiles};
use anp_simnet::{SimDuration, SimTime};
use anp_workloads::ProbeSample;

/// Tuning knobs of the live estimation pipeline.
#[derive(Debug, Clone)]
pub struct MonitorConfig {
    /// Width of one estimation window in simulated time. Every closed
    /// window emits one [`WindowEstimate`].
    pub window: SimDuration,
    /// Windows with fewer probe samples than this are still closed but
    /// carry no estimate update (the previous smoothed state persists).
    pub min_window_samples: usize,
    /// EWMA smoothing factor applied across window means.
    pub ewma_alpha: f64,
    /// How many recent probe samples back the sliding quantile window
    /// (and the live profile handed to the slowdown models).
    pub quantile_capacity: usize,
    /// CUSUM slack, in units of the idle profile's σ.
    pub cusum_k: f64,
    /// CUSUM decision threshold, in units of the idle profile's σ.
    pub cusum_h: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: SimDuration::from_micros(500),
            min_window_samples: 3,
            ewma_alpha: 0.3,
            quantile_capacity: 256,
            cusum_k: 0.5,
            cusum_h: 4.0,
        }
    }
}

/// One closed estimation window.
#[derive(Debug, Clone)]
pub struct WindowEstimate {
    /// Zero-based window index since the estimator started.
    pub index: u64,
    /// Simulated end of the window.
    pub end: SimTime,
    /// Probe samples that landed in the window.
    pub samples: usize,
    /// Raw mean one-way latency of this window (µs); `None` when the
    /// window was under-populated.
    pub mean_us: Option<f64>,
    /// EWMA-smoothed mean latency across windows (µs).
    pub smooth_mean_us: f64,
    /// Median of the sliding sample window (µs).
    pub p50_us: Option<f64>,
    /// 95th percentile of the sliding sample window (µs).
    pub p95_us: Option<f64>,
    /// Live switch-utilization estimate, from the smoothed mean through
    /// the queue model's P-K inversion.
    pub utilization: f64,
    /// CUSUM verdict: did this window's mean end a regime?
    pub shift: Option<Shift>,
}

/// The streaming pipeline: calibrated once against the idle switch, then
/// fed probe samples in timestamp order.
#[derive(Debug, Clone)]
pub struct LiveEstimator {
    cfg: MonitorConfig,
    calib: Calibration,
    ewma: Ewma,
    quantiles: WindowedQuantiles,
    cusum: Cusum,
    window_end: Option<SimTime>,
    window_samples: Vec<f64>,
    next_index: u64,
}

impl LiveEstimator {
    /// Builds the pipeline. `idle` is the idle-switch probe profile (the
    /// calibration measurement): its mean/σ become the CUSUM's initial
    /// in-control reference, and `calib` (derived from the same profile)
    /// provides the utilization inversion.
    pub fn new(cfg: MonitorConfig, calib: Calibration, idle: &LatencyProfile) -> Self {
        let mut cusum = Cusum::new(cfg.cusum_k, cfg.cusum_h);
        // Reference σ: the idle spread, floored at 1 % of the idle mean so
        // a perfectly deterministic fabric still standardizes sanely.
        let sd = idle.std_dev().max(idle.mean() * 0.01).max(1e-9);
        cusum.set_reference(idle.mean(), sd);
        LiveEstimator {
            quantiles: WindowedQuantiles::new(cfg.quantile_capacity),
            ewma: Ewma::new(cfg.ewma_alpha),
            cfg,
            calib,
            cusum,
            window_end: None,
            window_samples: Vec::new(),
            next_index: 0,
        }
    }

    /// The estimator's window width.
    pub fn window(&self) -> SimDuration {
        self.cfg.window
    }

    /// Feeds one probe sample; returns the estimates of every window the
    /// sample's timestamp closed (usually zero or one; more when the
    /// probe stream had a long gap).
    pub fn push(&mut self, sample: &ProbeSample) -> Vec<WindowEstimate> {
        let mut closed = Vec::new();
        // Long probe gaps can skip whole windows; close them too (they
        // are empty, which keeps window indices aligned to sim time).
        let mut end = *self.window_end.get_or_insert(sample.at + self.cfg.window);
        while sample.at >= end {
            closed.push(self.close_window(end));
            end += self.cfg.window;
        }
        self.window_samples.push(sample.one_way_us);
        self.quantiles.push(sample.one_way_us);
        closed
    }

    /// Closes the window ending at `end` and starts the next one.
    fn close_window(&mut self, end: SimTime) -> WindowEstimate {
        let populated = self.window_samples.len() >= self.cfg.min_window_samples.max(1);
        let mean_us = populated
            .then(|| self.window_samples.iter().sum::<f64>() / self.window_samples.len() as f64);
        let mut shift = None;
        if let Some(m) = mean_us {
            self.ewma.push(m);
            shift = self.cusum.push(m);
        }
        let est = WindowEstimate {
            index: self.next_index,
            end,
            samples: self.window_samples.len(),
            mean_us,
            smooth_mean_us: self.ewma.mean(),
            p50_us: self.quantiles.median(),
            p95_us: self.quantiles.quantile(0.95),
            utilization: self.utilization(),
            shift,
        };
        self.next_index += 1;
        self.window_end = Some(end + self.cfg.window);
        self.window_samples.clear();
        est
    }

    /// Feeds a whole sample slice (timestamp order), returning every
    /// closed window in order.
    pub fn run(&mut self, samples: &[ProbeSample]) -> Vec<WindowEstimate> {
        let mut out = Vec::new();
        for s in samples {
            out.extend(self.push(s));
        }
        out
    }

    /// The current live utilization estimate: the EWMA-smoothed mean
    /// sojourn inverted through the P-K formula. Zero until the first
    /// populated window closes.
    pub fn utilization(&self) -> f64 {
        if self.ewma.count() == 0 {
            return 0.0;
        }
        self.calib.utilization_from_sojourn(self.ewma.mean())
    }

    /// The live latency profile: the sliding window of recent raw probe
    /// samples collapsed to a [`LatencyProfile`] — what the paper's four
    /// slowdown models consume. `None` until any sample arrived.
    pub fn live_profile(&self) -> Option<LatencyProfile> {
        if self.quantiles.is_empty() {
            return None;
        }
        // The quantile window already holds the most recent samples,
        // including the still-open window's (both are pushed together).
        let recent: Vec<f64> = self.quantiles.samples().collect();
        Some(LatencyProfile::from_samples(&recent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idle_profile(mean: f64, sd: f64, n: usize) -> LatencyProfile {
        // Deterministic two-point sample with the requested moments.
        let mut xs = Vec::with_capacity(n);
        for i in 0..n {
            xs.push(if i % 2 == 0 { mean - sd } else { mean + sd });
        }
        LatencyProfile::from_samples(&xs)
    }

    fn calib_for(idle: &LatencyProfile) -> Calibration {
        Calibration::from_idle_profile(idle, anp_core::MuPolicy::MinLatency).unwrap()
    }

    fn sample(at_us: u64, lat: f64) -> ProbeSample {
        ProbeSample {
            at: SimTime::from_micros(at_us),
            one_way_us: lat,
        }
    }

    #[test]
    fn windows_close_on_time_and_track_the_mean() {
        let idle = idle_profile(2.5, 0.1, 100);
        let cfg = MonitorConfig {
            window: SimDuration::from_micros(100),
            min_window_samples: 2,
            ..MonitorConfig::default()
        };
        let mut est = LiveEstimator::new(cfg, calib_for(&idle), &idle);
        let mut windows = Vec::new();
        for i in 0..40u64 {
            windows.extend(est.push(&sample(10 + i * 25, 2.5)));
        }
        assert!(windows.len() >= 8, "40 samples / 4 per window");
        for w in &windows {
            assert_eq!(w.mean_us, Some(2.5));
            assert!((w.smooth_mean_us - 2.5).abs() < 1e-9);
            assert!(w.shift.is_none(), "steady stream, no change point");
        }
        // Indices are consecutive from zero.
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(w.index, i as u64);
        }
    }

    #[test]
    fn utilization_rises_when_latency_inflates() {
        let idle = idle_profile(2.5, 0.1, 100);
        let cfg = MonitorConfig {
            window: SimDuration::from_micros(100),
            min_window_samples: 2,
            ..MonitorConfig::default()
        };
        let mut est = LiveEstimator::new(cfg, calib_for(&idle), &idle);
        for i in 0..40u64 {
            est.push(&sample(10 + i * 25, 2.5));
        }
        let low = est.utilization();
        for i in 40..120u64 {
            est.push(&sample(10 + i * 25, 7.5));
        }
        let high = est.utilization();
        assert!(
            high > low + 0.2,
            "3x latency must read as much higher utilization: {low:.3} -> {high:.3}"
        );
        assert!((0.0..=1.0).contains(&high));
    }

    #[test]
    fn change_points_fire_on_shift_and_quiet_otherwise() {
        let idle = idle_profile(2.5, 0.1, 100);
        let cfg = MonitorConfig {
            window: SimDuration::from_micros(100),
            min_window_samples: 2,
            ..MonitorConfig::default()
        };
        let mut est = LiveEstimator::new(cfg, calib_for(&idle), &idle);
        let mut shifts = Vec::new();
        // 10 idle windows, then 10 loaded, then 10 idle again.
        for i in 0..120u64 {
            let lat = if (40..80).contains(&i) { 7.5 } else { 2.5 };
            for w in est.push(&sample(10 + i * 25, lat)) {
                if let Some(s) = w.shift {
                    shifts.push((w.index, s));
                }
            }
        }
        assert!(
            shifts.iter().any(|&(_, s)| s == Shift::Up),
            "arrival must be flagged: {shifts:?}"
        );
        assert!(
            shifts.iter().any(|&(_, s)| s == Shift::Down),
            "departure must be flagged: {shifts:?}"
        );
        assert!(
            shifts.len() <= 4,
            "a two-edge scenario must not alarm continuously: {shifts:?}"
        );
    }

    #[test]
    fn empty_gap_windows_keep_indices_aligned() {
        let idle = idle_profile(2.5, 0.1, 100);
        let cfg = MonitorConfig {
            window: SimDuration::from_micros(100),
            min_window_samples: 2,
            ..MonitorConfig::default()
        };
        let mut est = LiveEstimator::new(cfg, calib_for(&idle), &idle);
        est.push(&sample(10, 2.5));
        est.push(&sample(20, 2.5));
        // A sample 5 windows later closes the stale window plus the empty
        // ones in between.
        let closed = est.push(&sample(560, 2.5));
        assert!(
            closed.len() >= 4,
            "gap windows must close: {}",
            closed.len()
        );
        assert!(closed[1].mean_us.is_none(), "gap windows carry no mean");
    }
}
