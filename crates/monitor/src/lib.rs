//! # anp-monitor — online switch-utilization estimation from live probes
//!
//! The paper's methodology is *active measurement*: probe latencies on a
//! shared switch reveal how much capability running applications consume.
//! Everything else in this workspace applies that idea offline — a
//! dedicated campaign measures, a table stores, a scheduler consults.
//! This crate closes the online loop:
//!
//! * [`probetrain`](anp_workloads::probetrain) (in `anp-workloads`)
//!   emits seeded, jittered ImpactB probe trains that co-run with real
//!   workloads inside the DES;
//! * [`LiveEstimator`] streams the probe latencies through EWMA moments,
//!   sliding-window quantiles, and the P-K inversion into a live
//!   switch-utilization estimate, window by window;
//! * a CUSUM change-point detector ([`anp_metrics::Cusum`]) flags
//!   interference regime shifts when jobs arrive or depart;
//! * [`live_slowdowns`] maps the probed latency distribution back
//!   through the paper's four models to a live per-job slowdown
//!   estimate — what the `probed:*` placement policy in `anp-sched`
//!   decides from;
//! * [`run_monitor_study`] gates the whole pipeline against DES ground
//!   truth: estimation error on the gated ladder, detection latency in
//!   probe windows, and the probe train's overhead on real jobs.

#![warn(missing_docs)]

pub mod scenario;
pub mod slowdown;
pub mod stream;
pub mod study;

pub use anp_workloads::CompressionConfig;
pub use scenario::{
    delayed_members, probed_profile_of_app, run_change_scenario, train_config, train_seed,
    train_series, ChangeOutcome, ChangeScenario,
};
pub use slowdown::{live_slowdowns, LiveSlowdown};
pub use stream::{LiveEstimator, MonitorConfig, WindowEstimate};
pub use study::{
    gate_violations, monitor_records, render_report, run_monitor_study, DetectionRow, MonitorOpts,
    MonitorRecord, MonitorReport, OverheadRow, UtilizationRow,
};

/// The shared four-rung utilization ladder (canonically
/// [`CompressionConfig::gated_ladder`]).
pub fn gated_ladder() -> Vec<CompressionConfig> {
    CompressionConfig::gated_ladder()
}
