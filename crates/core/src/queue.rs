//! The queue-theoretic switch metric (paper §IV-B).
//!
//! The switch is modelled as an M/G/1 queue. Its service rate `µ` and
//! service-time variance `Var(S)` are calibrated once from probe latencies
//! on an *idle* switch; thereafter, the mean probe latency `W` measured
//! while any workload runs is inverted through the Pollaczek–Khinchine
//! formula to the arrival rate `λ` that workload induces, and the
//! utilization `ρ = λ/µ` becomes the single scalar describing how much of
//! the switch the workload consumes.
//!
//! P-K for the mean sojourn time (paper eq. 1, with `ρ = λ/µ`):
//!
//! ```text
//! W = λ(Var(S) + 1/µ²) / (2(1 − λ/µ)) + 1/µ
//! ```
//!
//! Inverting for λ with `w' = W − 1/µ` and `A = (Var(S) + 1/µ²)/2`:
//!
//! ```text
//! λ = w' / (A + w'/µ)
//! ```
//!
//! All quantities are in microseconds (µ in 1/µs, Var in µs²).

use crate::samples::LatencyProfile;

/// How the service rate `µ` is extracted from idle-switch probe latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MuPolicy {
    /// `1/µ` = the *minimum* idle latency — the paper's procedure ("µ is …
    /// measured by sending multiple individual packets into an idle switch
    /// and measuring their minimum latency").
    #[default]
    MinLatency,
    /// `1/µ` = the mean idle latency. An alternative that forces the idle
    /// utilization estimate to zero; kept for ablation studies.
    MeanLatency,
}

/// Why an idle profile could not parameterize the queue model.
///
/// A healthy switch always shows a positive idle latency, but a degraded
/// or faulted fabric (or an empty/degenerate probe window) can produce a
/// profile whose extracted service time is zero or negative. That must
/// abort the one sweep cell that hit it — not the whole process — so the
/// constructor reports it as a typed error instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationError {
    /// The idle latency the [`MuPolicy`] extracted was not positive.
    NonPositiveIdleLatency {
        /// The policy that was applied.
        policy: MuPolicy,
        /// The offending extracted latency (µs).
        latency_us: f64,
    },
    /// A utilization outside `[0, 1)` was handed to the forward P-K
    /// direction. The M/G/1 queue has no stationary sojourn at `ρ ≥ 1`
    /// (or below 0), so the formula must reject the input rather than
    /// return NaN or a negative "latency".
    UnstableUtilization {
        /// The offending utilization.
        rho: f64,
    },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CalibrationError::NonPositiveIdleLatency { policy, latency_us } => write!(
                f,
                "idle latency must be positive to calibrate the queue model: \
                 {policy:?} extracted {latency_us} us"
            ),
            CalibrationError::UnstableUtilization { rho } => write!(
                f,
                "utilization {rho} is outside [0, 1): the M/G/1 queue has no \
                 stationary sojourn there"
            ),
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Idle-switch calibration of the queue model.
///
/// ```
/// use anp_core::{Calibration, MuPolicy, LatencyProfile};
///
/// // Latencies (µs) probed on an idle switch.
/// let idle = LatencyProfile::from_samples(&[1.0, 1.1, 1.2, 1.1, 3.0]);
/// let calib = Calibration::from_idle_profile(&idle, MuPolicy::MinLatency).unwrap();
/// // A loaded switch showing 4 µs mean probe latency reads as busy:
/// let rho = calib.utilization_from_sojourn(4.0);
/// assert!(rho > 0.5 && rho < 1.0);
/// // And latencies at or below 1/µ read as idle:
/// assert_eq!(calib.utilization_from_sojourn(0.9), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Service rate `µ`, packets per µs.
    pub mu: f64,
    /// Service-time variance `Var(S)`, µs².
    pub var_s: f64,
    /// Mean idle latency, µs (reported for reference).
    pub idle_mean: f64,
    /// Policy used to extract `µ`.
    pub policy: MuPolicy,
}

impl Calibration {
    /// Calibrates from an idle-switch latency profile. Fails with a typed
    /// error (rather than panicking) when the extracted idle latency is
    /// not positive, so one degraded fabric aborts one sweep cell, not
    /// the whole process.
    pub fn from_idle_profile(
        profile: &LatencyProfile,
        policy: MuPolicy,
    ) -> Result<Self, CalibrationError> {
        let service_time = match policy {
            MuPolicy::MinLatency => profile.min(),
            MuPolicy::MeanLatency => profile.mean(),
        };
        if service_time <= 0.0 || service_time.is_nan() {
            return Err(CalibrationError::NonPositiveIdleLatency {
                policy,
                latency_us: service_time,
            });
        }
        Ok(Calibration {
            mu: 1.0 / service_time,
            var_s: profile.variance(),
            idle_mean: profile.mean(),
            policy,
        })
    }

    /// The Pollaczek–Khinchine mean sojourn time for arrival rate
    /// `lambda` (forward direction; used for validation and tests).
    ///
    /// # Panics
    /// Panics unless `0 ≤ λ < µ` (the queue must be stable).
    pub fn pk_sojourn(&self, lambda: f64) -> f64 {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            (0.0..self.mu).contains(&lambda),
            "P-K needs 0 <= lambda < mu"
        );
        let inv_mu = 1.0 / self.mu;
        let es2 = self.var_s + inv_mu * inv_mu;
        lambda * es2 / (2.0 * (1.0 - lambda / self.mu)) + inv_mu
    }

    /// Inverts P-K: the arrival rate that would produce mean sojourn `w`
    /// (µs). Clamped to `[0, µ)`; a `w` at or below `1/µ` maps to zero.
    pub fn lambda_from_sojourn(&self, w: f64) -> f64 {
        let inv_mu = 1.0 / self.mu;
        let w_prime = w - inv_mu;
        if w_prime <= 0.0 {
            return 0.0;
        }
        let a = (self.var_s + inv_mu * inv_mu) / 2.0;
        let lambda = w_prime / (a + w_prime * inv_mu);
        lambda.clamp(0.0, self.mu * 0.9999)
    }

    /// The paper's switch-utilization metric: `ρ = λ/µ` inferred from a
    /// loaded-switch mean probe latency. In `[0, 1)`.
    pub fn utilization_from_sojourn(&self, w: f64) -> f64 {
        self.lambda_from_sojourn(w) / self.mu
    }

    /// The forward map of the utilization metric: the mean sojourn (µs) a
    /// switch at utilization `rho` would show. Inverse of
    /// [`Calibration::utilization_from_sojourn`] on `[0, 1)`.
    ///
    /// Rejects `ρ < 0` and `ρ ≥ 1` with a typed error instead of
    /// returning NaN/∞: unstable queues have no stationary sojourn, and a
    /// silent NaN would poison every profile built downstream (the
    /// flow-level backend feeds this into synthetic probe samples).
    pub fn sojourn_from_utilization(&self, rho: f64) -> Result<f64, CalibrationError> {
        if !(0.0..1.0).contains(&rho) || rho.is_nan() {
            return Err(CalibrationError::UnstableUtilization { rho });
        }
        Ok(self.pk_sojourn(rho * self.mu))
    }

    /// Utilization of the workload whose impact profile is `profile`.
    pub fn utilization(&self, profile: &LatencyProfile) -> f64 {
        self.utilization_from_sojourn(profile.mean())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn calib(mu: f64, var_s: f64) -> Calibration {
        Calibration {
            mu,
            var_s,
            idle_mean: 1.0 / mu,
            policy: MuPolicy::MinLatency,
        }
    }

    #[test]
    fn idle_latency_maps_to_zero_utilization() {
        let c = calib(1.0, 0.5);
        assert_eq!(c.utilization_from_sojourn(1.0), 0.0);
        assert_eq!(c.utilization_from_sojourn(0.5), 0.0);
    }

    #[test]
    fn utilization_is_monotone_in_latency() {
        let c = calib(0.8, 1.2);
        let mut last = 0.0;
        for i in 0..100 {
            let w = 1.25 + i as f64 * 0.5;
            let u = c.utilization_from_sojourn(w);
            assert!(u >= last, "utilization must grow with latency");
            last = u;
        }
        assert!(last < 1.0);
        assert!(last > 0.9, "very long waits must imply near-saturation");
    }

    #[test]
    fn pk_roundtrip_exact() {
        // λ → W → λ must be the identity across the stable region.
        let c = calib(0.9, 2.0);
        for i in 1..99 {
            let lambda = c.mu * i as f64 / 100.0;
            let w = c.pk_sojourn(lambda);
            let back = c.lambda_from_sojourn(w);
            assert!(
                (back - lambda).abs() < 1e-9,
                "roundtrip failed at λ={lambda}: got {back}"
            );
        }
    }

    #[test]
    fn mm1_special_case() {
        // With Var(S) = 1/µ² (exponential service), P-K reduces to the
        // M/M/1 sojourn W = 1/(µ − λ).
        let mu = 2.0;
        let c = calib(mu, 1.0 / (mu * mu));
        for lambda in [0.2, 1.0, 1.8] {
            let w = c.pk_sojourn(lambda);
            assert!((w - 1.0 / (mu - lambda)).abs() < 1e-9, "λ={lambda}");
        }
    }

    #[test]
    fn md1_special_case() {
        // With Var(S) = 0 (deterministic service), the waiting part is
        // half the M/M/1 value.
        let mu = 1.0;
        let c = calib(mu, 0.0);
        let lambda = 0.5;
        let wait = c.pk_sojourn(lambda) - 1.0 / mu;
        let mm1_wait = lambda / (mu * (mu - lambda));
        assert!((wait - mm1_wait / 2.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_from_profile_uses_policy() {
        let p = crate::samples::LatencyProfile::from_samples(&[1.0, 1.2, 1.4, 3.0]);
        let c_min = Calibration::from_idle_profile(&p, MuPolicy::MinLatency).unwrap();
        assert!((c_min.mu - 1.0).abs() < 1e-12);
        let c_mean = Calibration::from_idle_profile(&p, MuPolicy::MeanLatency).unwrap();
        assert!((c_mean.mu - 1.0 / 1.65).abs() < 1e-9);
        assert!(c_min.var_s > 0.0);
        // Under the mean policy the idle profile itself reads as ρ = 0.
        assert_eq!(c_mean.utilization(&p), 0.0);
    }

    #[test]
    fn non_positive_idle_latency_is_a_typed_error() {
        // A faulted fabric can report zero-latency probes; calibration
        // must fail cleanly instead of panicking the whole process.
        let p = crate::samples::LatencyProfile::from_samples(&[0.0, 0.0, 0.0]);
        let err = Calibration::from_idle_profile(&p, MuPolicy::MinLatency).unwrap_err();
        let CalibrationError::NonPositiveIdleLatency { policy, latency_us } = err else {
            panic!("expected NonPositiveIdleLatency, got {err:?}");
        };
        assert_eq!(policy, MuPolicy::MinLatency);
        assert_eq!(latency_us, 0.0);
        assert!(err.to_string().contains("must be positive"));
    }

    #[test]
    #[should_panic(expected = "lambda < mu")]
    fn pk_rejects_unstable_queue() {
        calib(1.0, 0.0).pk_sojourn(1.0);
    }

    #[test]
    fn forward_direction_rejects_unstable_utilization() {
        let c = calib(1.0, 0.5);
        for rho in [1.0, 1.5, -0.1, f64::NAN, f64::INFINITY] {
            let err = c.sojourn_from_utilization(rho).unwrap_err();
            assert!(
                matches!(err, CalibrationError::UnstableUtilization { .. }),
                "rho={rho} must be rejected, got {err:?}"
            );
            assert!(err.to_string().contains("stationary"));
        }
        // The boundary just inside the stable region still works.
        assert!(c.sojourn_from_utilization(0.0).unwrap() > 0.0);
        assert!(c.sojourn_from_utilization(0.999).unwrap().is_finite());
    }

    proptest! {
        /// Utilization stays in [0, 1) for any non-negative latency.
        #[test]
        fn prop_utilization_bounded(
            mu in 0.1f64..10.0,
            var in 0.0f64..10.0,
            w in 0.0f64..1e6,
        ) {
            let c = calib(mu, var);
            let u = c.utilization_from_sojourn(w);
            prop_assert!((0.0..1.0).contains(&u));
        }

        /// Roundtrip λ → W → λ holds for random stable queues.
        #[test]
        fn prop_pk_roundtrip(
            mu in 0.1f64..10.0,
            var in 0.0f64..10.0,
            frac in 0.01f64..0.99,
        ) {
            let c = calib(mu, var);
            let lambda = mu * frac;
            let w = c.pk_sojourn(lambda);
            let back = c.lambda_from_sojourn(w);
            prop_assert!((back - lambda).abs() < 1e-6 * mu);
        }

        /// Roundtrip ρ → W → ρ through the typed forward direction holds
        /// across the whole valid utilization range.
        #[test]
        fn prop_utilization_roundtrip(
            mu in 0.1f64..10.0,
            var in 0.0f64..10.0,
            rho in 0.0f64..0.99,
        ) {
            let c = calib(mu, var);
            let w = c.sojourn_from_utilization(rho).expect("stable rho");
            let back = c.utilization_from_sojourn(w);
            prop_assert!(
                (back - rho).abs() < 1e-6,
                "rho {} -> W {} -> rho {}", rho, w, back
            );
        }

        /// The forward direction never returns NaN or a negative sojourn:
        /// inputs outside [0, 1) get a typed error instead.
        #[test]
        fn prop_forward_rejects_unstable_inputs(
            mu in 0.1f64..10.0,
            var in 0.0f64..10.0,
            rho in -5.0f64..5.0,
        ) {
            let c = calib(mu, var);
            match c.sojourn_from_utilization(rho) {
                Ok(w) => {
                    prop_assert!((0.0..1.0).contains(&rho));
                    prop_assert!(w.is_finite() && w > 0.0);
                }
                Err(CalibrationError::UnstableUtilization { rho: r }) => {
                    prop_assert!(!(0.0..1.0).contains(&rho));
                    prop_assert!(r == rho);
                }
                Err(other) => prop_assert!(false, "unexpected error {:?}", other),
            }
        }
    }
}
