//! The parallel experiment sweep engine.
//!
//! Every expensive artefact of the paper is a grid of *independent,
//! deterministic* simulations: one impact run per CompressionB
//! configuration, an `apps × configs` grid of runtime runs (§IV-A), and a
//! quadratic grid of co-run pairings (Table I). Each cell seeds its own
//! [`anp_simmpi::World`] from the experiment config alone, so cells share
//! no state and can execute on any thread in any order.
//!
//! [`sweep`] exploits that: it fans a slice of experiment closures out
//! across `N` worker threads (std [`std::thread::scope`], no runtime
//! dependencies) and collects results **by index**. Workers pull the next
//! unclaimed index from an atomic counter; each result lands in its own
//! slot, so the output vector is byte-identical to what a serial loop in
//! index order would produce, regardless of scheduling. With
//! [`Parallelism::Fixed`]`(1)` the tasks run in order on the calling
//! thread — exactly the old serial behavior.
//!
//! [`sweep_recorded`] additionally captures a [`SweepTelemetry`] record:
//! per-run wall time and simulation events processed (reported by the
//! experiment drivers via [`note_events`]), plus whole-sweep wall time and
//! worker count. Harnesses serialize these records to `BENCH_anp.json` so
//! the performance trajectory of the engine is tracked run over run.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How many worker threads a sweep may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available hardware thread
    /// ([`std::thread::available_parallelism`]).
    #[default]
    Auto,
    /// Exactly this many workers. `Fixed(1)` runs every task in order on
    /// the calling thread — the exact pre-sweep-engine serial behavior.
    Fixed(usize),
}

impl Parallelism {
    /// A fixed worker count (clamped to at least 1).
    pub fn fixed(n: usize) -> Self {
        Parallelism::Fixed(n.max(1))
    }

    /// The number of workers this setting resolves to on this machine.
    pub fn workers(self) -> usize {
        match self {
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Fixed(n) => n.max(1),
        }
    }
}

thread_local! {
    /// Simulation events processed by experiment drivers on this thread
    /// since the last [`take_events`]. Thread-local so parallel workers
    /// attribute events to their own runs.
    static RUN_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Credits `n` simulation events to the current thread's running tally.
/// Called by the experiment drivers after each `World` run. Also charges
/// the supervised run budget of the current cell attempt, if one is
/// installed (see [`crate::supervise`]).
pub fn note_events(n: u64) {
    RUN_EVENTS.with(|c| c.set(c.get().saturating_add(n)));
    crate::supervise::charge_events(n);
}

/// Drains the current thread's event tally (used by the sweep runner to
/// attribute events to the task that just finished).
pub fn take_events() -> u64 {
    RUN_EVENTS.with(|c| c.replace(0))
}

/// Telemetry of one run (one sweep cell): an independent simulation or a
/// small serial batch of them.
#[derive(Debug, Clone)]
pub struct RunRecord {
    /// Human-readable cell label, e.g. `solo:FFTW` or `grid:FFTW/P7-B2.5e6-M10`.
    pub label: String,
    /// Measurement backend that produced the cell (`"des"` for the
    /// packet-level simulator, `"flow"` for the analytic model).
    pub backend: String,
    /// Wall-clock seconds the cell took on its worker.
    pub wall_secs: f64,
    /// Simulation events processed by the cell (from
    /// [`anp_simmpi::World::events_processed`] via [`note_events`]).
    /// Zero for analytic backends, which process no events.
    pub events: u64,
    /// How the cell ended: `"ok"` (also for plain unsupervised sweeps),
    /// `"resumed"` (decoded from a run journal), or a failure kind from
    /// [`crate::journal::CellStatus`] (`"failed"`, `"panicked"`,
    /// `"budget"`).
    pub outcome: String,
    /// Retries the supervisor spent on the cell (0 in plain sweeps).
    pub retries: u32,
}

impl RunRecord {
    /// Simulation events per wall-clock second — the engine's throughput
    /// on this cell.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.events as f64 / self.wall_secs
    }
}

/// Telemetry of one whole sweep: the per-run records plus the fan-out
/// shape and end-to-end wall time.
#[derive(Debug, Clone)]
pub struct SweepTelemetry {
    /// Name of the sweep (e.g. `lookup-table`, `table1-grid`).
    pub name: String,
    /// Backend the sweep's cells ran on (`"des"`, `"flow"`, or `"mixed"`
    /// after absorbing a sweep from a different backend).
    pub backend: String,
    /// Worker threads the sweep ran on.
    pub workers: usize,
    /// End-to-end wall-clock seconds for the whole sweep.
    pub wall_secs: f64,
    /// One record per task, in task (= serial) order.
    pub runs: Vec<RunRecord>,
}

impl SweepTelemetry {
    /// Total simulation events across all runs.
    pub fn events_total(&self) -> u64 {
        self.runs.iter().map(|r| r.events).sum()
    }

    /// Sum of per-run wall times — the serial-equivalent duration of the
    /// sweep (what one worker would have needed).
    pub fn serial_secs(&self) -> f64 {
        self.runs.iter().map(|r| r.wall_secs).sum()
    }

    /// Aggregate throughput: total events over end-to-end wall time.
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 0.0;
        }
        self.events_total() as f64 / self.wall_secs
    }

    /// Parallel speedup actually realized: serial-equivalent time over
    /// end-to-end wall time. ~1.0 for a serial sweep.
    pub fn speedup(&self) -> f64 {
        if self.wall_secs <= 0.0 {
            return 1.0;
        }
        self.serial_secs() / self.wall_secs
    }

    /// Folds `other` into `self`: runs concatenate, wall times add (the
    /// sweeps ran one after the other), worker count keeps the maximum.
    /// Absorbing a sweep from a different backend marks the aggregate as
    /// `"mixed"` (the per-run records keep their own backend).
    pub fn absorb(&mut self, other: SweepTelemetry) {
        self.workers = self.workers.max(other.workers);
        self.wall_secs += other.wall_secs;
        if self.backend != other.backend {
            self.backend = "mixed".to_owned();
        }
        self.runs.extend(other.runs);
    }

    /// Serializes the record to a self-contained JSON object (the
    /// element schema of `BENCH_anp.json`; no external dependencies).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.runs.len() * 96);
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"backend\":\"{}\",\"workers\":{},\"wall_secs\":{:.6},\
             \"serial_secs\":{:.6},\
             \"speedup\":{:.3},\"runs\":{},\"events\":{},\"events_per_sec\":{:.0},\
             \"per_run\":[",
            json_escape(&self.name),
            json_escape(&self.backend),
            self.workers,
            self.wall_secs,
            self.serial_secs(),
            self.speedup(),
            self.runs.len(),
            self.events_total(),
            self.events_per_sec(),
        ));
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":\"{}\",\"backend\":\"{}\",\"wall_secs\":{:.6},\"events\":{},\
                 \"outcome\":\"{}\",\"retries\":{}}}",
                json_escape(&r.label),
                json_escape(&r.backend),
                r.wall_secs,
                r.events,
                json_escape(&r.outcome),
                r.retries
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping (labels are plain ASCII identifiers, but
/// stay safe against quotes and backslashes anyway).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Runs `tasks` across up to [`Parallelism::workers`] threads and returns
/// the results **in task order** — byte-identical to running the closures
/// serially, regardless of how the scheduler interleaves them.
///
/// Tasks must be independent: each closure owns (or shares immutably)
/// everything it needs. A panicking task propagates out of the sweep.
pub fn sweep<T, F>(par: Parallelism, tasks: Vec<F>) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let labeled: Vec<(String, F)> = tasks.into_iter().map(|f| (String::new(), f)).collect();
    sweep_recorded("sweep", par, labeled).0
}

/// [`sweep`], additionally recording a [`SweepTelemetry`]: per-run wall
/// time and simulation events, whole-sweep wall time, worker count. The
/// telemetry is attributed to the `"des"` backend (the default engine);
/// use [`sweep_recorded_for`] to attribute another.
pub fn sweep_recorded<T, F>(
    name: &str,
    par: Parallelism,
    tasks: Vec<(String, F)>,
) -> (Vec<T>, SweepTelemetry)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    sweep_recorded_for(name, "des", par, tasks)
}

/// [`sweep_recorded`] with an explicit backend attribution: every
/// [`RunRecord`] and the [`SweepTelemetry`] itself record which
/// measurement engine produced the cells (`"des"`, `"flow"`, …).
pub fn sweep_recorded_for<T, F>(
    name: &str,
    backend: &str,
    par: Parallelism,
    tasks: Vec<(String, F)>,
) -> (Vec<T>, SweepTelemetry)
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let n = tasks.len();
    let workers = par.workers().min(n.max(1));
    let sweep_start = Instant::now();

    let run_task = |label: String, f: F| -> (T, RunRecord) {
        let _ = take_events(); // drop any stale tally from a previous cell
        let start = Instant::now();
        let value = f();
        let record = RunRecord {
            label,
            backend: backend.to_owned(),
            wall_secs: start.elapsed().as_secs_f64(),
            events: take_events(),
            outcome: "ok".to_owned(),
            retries: 0,
        };
        (value, record)
    };

    if workers <= 1 || n <= 1 {
        // Serial path: in order, on the calling thread — the exact
        // pre-engine behavior.
        let mut values = Vec::with_capacity(n);
        let mut runs = Vec::with_capacity(n);
        for (label, f) in tasks {
            let (v, r) = run_task(label, f);
            values.push(v);
            runs.push(r);
        }
        let telemetry = SweepTelemetry {
            name: name.to_owned(),
            backend: backend.to_owned(),
            workers: 1,
            wall_secs: sweep_start.elapsed().as_secs_f64(),
            runs,
        };
        return (values, telemetry);
    }

    // Parallel path: workers claim indices from an atomic counter; every
    // result is written to its own slot, so collection order is the task
    // order no matter which worker ran what.
    let next = AtomicUsize::new(0);
    let task_slots: Vec<Mutex<Option<(String, F)>>> =
        tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let result_slots: Vec<Mutex<Option<(T, RunRecord)>>> =
        (0..n).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let (label, f) = task_slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    // anp-lint: allow(D003) — the atomic counter hands each index to exactly one worker; a double claim is engine corruption that must halt loudly
                    .expect("sweep task claimed twice");
                let out = run_task(label, f);
                *result_slots[i]
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
            });
        }
    });

    let mut values = Vec::with_capacity(n);
    let mut runs = Vec::with_capacity(n);
    for slot in result_slots {
        let (v, r) = slot
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            // anp-lint: allow(D003) — thread::scope joins every worker before collection, so each slot holds exactly one result
            .expect("sweep task did not produce a result");
        values.push(v);
        runs.push(r);
    }
    let telemetry = SweepTelemetry {
        name: name.to_owned(),
        backend: backend.to_owned(),
        workers,
        wall_secs: sweep_start.elapsed().as_secs_f64(),
        runs,
    };
    (values, telemetry)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_task_order() {
        // Give later tasks *less* work so they finish first under any
        // parallel schedule; the output must still be index-ordered.
        let tasks: Vec<_> = (0..64u64)
            .map(|i| {
                move || {
                    let spin = (64 - i) * 1_000;
                    let mut acc = 0u64;
                    for k in 0..spin {
                        acc = acc.wrapping_add(k ^ i);
                    }
                    (i, acc.wrapping_mul(0)) // value depends only on i
                }
            })
            .collect();
        let out = sweep(Parallelism::fixed(8), tasks);
        let ids: Vec<u64> = out.iter().map(|(i, _)| *i).collect();
        assert_eq!(ids, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_matches_serial_output() {
        let mk = || {
            (0..40u64)
                .map(|i| move || i.wrapping_mul(0x9E37_79B9).rotate_left(i as u32 % 13))
                .collect::<Vec<_>>()
        };
        let serial = sweep(Parallelism::fixed(1), mk());
        let parallel = sweep(Parallelism::fixed(7), mk());
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_task_sweeps() {
        let none: Vec<fn() -> u32> = vec![];
        assert!(sweep(Parallelism::Auto, none).is_empty());
        assert_eq!(sweep(Parallelism::Auto, vec![|| 41 + 1]), vec![42]);
    }

    #[test]
    fn telemetry_counts_runs_and_events() {
        let tasks: Vec<(String, _)> = (0..5u64)
            .map(|i| {
                (format!("cell{i}"), move || {
                    note_events(100 + i);
                    i
                })
            })
            .collect();
        let (values, t) = sweep_recorded("unit", Parallelism::fixed(3), tasks);
        assert_eq!(values, vec![0, 1, 2, 3, 4]);
        assert_eq!(t.runs.len(), 5);
        assert_eq!(t.name, "unit");
        assert_eq!(t.workers, 3);
        assert_eq!(t.events_total(), 100 + 101 + 102 + 103 + 104);
        assert_eq!(t.runs[2].label, "cell2");
        assert_eq!(t.runs[2].events, 102);
        assert!(t.serial_secs() >= 0.0);
    }

    #[test]
    fn serial_telemetry_reports_one_worker() {
        let (_, t) = sweep_recorded(
            "serial",
            Parallelism::fixed(1),
            vec![("a".to_owned(), || ())],
        );
        assert_eq!(t.workers, 1);
    }

    #[test]
    fn stale_events_do_not_leak_between_cells() {
        note_events(999); // tally left by an earlier, unswept experiment
        let tasks = vec![("only".to_owned(), || note_events(5))];
        let (_, t) = sweep_recorded("leak", Parallelism::fixed(1), tasks);
        assert_eq!(t.events_total(), 5);
    }

    #[test]
    fn json_record_is_well_formed() {
        let t = SweepTelemetry {
            name: "t\"est".to_owned(),
            backend: "flow".to_owned(),
            workers: 4,
            wall_secs: 1.5,
            runs: vec![RunRecord {
                label: "a".to_owned(),
                backend: "flow".to_owned(),
                wall_secs: 0.5,
                events: 10,
                outcome: "ok".to_owned(),
                retries: 1,
            }],
        };
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"name\":\"t\\\"est\""));
        assert!(j.contains("\"backend\":\"flow\""));
        assert!(j.contains("\"workers\":4"));
        assert!(j.contains("\"events\":10"));
        assert!(j.contains("\"outcome\":\"ok\""));
        assert!(j.contains("\"retries\":1"));
        // Balanced braces/brackets (cheap well-formedness check).
        assert_eq!(j.matches('{').count(), j.matches('}').count(),);
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn speedup_of_serial_sweep_is_about_one() {
        let rec = |events| RunRecord {
            label: String::new(),
            backend: "des".to_owned(),
            wall_secs: 1.0,
            events,
            outcome: "ok".to_owned(),
            retries: 0,
        };
        let t = SweepTelemetry {
            name: "s".into(),
            backend: "des".to_owned(),
            workers: 1,
            wall_secs: 2.0,
            runs: vec![rec(1), rec(1)],
        };
        assert!((t.speedup() - 1.0).abs() < 1e-9);
        assert!((t.events_per_sec() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn backend_attribution_defaults_to_des_and_mixes_on_absorb() {
        let (_, des) = sweep_recorded("d", Parallelism::fixed(1), vec![("a".to_owned(), || ())]);
        assert_eq!(des.backend, "des");
        assert_eq!(des.runs[0].backend, "des");
        let (_, flow) = sweep_recorded_for(
            "f",
            "flow",
            Parallelism::fixed(1),
            vec![("b".to_owned(), || ())],
        );
        assert_eq!(flow.backend, "flow");
        assert_eq!(flow.runs[0].backend, "flow");
        let mut agg = des.clone();
        agg.absorb(des.clone());
        assert_eq!(agg.backend, "des", "same-backend absorb stays pure");
        agg.absorb(flow);
        assert_eq!(agg.backend, "mixed");
        assert_eq!(agg.runs[2].backend, "flow", "per-run attribution survives");
    }

    #[test]
    fn parallelism_resolves_to_positive_workers() {
        assert!(Parallelism::Auto.workers() >= 1);
        assert_eq!(Parallelism::fixed(0).workers(), 1);
        assert_eq!(Parallelism::Fixed(0).workers(), 1);
        assert_eq!(Parallelism::fixed(6).workers(), 6);
        assert_eq!(Parallelism::default(), Parallelism::Auto);
    }
}
