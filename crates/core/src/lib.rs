//! # anp-core — the paper's measurement-and-prediction methodology
//!
//! Implementation of *Active Measurement of the Impact of Network Switch
//! Utilization on Application Performance* (Casas & Bronevetsky, IPDPS
//! 2014) over the simulated substrates in `anp-simnet` / `anp-simmpi` /
//! `anp-workloads`:
//!
//! * [`samples`] — latency profiles (mean, σ, binned PDF) of impact
//!   measurements;
//! * [`queue`] — the M/G/1 switch metric: idle-switch calibration and the
//!   Pollaczek–Khinchine inversion from mean probe latency to switch
//!   utilization (§IV-B);
//! * [`experiments`] — impact, compression, calibration, and co-run
//!   experiment drivers (§III, §V);
//! * [`lut`] — the per-CompressionB-configuration look-up table (§IV-A,
//!   §IV-C);
//! * [`models`] — the four predictors: AverageLT, AverageStDevLT, PDFLT,
//!   and the queue model (§IV);
//! * [`prediction`] — the pairing study: predict all N² co-run slowdowns
//!   from N isolated measurements and score them against ground truth
//!   (§V);
//! * [`sweep`] — the parallel sweep engine: fans independent experiment
//!   cells across worker threads with index-ordered (byte-identical)
//!   collection, and records per-run wall/event telemetry;
//! * [`supervise`] — the supervision envelope around sweep cells: panic
//!   isolation, per-cell event/wall budgets, deterministic retries, and
//!   typed holes for the cells that still fail;
//! * [`journal`] — crash-safe append-only run journals (JSONL, fsync'd
//!   per cell) with bit-exact value encoding and fingerprint-verified
//!   `--resume`;
//! * [`backend`] — the object-safe [`Backend`] seam between measurement
//!   engines: [`DesBackend`] (the packet-level simulator, ground truth)
//!   and the analytic flow-level model in the `anp-flowsim` crate;
//! * [`oracle`] — the differential oracle: one measurement ladder through
//!   four execution modes (DES serial, DES parallel, kill-and-resume,
//!   flow), artefacts diffed bit-exactly (DES) or envelope-checked
//!   (flow), with simulator invariant auditing forced on.
//!
//! ## The methodology in one paragraph
//!
//! Probe the switch with tiny ping-pongs while a workload runs
//! ([`experiments::impact_profile_of_app`]); the latency distribution of
//! the probes is the workload's *footprint*. Separately, run each
//! application against a sweep of CompressionB interference configurations
//! ([`lut::LookupTable::measure`]) to learn how it degrades as switch
//! capability shrinks. To predict A's slowdown next to B, summarize B's
//! footprint (mean / interval / PDF / P-K utilization), find the
//! CompressionB configuration with the matching footprint, and read off
//! A's measured degradation under that configuration
//! ([`prediction::Study::predict_pair`]).

#![warn(missing_docs)]

pub mod backend;
pub mod experiments;
pub mod journal;
pub mod lut;
pub mod models;
pub mod oracle;
pub mod prediction;
pub mod queue;
pub mod samples;
pub mod series;
pub mod supervise;
pub mod sweep;

pub use anp_simnet::{audit_compiled, AuditReport, AuditViolation, InvariantKind};
pub use backend::{calibrate_with, Backend, BackendError, DesBackend, WorkloadSpec};
pub use experiments::{
    calibrate, degradation_percent, idle_profile, impact_profile, impact_profile_of_app,
    impact_profile_of_compression, impact_series, impact_series_of_app, loss_sweep,
    loss_sweep_recorded, loss_sweep_supervised, runtime_of, runtime_under_compression,
    runtime_under_corun, runtime_under_loss, solo_runtime, ExperimentConfig, ExperimentError,
    LossCurve, Members, SupervisedLossCurve,
};
pub use journal::{
    config_fingerprint, CellStatus, JournalEntry, JournalError, Journaled, RunJournal,
};
pub use lut::{CompressionEntry, LookupTable, SupervisedTable};
pub use models::{
    all_models, AverageLt, AverageStDevLt, ModelKind, PdfLt, QueueModel, QueuePhaseModel,
    SlowdownModel, UnknownModel,
};
pub use oracle::{
    run_oracle, Divergence, ModeArtefacts, OracleError, OracleReport, RungArtefact,
    FLOW_PROBE_ENVELOPE, FLOW_RUNTIME_ENVELOPE,
};
pub use prediction::{error_summaries, PairOutcome, PredictionError, Study};
pub use queue::{Calibration, CalibrationError, MuPolicy};
pub use samples::LatencyProfile;
pub use series::TimedSeries;
pub use supervise::{
    completed_count, partial_exit_code, sweep_supervised, sweep_supervised_for, BudgetReport,
    CellResult, RetryPolicy, RunBudget, Supervisor, TaskError,
};
pub use sweep::{
    sweep as run_sweep, sweep_recorded, sweep_recorded_for, Parallelism, RunRecord, SweepTelemetry,
};
