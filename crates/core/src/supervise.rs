//! The sweep supervisor: panic isolation, per-cell run budgets, retries,
//! and journal-backed resume.
//!
//! The plain engine in [`crate::sweep`] trusts its tasks: a panicking
//! cell poisons result slots and aborts the whole sweep, and a wedged
//! simulation holds a worker forever. This module wraps every cell in a
//! supervision envelope instead:
//!
//! * **Panic isolation** — each cell runs under
//!   [`std::panic::catch_unwind`]; a panic becomes
//!   [`TaskError::Panicked`] with the payload and cell index, and every
//!   sibling cell still completes.
//! * **Run budgets** — [`RunBudget`] caps each *attempt* by simulator
//!   events and wall clock. The budget is installed in a thread-local
//!   that the experiment drivers consult ([`world_allowance`]) and
//!   charge ([`charge_events`]); the DES world stops cooperatively and
//!   the cell yields [`TaskError::Budget`] with the stall diagnostics.
//!   The event cap is deterministic; the wall cap is a watchdog.
//! * **Retries** — [`RetryPolicy`] re-invokes failed or panicked cells
//!   up to `max_retries` times with doubling backoff. Cells are pure
//!   functions of the experiment config (every seed re-derives from it),
//!   so a retry reproduces the clean run bit-for-bit; budget errors are
//!   **not** retried, because a deterministic event budget would fail
//!   identically again.
//! * **Resume** — with a [`RunJournal`], each finished cell is journaled
//!   and a later run with `--resume` decodes completed cells instead of
//!   re-simulating them, after fingerprint verification.
//!
//! Results come back as index-ordered `Vec<CellResult<T>>` — completed
//! sweeps are byte-identical to the plain engine; incomplete sweeps have
//! typed holes where cells failed, and callers map the hole pattern onto
//! the 0 (complete) / 3 (partial) / 1 (failed) exit-code convention via
//! [`partial_exit_code`].

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use anp_simmpi::StallReport;

use crate::experiments::ExperimentError;
use crate::journal::{CellStatus, JournalEntry, JournalError, Journaled, RunJournal};
use crate::sweep::{take_events, Parallelism, RunRecord, SweepTelemetry};

/// Per-attempt resource caps for one sweep cell. `None` = unlimited.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunBudget {
    /// Wall-clock cap per attempt (a watchdog: checked every 65 536
    /// simulator events, so enforcement lags by up to one check window).
    pub wall: Option<Duration>,
    /// Simulator-event cap per attempt. Deterministic: the same cell
    /// trips after exactly the same event under any schedule.
    pub events: Option<u64>,
}

impl RunBudget {
    /// No caps at all.
    pub fn unlimited() -> Self {
        RunBudget::default()
    }

    /// True when neither cap is set.
    pub fn is_unlimited(&self) -> bool {
        self.wall.is_none() && self.events.is_none()
    }
}

/// How often and how patiently failed cells are re-attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RetryPolicy {
    /// Re-attempts allowed per cell after the first try (0 = fail fast).
    pub max_retries: u32,
    /// Pause before the first retry; doubles on every further retry.
    pub backoff: Duration,
}

/// The supervision envelope applied to every cell of a supervised sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Supervisor {
    /// Per-attempt resource caps.
    pub budget: RunBudget,
    /// Retry policy for failed and panicked cells.
    pub retry: RetryPolicy,
}

impl Supervisor {
    /// No budgets, no retries — pure panic isolation.
    pub fn none() -> Self {
        Supervisor::default()
    }
}

/// Diagnostics of a budget-tripped cell attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetReport {
    /// Wall-clock seconds the attempt ran before tripping.
    pub wall_secs: f64,
    /// Simulator events the attempt processed.
    pub events: u64,
    /// The budget that tripped.
    pub budget: RunBudget,
    /// Where the simulation stood when the watchdog gave up.
    pub stall: StallReport,
}

impl std::fmt::Display for BudgetReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "run budget spent after {:.2}s / {} events",
            self.wall_secs, self.events
        )?;
        if let Some(cap) = self.budget.events {
            write!(f, " (event cap {cap})")?;
        }
        if let Some(wall) = self.budget.wall {
            write!(f, " (wall cap {:.2}s)", wall.as_secs_f64())?;
        }
        write!(f, ": {}", self.stall)
    }
}

/// Why a supervised cell produced no value.
#[derive(Debug, Clone, PartialEq)]
pub enum TaskError {
    /// The cell panicked; the payload was captured and siblings kept
    /// running.
    Panicked {
        /// Cell index (serial task order).
        cell: usize,
        /// The cell's label.
        label: String,
        /// The panic payload, if it was a string (the common case).
        payload: String,
    },
    /// The cell's per-attempt [`RunBudget`] was spent. Not retried: the
    /// deterministic event budget would trip identically on every retry.
    Budget {
        /// Cell index (serial task order).
        cell: usize,
        /// The cell's label.
        label: String,
        /// What tripped and where the simulation stood.
        report: BudgetReport,
    },
    /// The cell returned a typed experiment error.
    Failed {
        /// Cell index (serial task order).
        cell: usize,
        /// The cell's label.
        label: String,
        /// The underlying error.
        error: ExperimentError,
    },
}

impl TaskError {
    /// The failed cell's index.
    pub fn cell(&self) -> usize {
        match self {
            TaskError::Panicked { cell, .. }
            | TaskError::Budget { cell, .. }
            | TaskError::Failed { cell, .. } => *cell,
        }
    }

    /// The failed cell's label.
    pub fn label(&self) -> &str {
        match self {
            TaskError::Panicked { label, .. }
            | TaskError::Budget { label, .. }
            | TaskError::Failed { label, .. } => label,
        }
    }

    /// The journal status of this failure.
    pub fn status(&self) -> CellStatus {
        match self {
            TaskError::Panicked { .. } => CellStatus::Panicked,
            TaskError::Budget { .. } => CellStatus::Budget,
            TaskError::Failed { .. } => CellStatus::Failed,
        }
    }

    /// Whether a retry could help. Panics and experiment errors are
    /// retried (the environment may differ — and a deterministic failure
    /// simply fails again, costing only the retry budget); a spent
    /// deterministic budget cannot succeed on a retry.
    pub fn retryable(&self) -> bool {
        !matches!(self, TaskError::Budget { .. })
    }
}

impl std::fmt::Display for TaskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Panicked {
                cell,
                label,
                payload,
            } => write!(f, "cell {cell} '{label}' panicked: {payload}"),
            TaskError::Budget {
                cell,
                label,
                report,
            } => write!(f, "cell {cell} '{label}': {report}"),
            TaskError::Failed { cell, label, error } => {
                write!(f, "cell {cell} '{label}' failed: {error}")
            }
        }
    }
}

impl std::error::Error for TaskError {}

/// The outcome of one supervised cell: a value, or a typed hole.
pub type CellResult<T> = Result<T, TaskError>;

/// Cells of `results` that produced a value.
pub fn completed_count<T>(results: &[CellResult<T>]) -> usize {
    results.iter().filter(|r| r.is_ok()).count()
}

/// The campaign exit-code convention: 0 when every cell completed, 3
/// when some did (a partial result worth keeping — resumable), 1 when
/// none did. An empty campaign is vacuously complete.
pub fn partial_exit_code(completed: usize, total: usize) -> i32 {
    if completed == total {
        0
    } else if completed > 0 {
        3
    } else {
        1
    }
}

struct BudgetState {
    started: Instant,
    wall: Option<Duration>,
    event_cap: Option<u64>,
    events_used: u64,
}

thread_local! {
    /// The budget of the cell attempt currently running on this thread.
    /// Installed by the supervised engine, consulted by the experiment
    /// drivers; absent outside supervised sweeps (unlimited).
    static BUDGET: RefCell<Option<BudgetState>> = const { RefCell::new(None) };
}

fn install_budget(budget: RunBudget) {
    BUDGET.with(|slot| {
        *slot.borrow_mut() = Some(BudgetState {
            started: Instant::now(),
            wall: budget.wall,
            event_cap: budget.events,
            events_used: 0,
        });
    });
}

fn clear_budget() {
    BUDGET.with(|slot| *slot.borrow_mut() = None);
}

/// Charges `n` simulator events against the current cell attempt's
/// budget (no-op outside supervised sweeps). Called by
/// [`crate::sweep::note_events`], so drivers need no extra plumbing.
pub fn charge_events(n: u64) {
    BUDGET.with(|slot| {
        if let Some(state) = slot.borrow_mut().as_mut() {
            state.events_used = state.events_used.saturating_add(n);
        }
    });
}

/// What the current cell attempt may still spend: `(remaining events,
/// wall deadline)`, both `None` when unlimited. Experiment drivers pass
/// this straight to [`anp_simmpi::World::set_run_budget`] before every
/// run, so one cell's budget spans all of its simulations.
pub fn world_allowance() -> (Option<u64>, Option<Instant>) {
    BUDGET.with(|slot| {
        slot.borrow().as_ref().map_or((None, None), |state| {
            (
                state
                    .event_cap
                    .map(|cap| cap.saturating_sub(state.events_used)),
                state.wall.map(|w| state.started + w),
            )
        })
    })
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Extends a configuration fingerprint with the sweep's name and task
/// labels, so cells can only be resumed into the same position of the
/// same sweep.
fn sweep_fingerprint(config_fp: u64, name: &str, labels: &[String]) -> u64 {
    let mut parts: Vec<&str> = Vec::with_capacity(labels.len() + 2);
    let fp = format!("{config_fp:016x}");
    parts.push(&fp);
    parts.push(name);
    for label in labels {
        parts.push(label);
    }
    crate::journal::fnv1a(&parts)
}

/// [`sweep_supervised_for`] attributed to the default `"des"` backend.
pub fn sweep_supervised<T, F>(
    name: &str,
    par: Parallelism,
    sup: &Supervisor,
    journal: Option<&RunJournal>,
    config_fp: u64,
    tasks: Vec<(String, F)>,
) -> Result<(Vec<CellResult<T>>, SweepTelemetry), JournalError>
where
    T: Send + Journaled,
    F: Fn() -> Result<T, ExperimentError> + Send + Sync,
{
    sweep_supervised_for(name, "des", par, sup, journal, config_fp, tasks)
}

/// The supervised sweep engine: like
/// [`crate::sweep::sweep_recorded_for`], but every cell runs inside the
/// supervision envelope (panic isolation, budgets, retries) and, with a
/// journal, is recorded for resume. Tasks are `Fn` rather than `FnOnce`
/// because retries re-invoke them; cells are pure functions of the
/// experiment config, so re-invocation is deterministic.
///
/// Results are index-ordered; completed cells are byte-identical to a
/// plain serial sweep. The only error is a journal/fingerprint conflict
/// — cell failures come back *inside* the vector as typed holes.
#[allow(clippy::too_many_arguments)]
pub fn sweep_supervised_for<T, F>(
    name: &str,
    backend: &str,
    par: Parallelism,
    sup: &Supervisor,
    journal: Option<&RunJournal>,
    config_fp: u64,
    tasks: Vec<(String, F)>,
) -> Result<(Vec<CellResult<T>>, SweepTelemetry), JournalError>
where
    T: Send + Journaled,
    F: Fn() -> Result<T, ExperimentError> + Send + Sync,
{
    let n = tasks.len();
    let labels: Vec<String> = tasks.iter().map(|(label, _)| label.clone()).collect();
    let fp = sweep_fingerprint(config_fp, name, &labels);
    let prior = match journal {
        Some(j) => j.prior(name, fp, &labels)?,
        None => (0..n).map(|_| None).collect(),
    };
    if let Some(j) = journal {
        j.begin_sweep(name, fp, n);
    }
    let workers = par.workers().min(n.max(1));
    let sweep_start = Instant::now();

    // One cell, with retries: drain stale event tallies, install the
    // budget, isolate panics, classify, and (maybe) try again.
    let run_cell = |i: usize, label: &str, f: &F| -> (CellResult<T>, RunRecord) {
        let mut retries = 0u32;
        loop {
            let _ = take_events();
            install_budget(sup.budget);
            let start = Instant::now();
            let caught = catch_unwind(AssertUnwindSafe(f));
            let wall_secs = start.elapsed().as_secs_f64();
            clear_budget();
            let events = take_events();
            let result: CellResult<T> = match caught {
                Ok(Ok(value)) => Ok(value),
                Ok(Err(ExperimentError::Budget(stall))) => Err(TaskError::Budget {
                    cell: i,
                    label: label.to_owned(),
                    report: BudgetReport {
                        wall_secs,
                        events,
                        budget: sup.budget,
                        stall,
                    },
                }),
                Ok(Err(error)) => Err(TaskError::Failed {
                    cell: i,
                    label: label.to_owned(),
                    error,
                }),
                Err(payload) => Err(TaskError::Panicked {
                    cell: i,
                    label: label.to_owned(),
                    payload: panic_message(payload),
                }),
            };
            let outcome = match &result {
                Ok(_) => "ok".to_owned(),
                Err(e) => {
                    if e.retryable() && retries < sup.retry.max_retries {
                        let pause = sup.retry.backoff.saturating_mul(1 << retries.min(20));
                        if !pause.is_zero() {
                            std::thread::sleep(pause);
                        }
                        retries += 1;
                        continue;
                    }
                    e.status().as_str().to_owned()
                }
            };
            let record = RunRecord {
                label: label.to_owned(),
                backend: backend.to_owned(),
                wall_secs,
                events,
                outcome,
                retries,
            };
            return (result, record);
        }
    };

    // One cell, resume-aware: journaled successes decode instead of
    // re-running; fresh outcomes are journaled as soon as they exist.
    let finish_cell = |i: usize| -> (CellResult<T>, RunRecord) {
        let (label, f) = &tasks[i];
        if let Some(value) = prior[i]
            .as_ref()
            .filter(|e| e.status == CellStatus::Ok)
            .and_then(|e| e.value.as_deref())
            .and_then(T::decode_journal)
        {
            let record = RunRecord {
                label: label.clone(),
                backend: backend.to_owned(),
                wall_secs: 0.0,
                events: 0,
                outcome: "resumed".to_owned(),
                retries: 0,
            };
            return (Ok(value), record);
        }
        let (result, record) = run_cell(i, label, f);
        if let Some(j) = journal {
            j.record(&JournalEntry {
                sweep: name.to_owned(),
                cell: i,
                label: label.clone(),
                status: match &result {
                    Ok(_) => CellStatus::Ok,
                    Err(e) => e.status(),
                },
                retries: record.retries,
                wall_secs: record.wall_secs,
                events: record.events,
                error: result.as_ref().err().map(|e| e.to_string()),
                value: result.as_ref().ok().map(Journaled::encode_journal),
            });
        }
        (result, record)
    };

    let (results, runs) = if workers <= 1 || n <= 1 {
        let mut results = Vec::with_capacity(n);
        let mut runs = Vec::with_capacity(n);
        for i in 0..n {
            let (r, rec) = finish_cell(i);
            results.push(r);
            runs.push(rec);
        }
        (results, runs)
    } else {
        // Parallel path, mirroring the plain engine's index-claiming
        // loop — but cells cannot poison anything: the closure never
        // panics (panics are caught and typed inside `finish_cell`).
        type CellSlot<T> = Mutex<Option<(CellResult<T>, RunRecord)>>;
        let next = AtomicUsize::new(0);
        let slots: Vec<CellSlot<T>> = (0..n).map(|_| Mutex::new(None)).collect();
        let finish_cell = &finish_cell;
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = finish_cell(i);
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(out);
                });
            }
        });
        let mut results = Vec::with_capacity(n);
        let mut runs = Vec::with_capacity(n);
        for slot in slots {
            let (r, rec) = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                // anp-lint: allow(D003) — thread::scope joins every worker before collection, so each slot holds exactly one result
                .expect("supervised cell did not produce a result");
            results.push(r);
            runs.push(rec);
        }
        (results, runs)
    };

    let telemetry = SweepTelemetry {
        name: name.to_owned(),
        backend: backend.to_owned(),
        workers: if workers <= 1 || n <= 1 { 1 } else { workers },
        wall_secs: sweep_start.elapsed().as_secs_f64(),
        runs,
    };
    Ok((results, telemetry))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::JobId;
    use anp_simnet::SimTime;

    fn stall() -> StallReport {
        StallReport {
            job: JobId(0),
            job_name: "test".to_owned(),
            at: SimTime::ZERO,
            blocked: Vec::new(),
            failed_sends: Vec::new(),
        }
    }

    fn sup() -> Supervisor {
        Supervisor::none()
    }

    type CellFn = Box<dyn Fn() -> Result<u64, ExperimentError> + Send + Sync>;

    #[test]
    fn panicking_cell_does_not_kill_siblings() {
        let tasks: Vec<(String, CellFn)> = (0..8u64)
            .map(|i| {
                let f: CellFn = if i == 3 {
                    Box::new(|| panic!("injected panic in cell 3"))
                } else {
                    Box::new(move || Ok(i * 10))
                };
                (format!("cell{i}"), f)
            })
            .collect();
        let (results, t) =
            sweep_supervised("iso", Parallelism::fixed(8), &sup(), None, 0, tasks).unwrap();
        assert_eq!(completed_count(&results), 7);
        for (i, r) in results.iter().enumerate() {
            if i == 3 {
                let err = r.as_ref().unwrap_err();
                assert_eq!(err.cell(), 3);
                assert!(matches!(err, TaskError::Panicked { payload, .. }
                    if payload.contains("injected panic")));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i as u64 * 10, "sibling {i} completes");
            }
        }
        assert_eq!(t.runs[3].outcome, "panicked");
        assert_eq!(t.runs[2].outcome, "ok");
        assert_eq!(
            partial_exit_code(completed_count(&results), results.len()),
            3
        );
    }

    #[test]
    fn retries_rerun_failed_and_panicked_cells() {
        let attempts = AtomicUsize::new(0);
        let tasks: Vec<(String, _)> = vec![("flaky".to_owned(), || {
            match attempts.fetch_add(1, Ordering::SeqCst) {
                0 => Err(ExperimentError::NoSamples),
                1 => panic!("second attempt panics"),
                _ => Ok(7u64),
            }
        })];
        let supervisor = Supervisor {
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
            ..Supervisor::none()
        };
        let (results, t) =
            sweep_supervised("retry", Parallelism::fixed(1), &supervisor, None, 0, tasks).unwrap();
        assert_eq!(*results[0].as_ref().unwrap(), 7);
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        assert_eq!(t.runs[0].retries, 2);
        assert_eq!(t.runs[0].outcome, "ok");
    }

    #[test]
    fn budget_errors_are_not_retried() {
        let attempts = AtomicUsize::new(0);
        let tasks: Vec<(String, _)> = vec![("capped".to_owned(), || {
            attempts.fetch_add(1, Ordering::SeqCst);
            Err::<u64, _>(ExperimentError::Budget(stall()))
        })];
        let supervisor = Supervisor {
            retry: RetryPolicy {
                max_retries: 5,
                backoff: Duration::ZERO,
            },
            ..Supervisor::none()
        };
        let (results, t) =
            sweep_supervised("budget", Parallelism::fixed(1), &supervisor, None, 0, tasks).unwrap();
        assert!(matches!(
            results[0].as_ref().unwrap_err(),
            TaskError::Budget { .. }
        ));
        assert_eq!(attempts.load(Ordering::SeqCst), 1, "budget must fail fast");
        assert_eq!(t.runs[0].outcome, "budget");
        assert_eq!(
            partial_exit_code(completed_count(&results), results.len()),
            1
        );
    }

    #[test]
    fn exhausted_retries_keep_the_typed_hole() {
        let tasks: Vec<(String, _)> = vec![("dead".to_owned(), || {
            Err::<u64, _>(ExperimentError::NoSamples)
        })];
        let supervisor = Supervisor {
            retry: RetryPolicy {
                max_retries: 2,
                backoff: Duration::ZERO,
            },
            ..Supervisor::none()
        };
        let (results, t) =
            sweep_supervised("dead", Parallelism::fixed(1), &supervisor, None, 0, tasks).unwrap();
        let err = results[0].as_ref().unwrap_err();
        assert!(matches!(
            err,
            TaskError::Failed {
                error: ExperimentError::NoSamples,
                ..
            }
        ));
        assert_eq!(t.runs[0].retries, 2);
        assert_eq!(t.runs[0].outcome, "failed");
    }

    #[test]
    fn journal_round_trip_resumes_only_missing_cells() {
        let dir = std::env::temp_dir().join(format!("anp-supervise-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("resume.jsonl");

        let calls = AtomicUsize::new(0);
        let mk_tasks = |fail_two: bool| -> Vec<(String, _)> {
            (0..4u64)
                .map(|i| {
                    let calls = &calls;
                    (format!("cell{i}"), move || {
                        calls.fetch_add(1, Ordering::SeqCst);
                        if fail_two && i == 2 {
                            Err(ExperimentError::NoSamples)
                        } else {
                            Ok(i * 111)
                        }
                    })
                })
                .collect()
        };

        let journal = RunJournal::create(&path).unwrap();
        let (first, _) = sweep_supervised(
            "res",
            Parallelism::fixed(2),
            &sup(),
            Some(&journal),
            99,
            mk_tasks(true),
        )
        .unwrap();
        assert_eq!(completed_count(&first), 3);
        assert_eq!(calls.load(Ordering::SeqCst), 4);
        drop(journal);

        let journal = RunJournal::resume(&path).unwrap();
        let (second, t) = sweep_supervised(
            "res",
            Parallelism::fixed(2),
            &sup(),
            Some(&journal),
            99,
            mk_tasks(false),
        )
        .unwrap();
        assert_eq!(
            calls.load(Ordering::SeqCst),
            5,
            "only the failed cell re-runs"
        );
        let values: Vec<u64> = second.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(values, vec![0, 111, 222, 333]);
        let resumed = t.runs.iter().filter(|r| r.outcome == "resumed").count();
        assert_eq!(resumed, 3);

        // A different config fingerprint must refuse the journal.
        let err = sweep_supervised(
            "res",
            Parallelism::fixed(1),
            &sup(),
            Some(&journal),
            100,
            mk_tasks(false),
        )
        .unwrap_err();
        assert!(matches!(err, JournalError::FingerprintMismatch { .. }));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn world_allowance_tracks_charged_events() {
        install_budget(RunBudget {
            wall: None,
            events: Some(1000),
        });
        assert_eq!(world_allowance().0, Some(1000));
        charge_events(300);
        assert_eq!(world_allowance().0, Some(700));
        charge_events(900);
        assert_eq!(world_allowance().0, Some(0), "saturates at zero");
        clear_budget();
        assert_eq!(world_allowance(), (None, None));
        charge_events(5); // no-op outside a supervised cell
    }
}
