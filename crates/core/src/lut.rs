//! The look-up table: everything measured once per CompressionB
//! configuration (paper §IV-A, §IV-C).
//!
//! For each of the 40 CompressionB configurations `Ci` the table stores:
//!
//! * the impact profile measured while `Ci` runs (its latency footprint —
//!   mean, σ, and PDF, feeding the three LUT models);
//! * the switch utilization the queue model attributes to `Ci` (Fig. 6);
//! * the measured performance degradation of each application under `Ci`
//!   (Fig. 7).
//!
//! Building the full table is the expensive, *linear* part of the paper's
//! methodology: measurements grow with the number of components, while the
//! pairings predicted from the table grow quadratically.

use std::collections::BTreeMap;

use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

use crate::backend::{Backend, DesBackend, WorkloadSpec};
use crate::experiments::{degradation_percent, ExperimentConfig, ExperimentError};
use crate::journal::{config_fingerprint, JournalError, Journaled, RunJournal};
use crate::queue::Calibration;
use crate::samples::LatencyProfile;
use crate::supervise::{partial_exit_code, sweep_supervised_for, Supervisor, TaskError};
use crate::sweep::{sweep_recorded_for, SweepTelemetry};

/// Everything measured for one CompressionB configuration.
#[derive(Debug, Clone)]
pub struct CompressionEntry {
    /// The configuration.
    pub config: CompressionConfig,
    /// Probe latency profile while the configuration runs.
    pub profile: LatencyProfile,
    /// Queue-model switch utilization of the configuration (`ρ` in [0, 1)).
    pub utilization: f64,
    /// Measured % degradation of each application under this
    /// configuration.
    pub slowdown: BTreeMap<AppKind, f64>,
}

/// One value of the flattened measurement grid, tagged for journaling:
/// the three cell families of a table measurement produce different
/// types, so the journal codec carries a `kind` discriminant.
enum LutCell {
    /// A solo application runtime.
    Solo(SimDuration),
    /// A per-configuration impact profile.
    Impact(LatencyProfile),
    /// One (application, configuration) loaded runtime.
    Runtime(SimDuration),
}

impl Journaled for LutCell {
    fn encode_journal(&self) -> String {
        let (kind, v) = match self {
            LutCell::Solo(t) => ("solo", t.encode_journal()),
            LutCell::Impact(p) => ("impact", p.encode_journal()),
            LutCell::Runtime(t) => ("runtime", t.encode_journal()),
        };
        format!("{{\"kind\":\"{kind}\",\"v\":{v}}}")
    }

    fn decode_journal(s: &str) -> Option<Self> {
        let body = s.trim().strip_prefix("{\"kind\":\"")?.strip_suffix('}')?;
        let (kind, v) = body.split_once("\",\"v\":")?;
        Some(match kind {
            "solo" => LutCell::Solo(Journaled::decode_journal(v)?),
            "impact" => LutCell::Impact(Journaled::decode_journal(v)?),
            "runtime" => LutCell::Runtime(Journaled::decode_journal(v)?),
            _ => return None,
        })
    }
}

/// The outcome of a supervised table measurement
/// ([`LookupTable::measure_supervised_with`]): whatever completed, plus
/// typed holes for every cell that did not.
#[derive(Debug)]
pub struct SupervisedTable {
    /// The table assembled from the completed cells. `None` when no
    /// configuration completed its impact profile (nothing to look up);
    /// partial otherwise — entries may be missing, and an entry's
    /// slowdown map covers only the apps whose runtime and solo baseline
    /// both completed.
    pub table: Option<LookupTable>,
    /// Why each missing cell is missing, in serial reassembly order.
    pub failures: Vec<TaskError>,
    /// Cells that produced a value (journaled successes included).
    pub completed: usize,
    /// Total cells in the measurement grid.
    pub total: usize,
}

impl SupervisedTable {
    /// True when every cell completed — the table equals an unsupervised
    /// measurement byte-for-byte.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The campaign exit code for this outcome: 0 complete, 3 partial,
    /// 1 when nothing completed.
    pub fn exit_code(&self) -> i32 {
        partial_exit_code(self.completed, self.total)
    }
}

/// The full look-up table plus the calibration it was measured under.
#[derive(Debug, Clone)]
pub struct LookupTable {
    /// Idle-switch queue calibration.
    pub calibration: Calibration,
    /// One entry per measured CompressionB configuration.
    pub entries: Vec<CompressionEntry>,
    /// Solo runtime of each application (degradation baselines).
    pub solo: BTreeMap<AppKind, SimDuration>,
}

impl LookupTable {
    /// Assembles a table from already-measured parts (used by tests and by
    /// harnesses that parallelize the measurement loop).
    pub fn from_parts(
        calibration: Calibration,
        entries: Vec<CompressionEntry>,
        solo: BTreeMap<AppKind, SimDuration>,
    ) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!entries.is_empty(), "a look-up table needs entries");
        LookupTable {
            calibration,
            entries,
            solo,
        }
    }

    /// Measures the complete table: for every configuration an impact
    /// profile, and for every (app, configuration) pair a compression
    /// experiment. This is the expensive path — `configs.len()` impact
    /// runs plus `apps.len() × configs.len()` runtime runs; use
    /// [`LookupTable::from_parts`] to assemble pre-measured pieces.
    ///
    /// Every run is an independent simulation, so the whole grid fans out
    /// across [`ExperimentConfig::jobs`] worker threads; results are
    /// collected by index, making the table byte-identical to a serial
    /// measurement for any worker count.
    ///
    /// `progress` is called with a human-readable line as each measurement
    /// lands (pass `|_| {}` to discard).
    pub fn measure(
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        progress: impl FnMut(&str),
    ) -> Result<Self, ExperimentError> {
        Self::measure_recorded(cfg, calibration, apps, configs, progress).map(|(t, _)| t)
    }

    /// [`LookupTable::measure`], additionally returning the sweep's
    /// telemetry record (per-run wall time and event counts). Runs on the
    /// reference DES backend.
    pub fn measure_recorded(
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        Self::measure_recorded_with(&DesBackend, cfg, calibration, apps, configs, progress)
    }

    /// [`LookupTable::measure_recorded`] on an explicit measurement
    /// backend. With [`DesBackend`] this is byte-identical to the classic
    /// path; with the flow-level backend every cell is analytic.
    pub fn measure_recorded_with(
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        mut progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        /// One cell of the flattened measurement grid.
        enum Cell {
            Solo(Result<SimDuration, ExperimentError>),
            Impact(Result<LatencyProfile, ExperimentError>),
            Runtime(Result<SimDuration, ExperimentError>),
        }

        // Flatten all three independent run families into one task list:
        // solo runtimes, per-config impact profiles, and the app × config
        // runtime grid. Task order is the serial measurement order, and
        // the sweep returns results in task order.
        let mut tasks: Vec<(String, Box<dyn FnOnce() -> Cell + Send + '_>)> = Vec::new();
        for &app in apps {
            tasks.push((
                format!("solo:{}", app.name()),
                Box::new(move || Cell::Solo(backend.measure_solo_runtime(cfg, app))),
            ));
        }
        for comp in configs {
            tasks.push((
                format!("impact:{}", comp.label()),
                Box::new(move || {
                    Cell::Impact(
                        backend.measure_impact_profile(cfg, WorkloadSpec::Compression(comp)),
                    )
                }),
            ));
        }
        for comp in configs {
            for &app in apps {
                tasks.push((
                    format!("grid:{}:{}", app.name(), comp.label()),
                    Box::new(move || {
                        Cell::Runtime(backend.measure_compression_run(cfg, app, comp))
                    }),
                ));
            }
        }
        let (cells, telemetry) =
            sweep_recorded_for("lookup-table", backend.name(), cfg.jobs, tasks);
        let mut cells = cells.into_iter();

        // Reassemble in the exact order the serial loop produced, so
        // progress lines and error precedence are unchanged.
        let mut solo = BTreeMap::new();
        let mut solo_results = Vec::with_capacity(apps.len());
        for &app in apps {
            match cells
                .next()
                .ok_or(ExperimentError::SweepShape { stage: "solo" })?
            {
                Cell::Solo(r) => solo_results.push((app, r)),
                _ => unreachable!("cell order mismatch"),
            }
        }
        let mut profiles = Vec::with_capacity(configs.len());
        for _ in configs {
            match cells
                .next()
                .ok_or(ExperimentError::SweepShape { stage: "impact" })?
            {
                Cell::Impact(r) => profiles.push(r),
                _ => unreachable!("cell order mismatch"),
            }
        }
        let mut grid = Vec::with_capacity(configs.len() * apps.len());
        for _ in 0..configs.len() * apps.len() {
            match cells
                .next()
                .ok_or(ExperimentError::SweepShape { stage: "grid" })?
            {
                Cell::Runtime(r) => grid.push(r),
                _ => unreachable!("cell order mismatch"),
            }
        }

        for (app, r) in solo_results {
            let t = r?;
            progress(&format!("solo {} = {t}", app.name()));
            solo.insert(app, t);
        }
        let mut grid = grid.into_iter();
        let mut entries = Vec::with_capacity(configs.len());
        for (comp, profile) in configs.iter().zip(profiles) {
            let profile = profile?;
            let utilization = calibration.utilization(&profile);
            progress(&format!(
                "impact {} -> mean {:.2}us util {:.1}%",
                comp.label(),
                profile.mean(),
                utilization * 100.0
            ));
            let mut slowdown = BTreeMap::new();
            for &app in apps {
                let t = grid
                    .next()
                    .ok_or(ExperimentError::SweepShape { stage: "grid" })??;
                let d = degradation_percent(solo[&app], t);
                progress(&format!(
                    "  {} under {} -> {:.1}%",
                    app.name(),
                    comp.label(),
                    d
                ));
                slowdown.insert(app, d);
            }
            entries.push(CompressionEntry {
                config: *comp,
                profile,
                utilization,
                slowdown,
            });
        }
        Ok((
            LookupTable::from_parts(calibration, entries, solo),
            telemetry,
        ))
    }

    /// [`LookupTable::measure_recorded_with`] under a supervision
    /// envelope: every cell runs with panic isolation, the supervisor's
    /// per-cell budget and retry policy, and (with a journal) crash-safe
    /// resume. Instead of aborting on the first failure, the measurement
    /// keeps every sibling cell and returns a [`SupervisedTable`] whose
    /// typed holes say exactly which cells are missing and why.
    ///
    /// A fully completed measurement is byte-identical to
    /// [`LookupTable::measure_recorded_with`] — same table, same progress
    /// lines — and so is a `--resume` completion of a partial journal.
    /// Failed cells emit `… FAILED: <error>` progress lines; runtimes
    /// whose solo baseline is missing cannot become slowdowns and are
    /// reported as `(no solo baseline)`.
    #[allow(clippy::too_many_arguments)]
    pub fn measure_supervised_with(
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        supervisor: &Supervisor,
        journal: Option<&RunJournal>,
        mut progress: impl FnMut(&str),
    ) -> Result<(SupervisedTable, SweepTelemetry), JournalError> {
        type LutTask<'a> = Box<dyn Fn() -> Result<LutCell, ExperimentError> + Send + Sync + 'a>;

        // The same flattening (and labels) as the plain path, but tasks
        // are `Fn` so the supervisor can retry them.
        let mut tasks: Vec<(String, LutTask<'_>)> = Vec::new();
        for &app in apps {
            tasks.push((
                format!("solo:{}", app.name()),
                Box::new(move || backend.measure_solo_runtime(cfg, app).map(LutCell::Solo)),
            ));
        }
        for comp in configs {
            tasks.push((
                format!("impact:{}", comp.label()),
                Box::new(move || {
                    backend
                        .measure_impact_profile(cfg, WorkloadSpec::Compression(comp))
                        .map(LutCell::Impact)
                }),
            ));
        }
        for comp in configs {
            for &app in apps {
                tasks.push((
                    format!("grid:{}:{}", app.name(), comp.label()),
                    Box::new(move || {
                        backend
                            .measure_compression_run(cfg, app, comp)
                            .map(LutCell::Runtime)
                    }),
                ));
            }
        }
        let total = tasks.len();
        let (results, telemetry) = sweep_supervised_for(
            "lookup-table",
            backend.name(),
            cfg.jobs,
            supervisor,
            journal,
            config_fingerprint(cfg, backend.name()),
            tasks,
        )?;
        let mut results = results.into_iter();
        let mut failures = Vec::new();

        // Reassemble in serial order, exactly like the plain path, but
        // route failures into typed holes instead of `?`-ing out.
        let mut solo = BTreeMap::new();
        for &app in apps {
            match results.next().ok_or_else(|| JournalError::ShapeMismatch {
                sweep: "lookup-table".to_owned(),
                detail: "sweep returned too few cells (short at stage solo)".to_owned(),
            })? {
                Ok(LutCell::Solo(t)) => {
                    progress(&format!("solo {} = {t}", app.name()));
                    solo.insert(app, t);
                }
                Ok(_) => unreachable!("cell order mismatch"),
                Err(e) => {
                    progress(&format!("solo {} FAILED: {e}", app.name()));
                    failures.push(e);
                }
            }
        }
        let mut profiles = Vec::with_capacity(configs.len());
        for _ in configs {
            match results.next().ok_or_else(|| JournalError::ShapeMismatch {
                sweep: "lookup-table".to_owned(),
                detail: "sweep returned too few cells (short at stage impact)".to_owned(),
            })? {
                Ok(LutCell::Impact(p)) => profiles.push(Ok(p)),
                Ok(_) => unreachable!("cell order mismatch"),
                Err(e) => profiles.push(Err(e)),
            }
        }
        let mut grid = Vec::with_capacity(configs.len() * apps.len());
        for _ in 0..configs.len() * apps.len() {
            match results.next().ok_or_else(|| JournalError::ShapeMismatch {
                sweep: "lookup-table".to_owned(),
                detail: "sweep returned too few cells (short at stage grid)".to_owned(),
            })? {
                Ok(LutCell::Runtime(t)) => grid.push(Ok(t)),
                Ok(_) => unreachable!("cell order mismatch"),
                Err(e) => grid.push(Err(e)),
            }
        }

        let mut grid = grid.into_iter();
        let mut entries = Vec::with_capacity(configs.len());
        for (comp, profile) in configs.iter().zip(profiles) {
            let measured = match profile {
                Ok(profile) => {
                    let utilization = calibration.utilization(&profile);
                    progress(&format!(
                        "impact {} -> mean {:.2}us util {:.1}%",
                        comp.label(),
                        profile.mean(),
                        utilization * 100.0
                    ));
                    Some((profile, utilization))
                }
                Err(e) => {
                    progress(&format!("impact {} FAILED: {e}", comp.label()));
                    failures.push(e);
                    None
                }
            };
            let mut slowdown = BTreeMap::new();
            for &app in apps {
                match grid.next().ok_or_else(|| JournalError::ShapeMismatch {
                    sweep: "lookup-table".to_owned(),
                    detail: "runtime grid exhausted early".to_owned(),
                })? {
                    Ok(t) => match solo.get(&app) {
                        Some(&baseline) => {
                            let d = degradation_percent(baseline, t);
                            progress(&format!(
                                "  {} under {} -> {:.1}%",
                                app.name(),
                                comp.label(),
                                d
                            ));
                            slowdown.insert(app, d);
                        }
                        None => progress(&format!(
                            "  {} under {} -> (no solo baseline)",
                            app.name(),
                            comp.label()
                        )),
                    },
                    Err(e) => {
                        progress(&format!(
                            "  {} under {} FAILED: {e}",
                            app.name(),
                            comp.label()
                        ));
                        failures.push(e);
                    }
                }
            }
            // Without an impact profile the configuration has no entry:
            // its (journaled) runtimes wait for a --resume completion.
            if let Some((profile, utilization)) = measured {
                entries.push(CompressionEntry {
                    config: *comp,
                    profile,
                    utilization,
                    slowdown,
                });
            }
        }
        let completed = total - failures.len();
        let table =
            (!entries.is_empty()).then(|| LookupTable::from_parts(calibration, entries, solo));
        Ok((
            SupervisedTable {
                table,
                failures,
                completed,
                total,
            },
            telemetry,
        ))
    }

    /// The (utilization, slowdown) curve of one application, sorted by
    /// utilization — the `p_A` mapping of §V-B.
    pub fn degradation_curve(&self, app: AppKind) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .entries
            .iter()
            .filter_map(|e| e.slowdown.get(&app).map(|d| (e.utilization, *d)))
            .collect();
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        pts
    }

    /// Range of utilizations covered by the table (the paper reports
    /// 26–92 % on Cab).
    pub fn utilization_range(&self) -> (f64, f64) {
        let lo = self
            .entries
            .iter()
            .map(|e| e.utilization)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .entries
            .iter()
            .map(|e| e.utilization)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::queue::MuPolicy;

    /// A synthetic latency profile centred on `mean_us` with spread
    /// `sigma_us` (triangular-ish, deterministic).
    pub fn synthetic_profile(mean_us: f64, sigma_us: f64) -> LatencyProfile {
        let samples: Vec<f64> = (0..200)
            .map(|i| {
                let t = (i % 21) as f64 / 10.0 - 1.0; // -1 .. 1
                (mean_us + t * sigma_us * 1.7).max(0.05)
            })
            .collect();
        LatencyProfile::from_samples(&samples)
    }

    /// A synthetic calibration: µ = 1 /µs, Var(S) = 0.25 µs².
    pub fn synthetic_calibration() -> Calibration {
        Calibration {
            mu: 1.0,
            var_s: 0.25,
            idle_mean: 1.1,
            policy: MuPolicy::MinLatency,
        }
    }

    /// A deterministic in-memory backend for supervised-path tests. Every
    /// observable is synthetic (no simulation), each call is counted, and
    /// cells listed in `fail` / `panic` misbehave on demand. Cells are
    /// addressed by the same labels the sweeps use: `solo:{app}`,
    /// `impact:{config}`, `grid:{app}:{config}`, `profile:{app}`,
    /// `corun:{victim}+{other}`.
    pub struct FakeBackend {
        /// Labels that return [`ExperimentError::NoSamples`].
        pub fail: Vec<String>,
        /// Labels that panic mid-measurement.
        pub panic: Vec<String>,
        /// Total measurement calls served (including failing ones).
        pub calls: std::sync::atomic::AtomicUsize,
    }

    impl FakeBackend {
        /// A backend where every cell succeeds.
        pub fn clean() -> Self {
            Self::faulty(Vec::new(), Vec::new())
        }

        /// A backend with injected failures and panics.
        pub fn faulty(fail: Vec<String>, panic: Vec<String>) -> Self {
            FakeBackend {
                fail,
                panic,
                calls: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        /// Calls served so far.
        pub fn call_count(&self) -> usize {
            self.calls.load(std::sync::atomic::Ordering::SeqCst)
        }

        fn gate(&self, label: &str) -> Result<(), ExperimentError> {
            self.calls.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
            if self.panic.iter().any(|l| l == label) {
                panic!("injected panic in {label}");
            }
            if self.fail.iter().any(|l| l == label) {
                return Err(ExperimentError::NoSamples);
            }
            Ok(())
        }
    }

    impl Backend for FakeBackend {
        fn name(&self) -> &'static str {
            "fake"
        }

        fn supports_faults(&self) -> bool {
            true
        }

        fn supports_timed_series(&self) -> bool {
            false
        }

        fn measure_impact_profile(
            &self,
            _cfg: &ExperimentConfig,
            workload: WorkloadSpec<'_>,
        ) -> Result<LatencyProfile, ExperimentError> {
            let (label, mean) = match workload {
                WorkloadSpec::Idle => ("impact:idle".to_owned(), 1.1),
                WorkloadSpec::App(app) => (
                    format!("profile:{}", app.name()),
                    2.0 + (app.name().len() % 3) as f64 * 0.4,
                ),
                WorkloadSpec::Compression(comp) => (
                    format!("impact:{}", comp.label()),
                    1.5 + (comp.label().len() % 5) as f64 * 0.3,
                ),
            };
            self.gate(&label)?;
            Ok(synthetic_profile(mean, 0.5))
        }

        fn measure_compression_run(
            &self,
            _cfg: &ExperimentConfig,
            app: AppKind,
            comp: &CompressionConfig,
        ) -> Result<SimDuration, ExperimentError> {
            self.gate(&format!("grid:{}:{}", app.name(), comp.label()))?;
            Ok(SimDuration::from_millis(150))
        }

        fn measure_solo_runtime(
            &self,
            _cfg: &ExperimentConfig,
            app: AppKind,
        ) -> Result<SimDuration, ExperimentError> {
            self.gate(&format!("solo:{}", app.name()))?;
            Ok(SimDuration::from_millis(100))
        }

        fn measure_corun_runtime(
            &self,
            _cfg: &ExperimentConfig,
            victim: AppKind,
            other: AppKind,
        ) -> Result<SimDuration, ExperimentError> {
            self.gate(&format!("corun:{}+{}", victim.name(), other.name()))?;
            Ok(SimDuration::from_millis(130))
        }
    }

    /// A synthetic table with `n` entries of rising utilization where each
    /// app's slowdown is `gain × utilization²` percent.
    pub fn synthetic_table(n: usize, gains: &[(AppKind, f64)]) -> LookupTable {
        let calibration = synthetic_calibration();
        let entries: Vec<CompressionEntry> = (0..n)
            .map(|i| {
                let u = 0.2 + 0.7 * i as f64 / (n.max(2) - 1) as f64;
                // Invert utilization to the sojourn the calibration would
                // need to see, so profiles and utilization stay coherent.
                let lambda = u * calibration.mu;
                let w = calibration.pk_sojourn(lambda);
                let profile = synthetic_profile(w, 0.2 + u);
                let utilization = calibration.utilization(&profile);
                let slowdown = gains
                    .iter()
                    .map(|&(app, g)| (app, g * utilization * utilization * 100.0))
                    .collect();
                CompressionEntry {
                    config: CompressionConfig::new(1, 25_000 * (i as u64 + 1), 1),
                    profile,
                    utilization,
                    slowdown,
                }
            })
            .collect();
        let solo = gains
            .iter()
            .map(|&(app, _)| (app, SimDuration::from_millis(100)))
            .collect();
        LookupTable::from_parts(calibration, entries, solo)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn degradation_curve_is_sorted_and_complete() {
        let table = synthetic_table(8, &[(AppKind::Fftw, 2.0), (AppKind::Mcb, 0.05)]);
        let curve = table.degradation_curve(AppKind::Fftw);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0, "curve must be sorted by utilization");
            assert!(
                w[0].1 <= w[1].1,
                "synthetic slowdown grows with utilization"
            );
        }
    }

    #[test]
    fn missing_app_yields_empty_curve() {
        let table = synthetic_table(4, &[(AppKind::Fftw, 1.0)]);
        assert!(table.degradation_curve(AppKind::Amg).is_empty());
    }

    #[test]
    fn utilization_range_brackets_entries() {
        let table = synthetic_table(6, &[(AppKind::Milc, 1.0)]);
        let (lo, hi) = table.utilization_range();
        assert!(lo < hi);
        for e in &table.entries {
            assert!((lo..=hi).contains(&e.utilization));
        }
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn empty_table_panics() {
        LookupTable::from_parts(synthetic_calibration(), vec![], BTreeMap::new());
    }

    #[test]
    fn lut_cell_journal_codec_round_trips() {
        let cells = [
            LutCell::Solo(SimDuration::from_nanos(123_456_789)),
            LutCell::Impact(synthetic_profile(2.0, 0.5)),
            LutCell::Runtime(SimDuration::from_millis(150)),
        ];
        for cell in &cells {
            let enc = cell.encode_journal();
            let back = LutCell::decode_journal(&enc).expect("decodes");
            assert_eq!(back.encode_journal(), enc, "bit-exact round trip");
            assert_eq!(
                std::mem::discriminant(&back),
                std::mem::discriminant(cell),
                "kind tag survives"
            );
        }
        assert!(LutCell::decode_journal("{\"kind\":\"other\",\"v\":1}").is_none());
    }

    #[test]
    fn supervised_measurement_matches_plain_when_clean() {
        let cfg = ExperimentConfig::cab();
        let apps = [AppKind::Fftw, AppKind::Milc];
        let configs = [
            CompressionConfig::new(1, 25_000, 1),
            CompressionConfig::new(2, 50_000, 1),
        ];
        let mut plain_lines = Vec::new();
        let (plain, _) = LookupTable::measure_recorded_with(
            &FakeBackend::clean(),
            &cfg,
            synthetic_calibration(),
            &apps,
            &configs,
            |l| plain_lines.push(l.to_owned()),
        )
        .unwrap();
        let mut sup_lines = Vec::new();
        let (outcome, t) = LookupTable::measure_supervised_with(
            &FakeBackend::clean(),
            &cfg,
            synthetic_calibration(),
            &apps,
            &configs,
            &Supervisor::none(),
            None,
            |l| sup_lines.push(l.to_owned()),
        )
        .unwrap();
        assert!(outcome.is_complete());
        assert_eq!(outcome.exit_code(), 0);
        assert_eq!(sup_lines, plain_lines, "identical progress lines");
        let table = outcome.table.unwrap();
        assert_eq!(table.solo, plain.solo);
        assert_eq!(table.entries.len(), plain.entries.len());
        for (a, b) in table.entries.iter().zip(&plain.entries) {
            assert_eq!(a.profile.encode_journal(), b.profile.encode_journal());
            assert_eq!(a.utilization.to_bits(), b.utilization.to_bits());
            assert_eq!(a.slowdown, b.slowdown);
        }
        assert_eq!(t.runs.len(), 2 + 2 + 4);
        assert!(t.runs.iter().all(|r| r.outcome == "ok"));
    }

    #[test]
    fn supervised_measurement_isolates_failures_into_typed_holes() {
        let cfg = ExperimentConfig::cab();
        let apps = [AppKind::Fftw, AppKind::Milc];
        let c0 = CompressionConfig::new(1, 25_000, 1);
        let c1 = CompressionConfig::new(2, 50_000, 1);
        let backend = FakeBackend::faulty(
            vec![format!("impact:{}", c0.label())],
            vec![format!("grid:{}:{}", AppKind::Fftw.name(), c1.label())],
        );
        let (outcome, t) = LookupTable::measure_supervised_with(
            &backend,
            &cfg,
            synthetic_calibration(),
            &apps,
            &[c0, c1],
            &Supervisor::none(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(outcome.total, 8);
        assert_eq!(outcome.completed, 6);
        assert_eq!(outcome.exit_code(), 3);
        assert!(outcome
            .failures
            .iter()
            .any(|e| matches!(e, TaskError::Failed { .. })));
        assert!(outcome
            .failures
            .iter()
            .any(|e| matches!(e, TaskError::Panicked { .. })));
        let table = outcome.table.unwrap();
        assert_eq!(table.entries.len(), 1, "the failed impact has no entry");
        let entry = &table.entries[0];
        assert_eq!(entry.config.label(), c1.label());
        assert!(
            !entry.slowdown.contains_key(&AppKind::Fftw),
            "panicked grid cell leaves a hole"
        );
        assert!(entry.slowdown.contains_key(&AppKind::Milc));
        assert_eq!(table.solo.len(), 2, "solos are untouched by the faults");
        assert!(t.runs.iter().any(|r| r.outcome == "panicked"));
        assert!(t.runs.iter().any(|r| r.outcome == "failed"));
    }

    #[test]
    fn supervised_measurement_resumes_missing_cells_from_journal() {
        let dir = std::env::temp_dir().join(format!("anp-lut-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lut.jsonl");
        let cfg = ExperimentConfig::cab();
        let apps = [AppKind::Fftw];
        let configs = [CompressionConfig::new(1, 25_000, 1)];

        // 1 solo + 1 impact + 1 grid cell; the grid cell fails first.
        let faulty = FakeBackend::faulty(
            vec![format!(
                "grid:{}:{}",
                AppKind::Fftw.name(),
                configs[0].label()
            )],
            Vec::new(),
        );
        let journal = RunJournal::create(&path).unwrap();
        let (first, _) = LookupTable::measure_supervised_with(
            &faulty,
            &cfg,
            synthetic_calibration(),
            &apps,
            &configs,
            &Supervisor::none(),
            Some(&journal),
            |_| {},
        )
        .unwrap();
        assert_eq!(first.completed, 2);
        assert_eq!(first.exit_code(), 3);
        assert_eq!(faulty.call_count(), 3);
        drop(journal);

        let journal = RunJournal::resume(&path).unwrap();
        let clean = FakeBackend::clean();
        let mut resumed_lines = Vec::new();
        let (second, t) = LookupTable::measure_supervised_with(
            &clean,
            &cfg,
            synthetic_calibration(),
            &apps,
            &configs,
            &Supervisor::none(),
            Some(&journal),
            |l| resumed_lines.push(l.to_owned()),
        )
        .unwrap();
        assert!(second.is_complete());
        assert_eq!(clean.call_count(), 1, "only the failed grid cell re-runs");
        assert_eq!(t.runs.iter().filter(|r| r.outcome == "resumed").count(), 2);

        // The resumed table is byte-identical to an unfaulted plain run.
        let mut plain_lines = Vec::new();
        let (plain, _) = LookupTable::measure_recorded_with(
            &FakeBackend::clean(),
            &cfg,
            synthetic_calibration(),
            &apps,
            &configs,
            |l| plain_lines.push(l.to_owned()),
        )
        .unwrap();
        assert_eq!(resumed_lines, plain_lines);
        let table = second.table.unwrap();
        assert_eq!(table.solo, plain.solo);
        assert_eq!(
            table.entries[0].profile.encode_journal(),
            plain.entries[0].profile.encode_journal()
        );
        assert_eq!(table.entries[0].slowdown, plain.entries[0].slowdown);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn synthetic_utilizations_are_coherent() {
        // The synthetic profiles are built by inverting P-K, so the
        // recovered utilization must be close to the intended one.
        let table = synthetic_table(5, &[(AppKind::Fftw, 1.0)]);
        for (i, e) in table.entries.iter().enumerate() {
            let intended = 0.2 + 0.7 * i as f64 / 4.0;
            assert!(
                (e.utilization - intended).abs() < 0.15,
                "entry {i}: intended {intended}, got {}",
                e.utilization
            );
        }
    }
}
