//! The look-up table: everything measured once per CompressionB
//! configuration (paper §IV-A, §IV-C).
//!
//! For each of the 40 CompressionB configurations `Ci` the table stores:
//!
//! * the impact profile measured while `Ci` runs (its latency footprint —
//!   mean, σ, and PDF, feeding the three LUT models);
//! * the switch utilization the queue model attributes to `Ci` (Fig. 6);
//! * the measured performance degradation of each application under `Ci`
//!   (Fig. 7).
//!
//! Building the full table is the expensive, *linear* part of the paper's
//! methodology: measurements grow with the number of components, while the
//! pairings predicted from the table grow quadratically.

use std::collections::BTreeMap;

use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

use crate::backend::{Backend, DesBackend, WorkloadSpec};
use crate::experiments::{degradation_percent, ExperimentConfig, ExperimentError};
use crate::queue::Calibration;
use crate::samples::LatencyProfile;
use crate::sweep::{sweep_recorded_for, SweepTelemetry};

/// Everything measured for one CompressionB configuration.
#[derive(Debug, Clone)]
pub struct CompressionEntry {
    /// The configuration.
    pub config: CompressionConfig,
    /// Probe latency profile while the configuration runs.
    pub profile: LatencyProfile,
    /// Queue-model switch utilization of the configuration (`ρ` in [0, 1)).
    pub utilization: f64,
    /// Measured % degradation of each application under this
    /// configuration.
    pub slowdown: BTreeMap<AppKind, f64>,
}

/// The full look-up table plus the calibration it was measured under.
#[derive(Debug, Clone)]
pub struct LookupTable {
    /// Idle-switch queue calibration.
    pub calibration: Calibration,
    /// One entry per measured CompressionB configuration.
    pub entries: Vec<CompressionEntry>,
    /// Solo runtime of each application (degradation baselines).
    pub solo: BTreeMap<AppKind, SimDuration>,
}

impl LookupTable {
    /// Assembles a table from already-measured parts (used by tests and by
    /// harnesses that parallelize the measurement loop).
    pub fn from_parts(
        calibration: Calibration,
        entries: Vec<CompressionEntry>,
        solo: BTreeMap<AppKind, SimDuration>,
    ) -> Self {
        assert!(!entries.is_empty(), "a look-up table needs entries");
        LookupTable {
            calibration,
            entries,
            solo,
        }
    }

    /// Measures the complete table: for every configuration an impact
    /// profile, and for every (app, configuration) pair a compression
    /// experiment. This is the expensive path — `configs.len()` impact
    /// runs plus `apps.len() × configs.len()` runtime runs; use
    /// [`LookupTable::from_parts`] to assemble pre-measured pieces.
    ///
    /// Every run is an independent simulation, so the whole grid fans out
    /// across [`ExperimentConfig::jobs`] worker threads; results are
    /// collected by index, making the table byte-identical to a serial
    /// measurement for any worker count.
    ///
    /// `progress` is called with a human-readable line as each measurement
    /// lands (pass `|_| {}` to discard).
    pub fn measure(
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        progress: impl FnMut(&str),
    ) -> Result<Self, ExperimentError> {
        Self::measure_recorded(cfg, calibration, apps, configs, progress).map(|(t, _)| t)
    }

    /// [`LookupTable::measure`], additionally returning the sweep's
    /// telemetry record (per-run wall time and event counts). Runs on the
    /// reference DES backend.
    pub fn measure_recorded(
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        Self::measure_recorded_with(&DesBackend, cfg, calibration, apps, configs, progress)
    }

    /// [`LookupTable::measure_recorded`] on an explicit measurement
    /// backend. With [`DesBackend`] this is byte-identical to the classic
    /// path; with the flow-level backend every cell is analytic.
    pub fn measure_recorded_with(
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        calibration: Calibration,
        apps: &[AppKind],
        configs: &[CompressionConfig],
        mut progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        /// One cell of the flattened measurement grid.
        enum Cell {
            Solo(Result<SimDuration, ExperimentError>),
            Impact(Result<LatencyProfile, ExperimentError>),
            Runtime(Result<SimDuration, ExperimentError>),
        }

        // Flatten all three independent run families into one task list:
        // solo runtimes, per-config impact profiles, and the app × config
        // runtime grid. Task order is the serial measurement order, and
        // the sweep returns results in task order.
        let mut tasks: Vec<(String, Box<dyn FnOnce() -> Cell + Send + '_>)> = Vec::new();
        for &app in apps {
            tasks.push((
                format!("solo:{}", app.name()),
                Box::new(move || Cell::Solo(backend.measure_solo_runtime(cfg, app))),
            ));
        }
        for comp in configs {
            tasks.push((
                format!("impact:{}", comp.label()),
                Box::new(move || {
                    Cell::Impact(
                        backend.measure_impact_profile(cfg, WorkloadSpec::Compression(comp)),
                    )
                }),
            ));
        }
        for comp in configs {
            for &app in apps {
                tasks.push((
                    format!("grid:{}:{}", app.name(), comp.label()),
                    Box::new(move || {
                        Cell::Runtime(backend.measure_compression_run(cfg, app, comp))
                    }),
                ));
            }
        }
        let (cells, telemetry) =
            sweep_recorded_for("lookup-table", backend.name(), cfg.jobs, tasks);
        let mut cells = cells.into_iter();

        // Reassemble in the exact order the serial loop produced, so
        // progress lines and error precedence are unchanged.
        let mut solo = BTreeMap::new();
        let mut solo_results = Vec::with_capacity(apps.len());
        for &app in apps {
            match cells.next().expect("sweep returned too few cells") {
                Cell::Solo(r) => solo_results.push((app, r)),
                _ => unreachable!("cell order mismatch"),
            }
        }
        let mut profiles = Vec::with_capacity(configs.len());
        for _ in configs {
            match cells.next().expect("sweep returned too few cells") {
                Cell::Impact(r) => profiles.push(r),
                _ => unreachable!("cell order mismatch"),
            }
        }
        let mut grid = Vec::with_capacity(configs.len() * apps.len());
        for _ in 0..configs.len() * apps.len() {
            match cells.next().expect("sweep returned too few cells") {
                Cell::Runtime(r) => grid.push(r),
                _ => unreachable!("cell order mismatch"),
            }
        }

        for (app, r) in solo_results {
            let t = r?;
            progress(&format!("solo {} = {t}", app.name()));
            solo.insert(app, t);
        }
        let mut grid = grid.into_iter();
        let mut entries = Vec::with_capacity(configs.len());
        for (comp, profile) in configs.iter().zip(profiles) {
            let profile = profile?;
            let utilization = calibration.utilization(&profile);
            progress(&format!(
                "impact {} -> mean {:.2}us util {:.1}%",
                comp.label(),
                profile.mean(),
                utilization * 100.0
            ));
            let mut slowdown = BTreeMap::new();
            for &app in apps {
                let t = grid.next().expect("runtime grid exhausted early")?;
                let d = degradation_percent(solo[&app], t);
                progress(&format!(
                    "  {} under {} -> {:.1}%",
                    app.name(),
                    comp.label(),
                    d
                ));
                slowdown.insert(app, d);
            }
            entries.push(CompressionEntry {
                config: *comp,
                profile,
                utilization,
                slowdown,
            });
        }
        Ok((LookupTable::from_parts(calibration, entries, solo), telemetry))
    }

    /// The (utilization, slowdown) curve of one application, sorted by
    /// utilization — the `p_A` mapping of §V-B.
    pub fn degradation_curve(&self, app: AppKind) -> Vec<(f64, f64)> {
        let mut pts: Vec<(f64, f64)> = self
            .entries
            .iter()
            .filter_map(|e| e.slowdown.get(&app).map(|d| (e.utilization, *d)))
            .collect();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("utilization is never NaN"));
        pts
    }

    /// Range of utilizations covered by the table (the paper reports
    /// 26–92 % on Cab).
    pub fn utilization_range(&self) -> (f64, f64) {
        let lo = self
            .entries
            .iter()
            .map(|e| e.utilization)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .entries
            .iter()
            .map(|e| e.utilization)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::queue::MuPolicy;

    /// A synthetic latency profile centred on `mean_us` with spread
    /// `sigma_us` (triangular-ish, deterministic).
    pub fn synthetic_profile(mean_us: f64, sigma_us: f64) -> LatencyProfile {
        let samples: Vec<f64> = (0..200)
            .map(|i| {
                let t = (i % 21) as f64 / 10.0 - 1.0; // -1 .. 1
                (mean_us + t * sigma_us * 1.7).max(0.05)
            })
            .collect();
        LatencyProfile::from_samples(&samples)
    }

    /// A synthetic calibration: µ = 1 /µs, Var(S) = 0.25 µs².
    pub fn synthetic_calibration() -> Calibration {
        Calibration {
            mu: 1.0,
            var_s: 0.25,
            idle_mean: 1.1,
            policy: MuPolicy::MinLatency,
        }
    }

    /// A synthetic table with `n` entries of rising utilization where each
    /// app's slowdown is `gain × utilization²` percent.
    pub fn synthetic_table(n: usize, gains: &[(AppKind, f64)]) -> LookupTable {
        let calibration = synthetic_calibration();
        let entries: Vec<CompressionEntry> = (0..n)
            .map(|i| {
                let u = 0.2 + 0.7 * i as f64 / (n.max(2) - 1) as f64;
                // Invert utilization to the sojourn the calibration would
                // need to see, so profiles and utilization stay coherent.
                let lambda = u * calibration.mu;
                let w = calibration.pk_sojourn(lambda);
                let profile = synthetic_profile(w, 0.2 + u);
                let utilization = calibration.utilization(&profile);
                let slowdown = gains
                    .iter()
                    .map(|&(app, g)| (app, g * utilization * utilization * 100.0))
                    .collect();
                CompressionEntry {
                    config: CompressionConfig::new(1, 25_000 * (i as u64 + 1), 1),
                    profile,
                    utilization,
                    slowdown,
                }
            })
            .collect();
        let solo = gains
            .iter()
            .map(|&(app, _)| (app, SimDuration::from_millis(100)))
            .collect();
        LookupTable::from_parts(calibration, entries, solo)
    }
}

#[cfg(test)]
mod tests {
    use super::test_support::*;
    use super::*;

    #[test]
    fn degradation_curve_is_sorted_and_complete() {
        let table = synthetic_table(8, &[(AppKind::Fftw, 2.0), (AppKind::Mcb, 0.05)]);
        let curve = table.degradation_curve(AppKind::Fftw);
        assert_eq!(curve.len(), 8);
        for w in curve.windows(2) {
            assert!(w[0].0 <= w[1].0, "curve must be sorted by utilization");
            assert!(w[0].1 <= w[1].1, "synthetic slowdown grows with utilization");
        }
    }

    #[test]
    fn missing_app_yields_empty_curve() {
        let table = synthetic_table(4, &[(AppKind::Fftw, 1.0)]);
        assert!(table.degradation_curve(AppKind::Amg).is_empty());
    }

    #[test]
    fn utilization_range_brackets_entries() {
        let table = synthetic_table(6, &[(AppKind::Milc, 1.0)]);
        let (lo, hi) = table.utilization_range();
        assert!(lo < hi);
        for e in &table.entries {
            assert!((lo..=hi).contains(&e.utilization));
        }
    }

    #[test]
    #[should_panic(expected = "needs entries")]
    fn empty_table_panics() {
        LookupTable::from_parts(synthetic_calibration(), vec![], BTreeMap::new());
    }

    #[test]
    fn synthetic_utilizations_are_coherent() {
        // The synthetic profiles are built by inverting P-K, so the
        // recovered utilization must be close to the intended one.
        let table = synthetic_table(5, &[(AppKind::Fftw, 1.0)]);
        for (i, e) in table.entries.iter().enumerate() {
            let intended = 0.2 + 0.7 * i as f64 / 4.0;
            assert!(
                (e.utilization - intended).abs() < 0.15,
                "entry {i}: intended {intended}, got {}",
                e.utilization
            );
        }
    }
}
