//! Crash-safe, append-only run journals for resumable sweeps.
//!
//! A measurement campaign can take hours; a crash (or a kill) must not
//! throw away the cells that already finished. The journal is a JSONL
//! file written *cell by cell*: every completed sweep cell appends one
//! self-contained line (a single `write_all` + flush + `sync_data`, so a
//! line is either fully on disk or absent — a torn final line from a
//! crash mid-write is tolerated and simply re-run). A later invocation
//! passes the journal back via `--resume`; cells whose sweep fingerprint,
//! label, and position match are decoded instead of re-simulated, and the
//! encoding is **bit-exact** (`f64::to_bits` hex, not decimal), so a
//! resumed table is byte-identical to an unfaulted run.
//!
//! Fingerprints guard against resuming with a different experiment: the
//! [`config_fingerprint`] hashes the switch model, probe parameters,
//! windows, seed, and backend — everything that determines a cell's value
//! — but deliberately **not** the worker count, which only affects
//! scheduling (`--jobs 8` can resume a `--jobs 1` journal).

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{BufRead as _, BufReader, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use crate::experiments::ExperimentConfig;

/// Schema tag of the journal header lines.
pub const JOURNAL_SCHEMA: &str = "anp-journal-v1";

/// A value that can round-trip through a journal line **bit-exactly**.
///
/// `encode_journal` must produce a single-line JSON value; floating-point
/// state goes through [`encode_f64_bits`] (hex of [`f64::to_bits`]) so
/// decoding reproduces the identical bits — resumed sweeps must be
/// byte-identical to clean runs, and `{:.6}`-style decimal round-trips
/// are not.
pub trait Journaled: Sized {
    /// Encodes the value as a single-line JSON value.
    fn encode_journal(&self) -> String;
    /// Decodes a value previously produced by
    /// [`Journaled::encode_journal`]. `None` on any mismatch — the caller
    /// re-runs the cell, so decoding is allowed to be strict.
    fn decode_journal(s: &str) -> Option<Self>;
}

impl Journaled for u64 {
    fn encode_journal(&self) -> String {
        self.to_string()
    }
    fn decode_journal(s: &str) -> Option<Self> {
        s.trim().parse().ok()
    }
}

impl Journaled for String {
    fn encode_journal(&self) -> String {
        format!("\"{}\"", escape(self))
    }
    fn decode_journal(s: &str) -> Option<Self> {
        let inner = s.trim().strip_prefix('"')?.strip_suffix('"')?;
        unescape(inner)
    }
}

impl Journaled for anp_simnet::SimDuration {
    fn encode_journal(&self) -> String {
        self.as_nanos().to_string()
    }
    fn decode_journal(s: &str) -> Option<Self> {
        Some(anp_simnet::SimDuration::from_nanos(s.trim().parse().ok()?))
    }
}

impl Journaled for f64 {
    fn encode_journal(&self) -> String {
        encode_f64_bits(*self)
    }
    fn decode_journal(s: &str) -> Option<Self> {
        decode_f64_bits(s)
    }
}

impl<A: Journaled, B: Journaled> Journaled for (A, B) {
    fn encode_journal(&self) -> String {
        format!("[{},{}]", self.0.encode_journal(), self.1.encode_journal())
    }
    fn decode_journal(s: &str) -> Option<Self> {
        let inner = s.trim().strip_prefix('[')?.strip_suffix(']')?;
        let (a, b) = split_pair(inner)?;
        Some((A::decode_journal(a)?, B::decode_journal(b)?))
    }
}

/// Splits `a,b` at the first top-level comma (not inside brackets,
/// braces, or strings).
fn split_pair(s: &str) -> Option<(&str, &str)> {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '[' | '{' => depth += 1,
            ']' | '}' => depth -= 1,
            ',' if depth == 0 => return Some((&s[..i], &s[i + 1..])),
            _ => {}
        }
    }
    None
}

/// Encodes an `f64` as a quoted hex string of its bits (`"3ff0…"`).
/// Decimal formatting cannot round-trip every double; this can.
pub fn encode_f64_bits(x: f64) -> String {
    format!("\"{:016x}\"", x.to_bits())
}

/// Decodes a value produced by [`encode_f64_bits`].
pub fn decode_f64_bits(s: &str) -> Option<f64> {
    let hex = s.trim().strip_prefix('"')?.strip_suffix('"')?;
    Some(f64::from_bits(u64::from_str_radix(hex, 16).ok()?))
}

/// Minimal JSON string escaping (mirrors the telemetry writer's rules).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]. `None` on malformed escapes.
pub(crate) fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'u' => {
                let hex: String = chars.by_ref().take(4).collect();
                if hex.len() != 4 {
                    return None;
                }
                out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

/// Extracts the raw (unquoted) text of `"key":<raw>` from a single-line
/// JSON object — numbers and other unquoted scalars. Searches only up to
/// the first `,"value":` marker so nested keys inside a cell value can
/// never alias an entry field.
pub(crate) fn raw_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let head = match line.find(",\"value\":") {
        Some(pos) => &line[..pos],
        None => line,
    };
    let pat = format!("\"{key}\":");
    let start = head.find(&pat)? + pat.len();
    let rest = &head[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim())
}

/// Extracts and unescapes the string value of `"key":"…"`.
pub(crate) fn str_field(line: &str, key: &str) -> Option<String> {
    let raw = raw_field(line, key)?;
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    unescape(inner)
}

/// 64-bit FNV-1a over all parts, with a separator byte between parts so
/// `["ab","c"]` and `["a","bc"]` hash differently.
pub fn fnv1a(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for part in parts {
        for b in part.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Fingerprint of everything that determines a cell's *value*: the switch
/// model, probe parameters, measurement windows, seed, and backend. The
/// worker count (`jobs`) is deliberately excluded — it only affects
/// scheduling, and results are index-collected, so a resumed run may use
/// any `--jobs`.
pub fn config_fingerprint(cfg: &ExperimentConfig, backend: &str) -> u64 {
    fnv1a(&[
        &format!("{:?}", cfg.switch),
        &format!("{:?}", cfg.impact),
        &format!("{:?}", cfg.measure_window),
        &format!("{:016x}", cfg.warmup_frac.to_bits()),
        &format!("{:?}", cfg.run_cap),
        &cfg.seed.to_string(),
        backend,
    ])
}

/// How a journaled cell ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell produced its value (journaled alongside).
    Ok,
    /// The cell returned a typed experiment error.
    Failed,
    /// The cell panicked (isolated by the supervisor).
    Panicked,
    /// The cell's run budget was spent before it finished.
    Budget,
}

impl CellStatus {
    /// The journal's wire name for this status.
    pub fn as_str(self) -> &'static str {
        match self {
            CellStatus::Ok => "ok",
            CellStatus::Failed => "failed",
            CellStatus::Panicked => "panicked",
            CellStatus::Budget => "budget",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "ok" => CellStatus::Ok,
            "failed" => CellStatus::Failed,
            "panicked" => CellStatus::Panicked,
            "budget" => CellStatus::Budget,
            _ => return None,
        })
    }
}

/// One journaled cell outcome (one line of the file).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Name of the sweep the cell belongs to.
    pub sweep: String,
    /// Cell index within the sweep (serial task order).
    pub cell: usize,
    /// The cell's label (must match the task list on resume).
    pub label: String,
    /// How the cell ended.
    pub status: CellStatus,
    /// Retries the supervisor spent on the cell.
    pub retries: u32,
    /// Wall-clock seconds of the final attempt.
    pub wall_secs: f64,
    /// Simulation events of the final attempt.
    pub events: u64,
    /// Error rendering for non-[`CellStatus::Ok`] cells.
    pub error: Option<String>,
    /// [`Journaled`]-encoded value for [`CellStatus::Ok`] cells.
    pub value: Option<String>,
}

impl JournalEntry {
    /// Renders the entry as one JSONL line (newline included). The value
    /// is the **last** field, so the loader can slice it off without
    /// parsing its interior.
    fn to_line(&self) -> String {
        let mut line = format!(
            "{{\"sweep\":\"{}\",\"cell\":{},\"label\":\"{}\",\"status\":\"{}\",\
             \"retries\":{},\"wall_secs\":{:.6},\"events\":{}",
            escape(&self.sweep),
            self.cell,
            escape(&self.label),
            self.status.as_str(),
            self.retries,
            self.wall_secs,
            self.events,
        );
        if let Some(err) = &self.error {
            line.push_str(&format!(",\"error\":\"{}\"", escape(err)));
        }
        if let Some(value) = &self.value {
            line.push_str(",\"value\":");
            line.push_str(value);
        }
        line.push_str("}\n");
        line
    }

    /// Parses one entry line; `None` for torn or foreign lines.
    fn parse(line: &str) -> Option<Self> {
        if !line.starts_with("{\"sweep\":") || !line.ends_with('}') {
            return None;
        }
        let value = line
            .find(",\"value\":")
            .map(|pos| line[pos + 9..line.len() - 1].to_owned());
        Some(JournalEntry {
            sweep: str_field(line, "sweep")?,
            cell: raw_field(line, "cell")?.parse().ok()?,
            label: str_field(line, "label")?,
            status: CellStatus::parse(&str_field(line, "status")?)?,
            retries: raw_field(line, "retries")?.parse().ok()?,
            wall_secs: raw_field(line, "wall_secs")?.parse().ok()?,
            events: raw_field(line, "events")?.parse().ok()?,
            error: str_field(line, "error"),
            value,
        })
    }
}

/// Errors from journal creation, loading, or fingerprint verification.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalError {
    /// The journal file could not be created, read, or parsed at all.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The underlying error rendering.
        error: String,
    },
    /// The journal was written by a run with a different experiment
    /// configuration, seed, or backend — its cells must not be reused.
    FingerprintMismatch {
        /// The sweep whose header mismatched.
        sweep: String,
        /// Fingerprint of the present configuration.
        expected: u64,
        /// Fingerprint recorded in the journal.
        found: u64,
    },
    /// The journal's sweep shape (cell count or labels) does not match
    /// the present task list despite a matching fingerprint.
    ShapeMismatch {
        /// The sweep whose shape mismatched.
        sweep: String,
        /// What differed.
        detail: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, error } => {
                write!(f, "journal {}: {error}", path.display())
            }
            JournalError::FingerprintMismatch {
                sweep,
                expected,
                found,
            } => write!(
                f,
                "journal sweep '{sweep}' was recorded under a different \
                 configuration (fingerprint {found:016x}, expected {expected:016x}); \
                 refusing to reuse its cells"
            ),
            JournalError::ShapeMismatch { sweep, detail } => {
                write!(
                    f,
                    "journal sweep '{sweep}' does not match this run: {detail}"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

#[derive(Debug, Default)]
struct SweepRecord {
    fingerprint: u64,
    cells: usize,
    entries: BTreeMap<usize, JournalEntry>,
}

/// An append-only cell-outcome journal backing `--resume`.
///
/// Writes are serialized under a mutex and flushed + `sync_data`'d per
/// line; a write failure warns once on stderr and disables further
/// journaling rather than aborting the sweep (the journal is a safety
/// net, not a dependency).
pub struct RunJournal {
    path: PathBuf,
    file: Mutex<File>,
    sweeps: BTreeMap<String, SweepRecord>,
    write_failed: AtomicBool,
}

impl fmt::Debug for RunJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RunJournal")
            .field("path", &self.path)
            .field("sweeps", &self.sweeps.len())
            .finish_non_exhaustive()
    }
}

impl RunJournal {
    /// Starts a fresh journal at `path`, truncating any existing file
    /// (a new campaign).
    pub fn create(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let file = File::create(&path).map_err(|e| JournalError::Io {
            path: path.clone(),
            error: e.to_string(),
        })?;
        Ok(RunJournal {
            path,
            file: Mutex::new(file),
            sweeps: BTreeMap::new(),
            write_failed: AtomicBool::new(false),
        })
    }

    /// Reopens an existing journal for `--resume`: loads every intact
    /// line (a torn final line from a crash is skipped — its cell simply
    /// re-runs) and appends new outcomes at the end.
    pub fn resume(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let io_err = |e: std::io::Error| JournalError::Io {
            path: path.clone(),
            error: e.to_string(),
        };
        let reader = BufReader::new(File::open(&path).map_err(io_err)?);
        let mut sweeps: BTreeMap<String, SweepRecord> = BTreeMap::new();
        for line in reader.split(b'\n') {
            let line = line.map_err(io_err)?;
            let Ok(line) = String::from_utf8(line) else {
                continue; // torn mid-UTF-8 write
            };
            let line = line.trim();
            if line.starts_with("{\"journal\":") && line.ends_with('}') {
                let (Some(schema), Some(sweep)) =
                    (str_field(line, "journal"), str_field(line, "sweep"))
                else {
                    continue;
                };
                if schema != JOURNAL_SCHEMA {
                    continue;
                }
                let fingerprint =
                    str_field(line, "fingerprint").and_then(|h| u64::from_str_radix(&h, 16).ok());
                let cells = raw_field(line, "cells").and_then(|c| c.parse().ok());
                let (Some(fingerprint), Some(cells)) = (fingerprint, cells) else {
                    continue;
                };
                let rec = sweeps.entry(sweep).or_default();
                if rec.fingerprint != fingerprint {
                    // A different configuration reused the name: the
                    // newer header wins and its cells start over.
                    rec.entries.clear();
                }
                rec.fingerprint = fingerprint;
                rec.cells = cells;
            } else if let Some(entry) = JournalEntry::parse(line) {
                let rec = sweeps.entry(entry.sweep.clone()).or_default();
                // A success is final: never let a later failure (from a
                // retried resume) shadow a completed cell.
                let keep_old = rec.entries.get(&entry.cell).is_some_and(|old| {
                    old.status == CellStatus::Ok && entry.status != CellStatus::Ok
                });
                if !keep_old {
                    rec.entries.insert(entry.cell, entry);
                }
            }
        }
        let file = OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(io_err)?;
        Ok(RunJournal {
            path,
            file: Mutex::new(file),
            sweeps,
            write_failed: AtomicBool::new(false),
        })
    }

    /// The journal's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of successfully completed cells loaded from disk.
    pub fn completed_cells(&self) -> usize {
        self.sweeps
            .values()
            .flat_map(|r| r.entries.values())
            .filter(|e| e.status == CellStatus::Ok)
            .count()
    }

    /// The prior outcomes of `sweep`'s cells, index-aligned with
    /// `labels`, after verifying the fingerprint and shape. An unknown
    /// sweep yields all-`None` (nothing to resume); a fingerprint or
    /// shape conflict is an error — silently re-using cells from a
    /// different experiment would corrupt the campaign.
    pub fn prior(
        &self,
        sweep: &str,
        fingerprint: u64,
        labels: &[String],
    ) -> Result<Vec<Option<JournalEntry>>, JournalError> {
        let Some(rec) = self.sweeps.get(sweep) else {
            return Ok(vec![None; labels.len()]);
        };
        if rec.fingerprint != fingerprint {
            return Err(JournalError::FingerprintMismatch {
                sweep: sweep.to_owned(),
                expected: fingerprint,
                found: rec.fingerprint,
            });
        }
        if rec.cells != labels.len() {
            return Err(JournalError::ShapeMismatch {
                sweep: sweep.to_owned(),
                detail: format!(
                    "journal has {} cells, this run has {}",
                    rec.cells,
                    labels.len()
                ),
            });
        }
        let mut out = Vec::with_capacity(labels.len());
        for (i, label) in labels.iter().enumerate() {
            match rec.entries.get(&i) {
                Some(e) if e.label != *label => {
                    return Err(JournalError::ShapeMismatch {
                        sweep: sweep.to_owned(),
                        detail: format!(
                            "cell {i} is labeled '{}' in the journal but '{label}' here",
                            e.label
                        ),
                    });
                }
                e => out.push(e.cloned()),
            }
        }
        Ok(out)
    }

    /// Appends the header line announcing a sweep (skipped when the same
    /// sweep + fingerprint was already loaded from disk — resume does not
    /// duplicate headers).
    pub fn begin_sweep(&self, sweep: &str, fingerprint: u64, cells: usize) {
        if self
            .sweeps
            .get(sweep)
            .is_some_and(|r| r.fingerprint == fingerprint)
        {
            return;
        }
        self.append(&format!(
            "{{\"journal\":\"{JOURNAL_SCHEMA}\",\"sweep\":\"{}\",\
             \"fingerprint\":\"{fingerprint:016x}\",\"cells\":{cells}}}\n",
            escape(sweep),
        ));
    }

    /// Appends one cell outcome (atomic line write + fsync).
    pub fn record(&self, entry: &JournalEntry) {
        self.append(&entry.to_line());
    }

    fn append(&self, line: &str) {
        if self.write_failed.load(Ordering::Relaxed) {
            return;
        }
        let mut file = match self.file.lock() {
            Ok(f) => f,
            Err(poisoned) => poisoned.into_inner(),
        };
        let written = file
            .write_all(line.as_bytes())
            .and_then(|()| file.flush())
            .and_then(|()| file.sync_data());
        if let Err(e) = written {
            if !self.write_failed.swap(true, Ordering::Relaxed) {
                eprintln!(
                    "warning: cannot append to journal {}: {e}; journaling disabled \
                     (the sweep continues, but this run cannot be resumed)",
                    self.path.display()
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(sweep: &str, cell: usize, status: CellStatus, value: Option<&str>) -> JournalEntry {
        JournalEntry {
            sweep: sweep.to_owned(),
            cell,
            label: format!("cell{cell}"),
            status,
            retries: 0,
            wall_secs: 0.25,
            events: 10,
            error: (status != CellStatus::Ok).then(|| "boom".to_owned()),
            value: value.map(str::to_owned),
        }
    }

    #[test]
    fn entry_lines_round_trip() {
        let e = JournalEntry {
            sweep: "s\"weird".to_owned(),
            cell: 3,
            label: "grid:A/B".to_owned(),
            status: CellStatus::Ok,
            retries: 2,
            wall_secs: 1.5,
            events: 42,
            error: None,
            value: Some("{\"n\":1,\"status\":\"decoy\"}".to_owned()),
        };
        let line = e.to_line();
        let back = JournalEntry::parse(line.trim()).unwrap();
        assert_eq!(back.sweep, e.sweep);
        assert_eq!(back.cell, 3);
        assert_eq!(back.label, e.label);
        assert_eq!(back.status, CellStatus::Ok);
        assert_eq!(back.retries, 2);
        assert_eq!(back.events, 42);
        // The decoy "status" key inside the value must not confuse the
        // field parser, and the value must come back verbatim.
        assert_eq!(back.value.as_deref(), e.value.as_deref());
    }

    #[test]
    fn f64_bits_round_trip_exactly() {
        for x in [0.0, -0.0, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -2.5e-300] {
            let enc = encode_f64_bits(x);
            assert_eq!(decode_f64_bits(&enc).unwrap().to_bits(), x.to_bits());
        }
        let nan = decode_f64_bits(&encode_f64_bits(f64::NAN)).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn tuple_and_scalar_codecs_round_trip() {
        let pair = (
            anp_simnet::SimDuration::from_nanos(123_456_789),
            "la,bel]{\"x\":1}".to_owned(),
        );
        let enc = pair.encode_journal();
        let back = <(anp_simnet::SimDuration, String)>::decode_journal(&enc).unwrap();
        assert_eq!(back, pair);
        assert_eq!(u64::decode_journal(&77u64.encode_journal()), Some(77));
        let x = 1.0 / 3.0;
        assert_eq!(
            f64::decode_journal(&x.encode_journal()).unwrap().to_bits(),
            x.to_bits()
        );
        let quad = ((x, -0.0f64), (f64::MAX, 2.5f64));
        let enc = quad.encode_journal();
        let back = <((f64, f64), (f64, f64))>::decode_journal(&enc).unwrap();
        assert_eq!(back, quad);
    }

    #[test]
    fn create_resume_and_prior_cells() {
        let dir = std::env::temp_dir().join(format!("anp-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("basic.jsonl");

        let j = RunJournal::create(&path).unwrap();
        j.begin_sweep("lut", 0xABCD, 3);
        j.record(&entry("lut", 0, CellStatus::Ok, Some("11")));
        j.record(&entry("lut", 2, CellStatus::Panicked, None));
        drop(j);

        let j = RunJournal::resume(&path).unwrap();
        assert_eq!(j.completed_cells(), 1);
        let labels: Vec<String> = (0..3).map(|i| format!("cell{i}")).collect();
        let prior = j.prior("lut", 0xABCD, &labels).unwrap();
        assert_eq!(prior[0].as_ref().unwrap().value.as_deref(), Some("11"));
        assert!(prior[1].is_none(), "never-run cell");
        assert_eq!(prior[2].as_ref().unwrap().status, CellStatus::Panicked);
        // Unknown sweeps resume from scratch.
        assert!(j
            .prior("other", 1, &labels)
            .unwrap()
            .iter()
            .all(Option::is_none));

        // Wrong fingerprint or shape must refuse, not silently re-run.
        assert!(matches!(
            j.prior("lut", 0xBEEF, &labels),
            Err(JournalError::FingerprintMismatch { .. })
        ));
        assert!(matches!(
            j.prior("lut", 0xABCD, &labels[..2]),
            Err(JournalError::ShapeMismatch { .. })
        ));
        let mut wrong = labels.clone();
        wrong[0] = "imposter".to_owned();
        assert!(matches!(
            j.prior("lut", 0xABCD, &wrong),
            Err(JournalError::ShapeMismatch { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let dir = std::env::temp_dir().join(format!("anp-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let j = RunJournal::create(&path).unwrap();
        j.begin_sweep("s", 7, 2);
        j.record(&entry("s", 0, CellStatus::Ok, Some("1")));
        j.record(&entry("s", 1, CellStatus::Ok, Some("2")));
        drop(j);

        // Simulate a crash mid-write: chop the file mid-last-line.
        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &text[..text.len() - 9]).unwrap();

        let j = RunJournal::resume(&path).unwrap();
        let labels = vec!["cell0".to_owned(), "cell1".to_owned()];
        let prior = j.prior("s", 7, &labels).unwrap();
        assert!(prior[0].is_some(), "intact line survives");
        assert!(prior[1].is_none(), "torn line is dropped, cell re-runs");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn success_is_never_shadowed() {
        let dir = std::env::temp_dir().join(format!("anp-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shadow.jsonl");
        let j = RunJournal::create(&path).unwrap();
        j.begin_sweep("s", 7, 1);
        j.record(&entry("s", 0, CellStatus::Ok, Some("42")));
        j.record(&entry("s", 0, CellStatus::Failed, None));
        drop(j);
        let j = RunJournal::resume(&path).unwrap();
        let prior = j.prior("s", 7, &["cell0".to_owned()]).unwrap();
        assert_eq!(prior[0].as_ref().unwrap().status, CellStatus::Ok);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fingerprint_ignores_jobs_but_not_seed_or_backend() {
        let cfg = ExperimentConfig::cab();
        let base = config_fingerprint(&cfg, "des");
        assert_eq!(
            config_fingerprint(&cfg.clone().with_jobs(8), "des"),
            base,
            "worker count must not invalidate a journal"
        );
        assert_ne!(config_fingerprint(&cfg.clone().with_seed(1), "des"), base);
        assert_ne!(config_fingerprint(&cfg, "flow"), base);
    }

    #[test]
    fn fnv1a_separates_parts() {
        assert_ne!(fnv1a(&["ab", "c"]), fnv1a(&["a", "bc"]));
        assert_ne!(fnv1a(&["a"]), fnv1a(&["a", ""]));
    }

    /// A fresh on-disk path per proptest case: the macro re-runs the body
    /// many times in one process, so the pid alone is not unique enough.
    fn case_path(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static CASE: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!("anp-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!(
            "{tag}-{}.jsonl",
            CASE.fetch_add(1, Ordering::Relaxed)
        ))
    }

    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any campaign of cells — mixed statuses, arbitrary f64 payloads
        /// — survives the write → crash → resume cycle through the real
        /// file format, with Ok values coming back bit-exactly.
        #[test]
        fn prop_journal_files_round_trip(
            fingerprint in 1u64..u64::MAX,
            cells in collection::vec((0u8..4, -1.0e300f64..1.0e300), 1..8),
        ) {
            let path = case_path("prop-roundtrip");
            let j = RunJournal::create(&path).unwrap();
            j.begin_sweep("grid", fingerprint, cells.len());
            let mut written = Vec::new();
            for (i, &(status, x)) in cells.iter().enumerate() {
                let status = match status {
                    0 => CellStatus::Ok,
                    1 => CellStatus::Failed,
                    2 => CellStatus::Panicked,
                    _ => CellStatus::Budget,
                };
                let e = entry(
                    "grid",
                    i,
                    status,
                    (status == CellStatus::Ok)
                        .then(|| x.encode_journal())
                        .as_deref(),
                );
                j.record(&e);
                written.push(e);
            }
            drop(j); // the "crash": only what hit the disk survives

            let j = RunJournal::resume(&path).unwrap();
            let oks = cells.iter().filter(|(s, _)| *s == 0).count();
            prop_assert_eq!(j.completed_cells(), oks);
            let labels: Vec<String> =
                (0..cells.len()).map(|i| format!("cell{i}")).collect();
            let prior = j.prior("grid", fingerprint, &labels).unwrap();
            for (i, (got, want)) in prior.iter().zip(&written).enumerate() {
                let got = got.as_ref().expect("every cell was journaled");
                prop_assert_eq!(got, want);
                if let (Some(enc), (_, x)) = (&got.value, cells[i]) {
                    let back = f64::decode_journal(enc).unwrap();
                    prop_assert_eq!(back.to_bits(), x.to_bits());
                }
            }
            std::fs::remove_file(&path).ok();
        }

        /// Chopping the file at *any* byte inside the last line (a crash
        /// mid-`write_all`) loses exactly that cell: every earlier line
        /// still resumes, the torn cell re-runs, and nothing errors.
        #[test]
        fn prop_torn_tail_loses_only_the_last_cell(
            values in collection::vec(-1.0e12f64..1.0e12, 2..7),
            cut_seed in 0usize..10_000,
        ) {
            let path = case_path("prop-torn");
            let j = RunJournal::create(&path).unwrap();
            j.begin_sweep("s", 7, values.len());
            for (i, x) in values.iter().enumerate() {
                j.record(&entry("s", i, CellStatus::Ok, Some(&x.encode_journal())));
            }
            drop(j);

            let text = std::fs::read_to_string(&path).unwrap();
            let last_start = text[..text.len() - 1].rfind('\n').unwrap() + 1;
            // Keep at least one byte of the last line, never its newline.
            let tear_span = text.len() - 1 - last_start;
            let cut = last_start + 1 + cut_seed % tear_span.max(1);
            std::fs::write(&path, &text[..cut.min(text.len() - 1)]).unwrap();

            let j = RunJournal::resume(&path).unwrap();
            prop_assert_eq!(j.completed_cells(), values.len() - 1);
            let labels: Vec<String> =
                (0..values.len()).map(|i| format!("cell{i}")).collect();
            let prior = j.prior("s", 7, &labels).unwrap();
            for (i, (got, x)) in prior.iter().zip(&values).enumerate() {
                if i + 1 == values.len() {
                    prop_assert!(got.is_none(), "torn cell must re-run");
                } else {
                    let enc = got.as_ref().unwrap().value.as_ref().unwrap();
                    prop_assert_eq!(
                        f64::decode_journal(enc).unwrap().to_bits(),
                        x.to_bits()
                    );
                }
            }
            std::fs::remove_file(&path).ok();
        }

        /// Resuming under any *different* fingerprint refuses with a
        /// typed error; the matching fingerprint keeps working, and a
        /// sweep the journal has never seen resumes from scratch.
        #[test]
        fn prop_fingerprint_mismatch_always_refuses(
            recorded in 1u64..u64::MAX,
            offered in 1u64..u64::MAX,
            n in 1usize..5,
        ) {
            prop_assume!(recorded != offered);
            let path = case_path("prop-fp");
            let j = RunJournal::create(&path).unwrap();
            j.begin_sweep("s", recorded, n);
            j.record(&entry("s", 0, CellStatus::Ok, Some("1")));
            drop(j);

            let j = RunJournal::resume(&path).unwrap();
            let labels: Vec<String> = (0..n).map(|i| format!("cell{i}")).collect();
            prop_assert_eq!(
                j.prior("s", offered, &labels),
                Err(JournalError::FingerprintMismatch {
                    sweep: "s".to_owned(),
                    expected: offered,
                    found: recorded,
                })
            );
            prop_assert!(j.prior("s", recorded, &labels).is_ok());
            prop_assert!(j
                .prior("unseen", offered, &labels)
                .unwrap()
                .iter()
                .all(Option::is_none));
            std::fs::remove_file(&path).ok();
        }

        /// An empty journal — zero bytes, or a header with no cell lines
        /// — resumes cleanly with nothing completed and all-`None` prior
        /// cells, whatever the sweep shape.
        #[test]
        fn prop_empty_journal_resumes_from_scratch(
            fingerprint in 1u64..u64::MAX,
            n in 1usize..6,
            header_only in 0u8..2,
        ) {
            let path = case_path("prop-empty");
            let j = RunJournal::create(&path).unwrap();
            if header_only == 1 {
                j.begin_sweep("s", fingerprint, n);
            }
            drop(j);

            let j = RunJournal::resume(&path).unwrap();
            prop_assert_eq!(j.completed_cells(), 0);
            let labels: Vec<String> = (0..n).map(|i| format!("cell{i}")).collect();
            let prior = j.prior("s", fingerprint, &labels).unwrap();
            prop_assert!(prior.iter().all(Option::is_none));
            std::fs::remove_file(&path).ok();
        }
    }
}
