//! The measurement backend abstraction: one trait, many engines.
//!
//! Every observable the methodology consumes — impact profiles, solo and
//! loaded runtimes — can be produced by more than one engine. The packet
//! level discrete-event simulator (`anp-simnet`/`anp-simmpi`) is the
//! ground truth; an analytic flow-level model (`anp-flowsim`) trades
//! per-packet fidelity for orders-of-magnitude speed. [`Backend`] is the
//! object-safe seam between the two: experiment drivers, the look-up
//! table, and the prediction study all accept `&dyn Backend` and neither
//! know nor care which engine is underneath.
//!
//! [`DesBackend`] wraps today's DES path by delegating *verbatim* to the
//! free functions in [`crate::experiments`]; routing an experiment through
//! the trait therefore produces byte-identical results to calling those
//! functions directly (pinned by the `backend_dispatch` integration
//! test).
//!
//! Backends advertise **capability flags** ([`Backend::supports_faults`],
//! [`Backend::supports_timed_series`]). Callers that need an unsupported
//! capability must fail loudly with a typed [`BackendError`] — never fall
//! back silently to another engine (the CLI turns these into a stderr
//! line and exit code 1).

use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

use crate::experiments::{
    idle_profile, impact_profile_of_app, impact_profile_of_compression, runtime_under_compression,
    runtime_under_corun, solo_runtime, ExperimentConfig, ExperimentError,
};
use crate::queue::{Calibration, MuPolicy};
use crate::samples::LatencyProfile;

/// What runs next to the probes during an impact measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec<'a> {
    /// Nothing — the idle-switch calibration measurement.
    Idle,
    /// One application proxy running endlessly.
    App(AppKind),
    /// One CompressionB interference configuration running endlessly.
    Compression(&'a CompressionConfig),
}

impl std::fmt::Display for WorkloadSpec<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WorkloadSpec::Idle => write!(f, "idle"),
            WorkloadSpec::App(a) => write!(f, "app:{}", a.name()),
            WorkloadSpec::Compression(c) => write!(f, "compression:{}", c.label()),
        }
    }
}

/// A backend was asked for something it cannot honor.
///
/// These are *configuration* errors, detected before any simulation runs:
/// the fix is to change the requested backend or drop the offending
/// option, so the message names both.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendError {
    /// The experiment configuration carries an option outside the
    /// backend's capabilities (e.g. a [`anp_simnet::FaultPlan`] handed to
    /// the flow-level model, which has no notion of fault windows).
    UnsupportedOption {
        /// The backend that rejected the configuration.
        backend: &'static str,
        /// Human-readable description of the unsupported option.
        option: String,
    },
    /// The requested backend name does not exist.
    UnknownBackend(String),
}

impl std::fmt::Display for BackendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendError::UnsupportedOption { backend, option } => write!(
                f,
                "backend '{backend}' cannot honor {option} \
                 (use --backend des for full-fidelity simulation)"
            ),
            BackendError::UnknownBackend(name) => {
                write!(f, "unknown backend '{name}' (expected 'des' or 'flow')")
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// An engine that produces the methodology's observables.
///
/// Object-safe by design: drivers hold `&dyn Backend` so a CLI flag can
/// swap engines at run time. All methods take the same
/// [`ExperimentConfig`] the DES path uses; a backend that cannot honor
/// part of it must return [`ExperimentError::Backend`] rather than
/// silently approximating.
pub trait Backend: Send + Sync {
    /// Short identifier recorded in sweep telemetry (`"des"`, `"flow"`).
    fn name(&self) -> &'static str;

    /// Whether the backend honors [`anp_simnet::FaultPlan`]s (lossy or
    /// degraded fabrics) and the reliability/retransmission layer.
    fn supports_faults(&self) -> bool;

    /// Whether the backend produces genuinely time-resolved probe series
    /// (as opposed to a steady-state distribution stretched over the
    /// window). The phase-aware model needs this.
    fn supports_timed_series(&self) -> bool;

    /// Checks that `cfg` only uses options this backend supports.
    fn validate(&self, cfg: &ExperimentConfig) -> Result<(), BackendError> {
        if !self.supports_faults() && !cfg.switch.fault_plan.is_none() {
            return Err(BackendError::UnsupportedOption {
                backend: self.name(),
                option: "an installed FaultPlan".to_owned(),
            });
        }
        Ok(())
    }

    /// Probe-latency profile while `workload` runs (the paper's impact
    /// experiment; `WorkloadSpec::Idle` yields the calibration profile).
    fn measure_impact_profile(
        &self,
        cfg: &ExperimentConfig,
        workload: WorkloadSpec<'_>,
    ) -> Result<LatencyProfile, ExperimentError>;

    /// Completion time of `app` while `comp` loads the switch (the §III-B
    /// compression experiment).
    fn measure_compression_run(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
        comp: &CompressionConfig,
    ) -> Result<SimDuration, ExperimentError>;

    /// Solo completion time of `app` at its default iteration count.
    fn measure_solo_runtime(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
    ) -> Result<SimDuration, ExperimentError>;

    /// Completion time of `victim` next to an endless copy of `other`
    /// (the §V pairing experiment).
    fn measure_corun_runtime(
        &self,
        cfg: &ExperimentConfig,
        victim: AppKind,
        other: AppKind,
    ) -> Result<SimDuration, ExperimentError>;
}

/// Calibrates the queue model from the backend's idle profile.
pub fn calibrate_with(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    policy: MuPolicy,
) -> Result<Calibration, ExperimentError> {
    let idle = backend.measure_impact_profile(cfg, WorkloadSpec::Idle)?;
    Ok(Calibration::from_idle_profile(&idle, policy)?)
}

/// The packet-level discrete-event backend: today's (and the reference)
/// path. Every method delegates verbatim to the corresponding free
/// function in [`crate::experiments`], so dispatching through the trait
/// is byte-identical to the pre-trait code path.
#[derive(Debug, Clone, Copy, Default)]
pub struct DesBackend;

impl Backend for DesBackend {
    fn name(&self) -> &'static str {
        "des"
    }

    fn supports_faults(&self) -> bool {
        true
    }

    fn supports_timed_series(&self) -> bool {
        true
    }

    fn measure_impact_profile(
        &self,
        cfg: &ExperimentConfig,
        workload: WorkloadSpec<'_>,
    ) -> Result<LatencyProfile, ExperimentError> {
        match workload {
            WorkloadSpec::Idle => idle_profile(cfg),
            WorkloadSpec::App(app) => impact_profile_of_app(cfg, app),
            WorkloadSpec::Compression(comp) => impact_profile_of_compression(cfg, comp),
        }
    }

    fn measure_compression_run(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
        comp: &CompressionConfig,
    ) -> Result<SimDuration, ExperimentError> {
        runtime_under_compression(cfg, app, comp)
    }

    fn measure_solo_runtime(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        solo_runtime(cfg, app)
    }

    fn measure_corun_runtime(
        &self,
        cfg: &ExperimentConfig,
        victim: AppKind,
        other: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        runtime_under_corun(cfg, victim, other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simnet::FaultPlan;

    #[test]
    fn des_backend_advertises_full_capabilities() {
        let b = DesBackend;
        assert_eq!(b.name(), "des");
        assert!(b.supports_faults());
        assert!(b.supports_timed_series());
    }

    #[test]
    fn des_backend_validates_faulted_configs() {
        let mut cfg = ExperimentConfig::cab();
        cfg.switch = cfg.switch.with_fault_plan(FaultPlan::uniform_loss(0.01));
        assert!(DesBackend.validate(&cfg).is_ok());
    }

    #[test]
    fn capability_gate_rejects_faults_with_typed_error() {
        /// A backend with no fault support, to exercise the default gate.
        struct NoFaults;
        impl Backend for NoFaults {
            fn name(&self) -> &'static str {
                "nofaults"
            }
            fn supports_faults(&self) -> bool {
                false
            }
            fn supports_timed_series(&self) -> bool {
                false
            }
            fn measure_impact_profile(
                &self,
                _: &ExperimentConfig,
                _: WorkloadSpec<'_>,
            ) -> Result<LatencyProfile, ExperimentError> {
                unreachable!()
            }
            fn measure_compression_run(
                &self,
                _: &ExperimentConfig,
                _: AppKind,
                _: &CompressionConfig,
            ) -> Result<SimDuration, ExperimentError> {
                unreachable!()
            }
            fn measure_solo_runtime(
                &self,
                _: &ExperimentConfig,
                _: AppKind,
            ) -> Result<SimDuration, ExperimentError> {
                unreachable!()
            }
            fn measure_corun_runtime(
                &self,
                _: &ExperimentConfig,
                _: AppKind,
                _: AppKind,
            ) -> Result<SimDuration, ExperimentError> {
                unreachable!()
            }
        }

        let mut cfg = ExperimentConfig::cab();
        assert!(NoFaults.validate(&cfg).is_ok());
        cfg.switch = cfg.switch.with_fault_plan(FaultPlan::uniform_loss(0.01));
        let err = NoFaults.validate(&cfg).unwrap_err();
        let BackendError::UnsupportedOption { backend, option } = &err else {
            panic!("expected UnsupportedOption, got {err:?}");
        };
        assert_eq!(*backend, "nofaults");
        assert!(option.contains("FaultPlan"));
        assert!(err.to_string().contains("--backend des"));
    }

    #[test]
    fn workload_spec_displays_label() {
        assert_eq!(WorkloadSpec::Idle.to_string(), "idle");
        assert_eq!(WorkloadSpec::App(AppKind::Fftw).to_string(), "app:FFTW");
        let c = CompressionConfig::new(7, 25_000, 10);
        assert_eq!(
            WorkloadSpec::Compression(&c).to_string(),
            format!("compression:{}", c.label())
        );
    }
}
