//! Experiment drivers: the measurement procedures of §III, assembled from
//! the fabric, the world, the probes, and the workloads.
//!
//! Three experiment shapes cover the whole paper:
//!
//! * **Impact** — ImpactB probes the switch while a workload runs
//!   endlessly; the result is a [`LatencyProfile`] (Fig. 3 data, and the
//!   inputs of every prediction model).
//! * **Runtime** — a workload runs a fixed iteration count, alone or next
//!   to an endless interferer (CompressionB or another application); the
//!   result is its completion time (Fig. 7 and Table I data).
//! * **Calibration** — impact with no workload at all, yielding the idle
//!   profile that parameterizes the queue model (§IV-B).

use anp_simmpi::{JobId, Program, ReliabilityConfig, RunOutcome, StallReport, World};
use anp_simnet::{AuditReport, FaultPlan, NodeId, SimDuration, SimTime, SwitchConfig};
use anp_workloads::{
    build_compressionb, build_impactb, AppKind, CompressionConfig, ImpactConfig, RunMode,
};

use crate::queue::{Calibration, CalibrationError, MuPolicy};
use crate::samples::LatencyProfile;
use crate::series::TimedSeries;
use crate::sweep::{self, Parallelism, SweepTelemetry};

/// Job members: one program per rank with its node placement.
pub type Members = Vec<(Box<dyn Program>, NodeId)>;

/// Errors from experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub enum ExperimentError {
    /// The measured job did not finish before the configured cap.
    HorizonExceeded {
        /// The job's name.
        job: String,
        /// The cap that was hit.
        cap: SimTime,
        /// Where the job stood when the horizon passed (which ranks were
        /// blocked on what).
        report: StallReport,
    },
    /// The probe job produced no samples inside the measurement window.
    NoSamples,
    /// The supervised run budget (simulator events and/or wall clock —
    /// see [`crate::supervise::RunBudget`]) was spent before the
    /// experiment finished. Carries the simulation's stall diagnostics
    /// at the moment the watchdog tripped.
    Budget(StallReport),
    /// The measured job can never finish: the event queue drained with
    /// ranks still blocked (deadlock, or messages lost for good).
    Stalled(StallReport),
    /// The idle profile could not parameterize the queue model (e.g. a
    /// degraded fabric reported a non-positive idle latency).
    Calibration(CalibrationError),
    /// The selected measurement backend cannot honor the experiment
    /// configuration (capability mismatch — see
    /// [`crate::backend::BackendError`]).
    Backend(crate::backend::BackendError),
    /// The simulator's invariant auditor ([`ExperimentConfig::audit`])
    /// detected a broken conservation law during the run. The cell's
    /// artefacts cannot be trusted; the report names each violated
    /// invariant and carries the event trace tail leading up to it.
    Invariant(AuditReport),
    /// The parallel sweep returned fewer cells than tasks submitted — a
    /// harness defect (the sweep contract is one result per task, in
    /// task order), surfaced as a typed error instead of a panic.
    SweepShape {
        /// Which reassembly stage came up short.
        stage: &'static str,
    },
}

impl std::fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExperimentError::HorizonExceeded { job, cap, .. } => {
                write!(f, "job '{job}' did not finish before {cap}")
            }
            ExperimentError::NoSamples => write!(f, "no probe samples collected"),
            ExperimentError::Budget(report) => {
                write!(f, "run budget exhausted: {report}")
            }
            ExperimentError::Stalled(report) => write!(f, "stalled: {report}"),
            ExperimentError::Calibration(err) => write!(f, "calibration failed: {err}"),
            ExperimentError::Backend(err) => write!(f, "{err}"),
            ExperimentError::Invariant(report) => {
                write!(f, "simulator invariant violated: {report}")
            }
            ExperimentError::SweepShape { stage } => {
                write!(f, "sweep returned too few cells (short at stage '{stage}')")
            }
        }
    }
}

impl From<CalibrationError> for ExperimentError {
    fn from(err: CalibrationError) -> Self {
        ExperimentError::Calibration(err)
    }
}

impl From<crate::backend::BackendError> for ExperimentError {
    fn from(err: crate::backend::BackendError) -> Self {
        ExperimentError::Backend(err)
    }
}

impl std::error::Error for ExperimentError {}

/// Configuration shared by all experiments of one study.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The network under test.
    pub switch: SwitchConfig,
    /// Probe parameters.
    pub impact: ImpactConfig,
    /// How long impact experiments sample for.
    pub measure_window: SimDuration,
    /// Fraction of early probe samples discarded as warm-up.
    pub warmup_frac: f64,
    /// Hard cap on runtime experiments.
    pub run_cap: SimDuration,
    /// Base seed; workload seeds derive from it.
    pub seed: u64,
    /// Worker threads for embarrassingly-parallel sweeps (look-up table,
    /// pairing grids, loss sweeps). Results are collected by index, so
    /// any setting produces byte-identical output; `Fixed(1)` is the
    /// exact old serial behavior.
    pub jobs: Parallelism,
    /// Runs every simulation under the invariant auditor
    /// ([`anp_simmpi::World::enable_audit`]); a tripped invariant surfaces
    /// as [`ExperimentError::Invariant`]. Requires the `audit` cargo
    /// feature — without it the flag is accepted but inert. The auditor
    /// observes without perturbing the simulation, so this flag is
    /// deliberately excluded from [`crate::journal::config_fingerprint`]:
    /// audited and unaudited runs of one configuration share a journal.
    pub audit: bool,
}

impl ExperimentConfig {
    /// The paper's setup: the Cab switch model with default probe
    /// parameters.
    pub fn cab() -> Self {
        ExperimentConfig {
            switch: SwitchConfig::cab(),
            impact: ImpactConfig::default(),
            measure_window: SimDuration::from_millis(300),
            warmup_frac: 0.1,
            run_cap: SimDuration::from_secs(120),
            seed: 0xA11CE,
            jobs: Parallelism::Auto,
            audit: false,
        }
    }

    /// Turns the invariant auditor on or off (builder style). See
    /// [`ExperimentConfig::audit`].
    pub fn with_audit(mut self, audit: bool) -> Self {
        self.audit = audit;
        self
    }

    /// Replaces the base seed (builder style). The switch seed follows.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.switch = self.switch.with_seed(seed ^ 0x5117C4);
        self
    }

    /// Replaces the sweep worker count (builder style); `1` forces the
    /// old serial behavior.
    pub fn with_jobs(mut self, jobs: usize) -> Self {
        self.jobs = Parallelism::fixed(jobs);
        self
    }

    /// Deterministic per-workload seed. Public so alternative measurement
    /// backends (e.g. `anp-flowsim`) build workloads from exactly the seed
    /// the DES path would use; salts follow the conventions of this
    /// module (`app as u64 + 1` for measured apps, `+ 101` for co-run
    /// interferers).
    pub fn workload_seed(&self, salt: u64) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt)
    }
}

/// Runs an impact experiment: probes plus an optional endless workload.
/// Returns the timed probe series after warm-up removal.
pub fn impact_series(
    cfg: &ExperimentConfig,
    workload: Option<Members>,
) -> Result<TimedSeries, ExperimentError> {
    let mut world = World::new(cfg.switch.clone());
    if cfg.audit {
        world.enable_audit();
    }
    let (probe_members, sink) = build_impactb(&cfg.impact, cfg.switch.nodes);
    let probe = world.add_job("impactb", probe_members);
    if let Some(members) = workload {
        world.add_job("workload", members);
    }
    // Under a supervised sweep the cell's remaining budget caps this run;
    // outside one the allowance is unlimited and this is a no-op.
    let (max_events, wall_deadline) = crate::supervise::world_allowance();
    world.set_run_budget(max_events, wall_deadline);
    world.run_until(SimTime::ZERO + cfg.measure_window);
    sweep::note_events(world.events_processed());
    check_audit(&mut world)?;
    if world.budget_exhausted() {
        // A truncated sample window is not a smaller measurement — it is
        // a different one. Report the budget trip instead of quietly
        // profiling whatever was collected.
        return Err(ExperimentError::Budget(world.stall_report(probe)));
    }
    let samples = sink.borrow();
    if samples.is_empty() {
        return Err(ExperimentError::NoSamples);
    }
    Ok(TimedSeries::with_warmup(samples.clone(), cfg.warmup_frac))
}

/// Runs an impact experiment and collapses the result to a time-blind
/// latency profile (what the paper's four baseline models consume).
pub fn impact_profile(
    cfg: &ExperimentConfig,
    workload: Option<Members>,
) -> Result<LatencyProfile, ExperimentError> {
    Ok(impact_series(cfg, workload)?.profile())
}

/// The idle-switch profile: probes alone (the paper's "No App" curve in
/// Fig. 3).
pub fn idle_profile(cfg: &ExperimentConfig) -> Result<LatencyProfile, ExperimentError> {
    impact_profile(cfg, None)
}

/// Calibrates the queue model from the idle profile.
pub fn calibrate(cfg: &ExperimentConfig, policy: MuPolicy) -> Result<Calibration, ExperimentError> {
    Ok(Calibration::from_idle_profile(&idle_profile(cfg)?, policy)?)
}

/// Impact profile measured while `app` runs endlessly.
pub fn impact_profile_of_app(
    cfg: &ExperimentConfig,
    app: AppKind,
) -> Result<LatencyProfile, ExperimentError> {
    Ok(impact_series_of_app(cfg, app)?.profile())
}

/// Timed impact series measured while `app` runs endlessly (feeds the
/// phase-aware extension model).
pub fn impact_series_of_app(
    cfg: &ExperimentConfig,
    app: AppKind,
) -> Result<TimedSeries, ExperimentError> {
    let members = app.build(RunMode::Endless, cfg.workload_seed(app as u64 + 1));
    impact_series(cfg, Some(members))
}

/// Impact profile measured while a CompressionB configuration runs.
pub fn impact_profile_of_compression(
    cfg: &ExperimentConfig,
    comp: &CompressionConfig,
) -> Result<LatencyProfile, ExperimentError> {
    let members = build_compressionb(comp, cfg.switch.nodes, 2, cfg.switch.cpu_hz);
    impact_profile(cfg, Some(members))
}

/// Runs `app_members` to completion next to an optional endless
/// interferer. Returns the measured job's completion time.
pub fn runtime_of(
    cfg: &ExperimentConfig,
    name: &str,
    app_members: Members,
    interferer: Option<Members>,
) -> Result<SimDuration, ExperimentError> {
    let world = World::new(cfg.switch.clone());
    runtime_in_world(world, cfg, name, app_members, interferer)
}

/// Shared tail of the runtime experiments: installs the jobs, runs to
/// completion, and maps the three run outcomes onto the error type.
fn runtime_in_world(
    mut world: World,
    cfg: &ExperimentConfig,
    name: &str,
    app_members: Members,
    interferer: Option<Members>,
) -> Result<SimDuration, ExperimentError> {
    if cfg.audit {
        world.enable_audit();
    }
    let job: JobId = world.add_job(name, app_members);
    if let Some(members) = interferer {
        world.add_job("interferer", members);
    }
    let cap = SimTime::ZERO + cfg.run_cap;
    let (max_events, wall_deadline) = crate::supervise::world_allowance();
    world.set_run_budget(max_events, wall_deadline);
    let outcome = world.run_until_job_done(job, cap);
    sweep::note_events(world.events_processed());
    check_audit(&mut world)?;
    match outcome {
        RunOutcome::Completed { at } => Ok(at.since(SimTime::ZERO)),
        RunOutcome::DeadlineExpired(report) => Err(ExperimentError::HorizonExceeded {
            job: name.to_owned(),
            cap,
            report,
        }),
        RunOutcome::Stalled(report) => Err(ExperimentError::Stalled(report)),
        RunOutcome::BudgetExhausted(report) => Err(ExperimentError::Budget(report)),
    }
}

/// Solo runtime of `app` at its default iteration count.
pub fn solo_runtime(cfg: &ExperimentConfig, app: AppKind) -> Result<SimDuration, ExperimentError> {
    let members = app.build(RunMode::Iterations(0), cfg.workload_seed(app as u64 + 1));
    runtime_of(cfg, app.name(), members, None)
}

/// Runtime of `app` while a CompressionB configuration loads the switch
/// (the paper's §III-B compression experiment).
pub fn runtime_under_compression(
    cfg: &ExperimentConfig,
    app: AppKind,
    comp: &CompressionConfig,
) -> Result<SimDuration, ExperimentError> {
    let members = app.build(RunMode::Iterations(0), cfg.workload_seed(app as u64 + 1));
    let noise = build_compressionb(comp, cfg.switch.nodes, 2, cfg.switch.cpu_hz);
    runtime_of(cfg, app.name(), members, Some(noise))
}

/// Runtime of `victim` while `other` runs endlessly on the same switch
/// (the paper's §V pairing experiment; ground truth for Table I).
pub fn runtime_under_corun(
    cfg: &ExperimentConfig,
    victim: AppKind,
    other: AppKind,
) -> Result<SimDuration, ExperimentError> {
    let members = victim.build(RunMode::Iterations(0), cfg.workload_seed(victim as u64 + 1));
    // Distinct salt for the background copy so self-pairings (A with A)
    // do not run two phase-locked clones.
    let noise = other.build(RunMode::Endless, cfg.workload_seed(other as u64 + 101));
    runtime_of(cfg, victim.name(), members, Some(noise))
}

/// Runtime of `app` on a fabric losing packets uniformly at probability
/// `loss`, with the message layer's retransmitting reliability protocol
/// enabled.
///
/// This opens the slowdown-vs-loss-rate experiment family: the paper
/// studies degradation from switch *congestion*; this driver measures the
/// analogous curve for fabric *unreliability* — how much a given loss rate
/// stretches an application, with recovery cost (timeouts, retransmits,
/// resequencing stalls) included. `loss = 0` reduces to [`solo_runtime`]
/// modulo the reliability layer's sequencing.
pub fn runtime_under_loss(
    cfg: &ExperimentConfig,
    app: AppKind,
    loss: f64,
    reliability: ReliabilityConfig,
) -> Result<SimDuration, ExperimentError> {
    let switch = cfg
        .switch
        .clone()
        .with_fault_plan(FaultPlan::uniform_loss(loss).with_seed(cfg.seed ^ 0xFA_17));
    let mut world = World::new(switch);
    world.set_reliability(reliability);
    let members = app.build(RunMode::Iterations(0), cfg.workload_seed(app as u64 + 1));
    runtime_in_world(world, cfg, app.name(), members, None)
}

/// [`runtime_under_loss`] over a list of loss rates: the degradation
/// curve `(loss, runtime)` for one application. Loss rates where the
/// application could not finish (retry budget exhausted, horizon hit)
/// yield an `Err` entry rather than aborting the sweep.
pub fn loss_sweep(
    cfg: &ExperimentConfig,
    app: AppKind,
    losses: &[f64],
    reliability: ReliabilityConfig,
) -> LossCurve {
    loss_sweep_recorded(cfg, app, losses, reliability).0
}

/// The result of a loss sweep: one `(loss rate, runtime-or-error)` point
/// per requested rate, in request order.
pub type LossCurve = Vec<(f64, Result<SimDuration, ExperimentError>)>;

/// [`loss_sweep`], additionally returning the sweep's telemetry record.
/// The loss points are independent simulations, so they fan out across
/// [`ExperimentConfig::jobs`] workers; results come back in `losses`
/// order regardless of scheduling.
pub fn loss_sweep_recorded(
    cfg: &ExperimentConfig,
    app: AppKind,
    losses: &[f64],
    reliability: ReliabilityConfig,
) -> (LossCurve, SweepTelemetry) {
    let tasks: Vec<(String, _)> = losses
        .iter()
        .map(|&loss| {
            let label = format!("loss:{}:{loss}", app.name());
            (label, move || {
                runtime_under_loss(cfg, app, loss, reliability)
            })
        })
        .collect();
    let (results, telemetry) = sweep::sweep_recorded("loss-sweep", cfg.jobs, tasks);
    (losses.iter().copied().zip(results).collect(), telemetry)
}

/// A supervised loss curve: one `(loss rate, value-or-typed-hole)`
/// point per requested rate, in request order.
pub type SupervisedLossCurve = Vec<(f64, crate::supervise::CellResult<SimDuration>)>;

/// [`loss_sweep_recorded`] under the supervision envelope: panics are
/// isolated into typed holes, each loss point respects the supervisor's
/// run budget and retry policy, and with a journal the sweep is
/// resumable (completed points decode instead of re-simulating).
pub fn loss_sweep_supervised(
    cfg: &ExperimentConfig,
    app: AppKind,
    losses: &[f64],
    reliability: ReliabilityConfig,
    supervisor: &crate::supervise::Supervisor,
    journal: Option<&crate::journal::RunJournal>,
) -> Result<(SupervisedLossCurve, SweepTelemetry), crate::journal::JournalError> {
    let tasks: Vec<(String, _)> = losses
        .iter()
        .map(|&loss| {
            let label = format!("loss:{}:{loss}", app.name());
            (label, move || {
                runtime_under_loss(cfg, app, loss, reliability)
            })
        })
        .collect();
    let fp = crate::journal::config_fingerprint(cfg, "des");
    let (results, telemetry) =
        crate::supervise::sweep_supervised("loss-sweep", cfg.jobs, supervisor, journal, fp, tasks)?;
    Ok((losses.iter().copied().zip(results).collect(), telemetry))
}

/// Drains a finished world's audit findings, turning a non-clean report
/// into [`ExperimentError::Invariant`]. No-op when auditing is off or
/// compiled out (the report is then `None`). Checked *before* the run
/// outcome: a broken conservation law invalidates even a "successful"
/// run's artefacts, and under supervision it must surface as its own
/// typed hole rather than hide behind a budget or stall error.
fn check_audit(world: &mut World) -> Result<(), ExperimentError> {
    match world.take_audit_report() {
        Some(report) if !report.is_clean() => Err(ExperimentError::Invariant(report)),
        _ => Ok(()),
    }
}

/// The paper's degradation metric:
/// `(T_interference − T_solo)/T_solo × 100` (percent).
pub fn degradation_percent(solo: SimDuration, loaded: SimDuration) -> f64 {
    let s = solo.as_nanos() as f64;
    let l = loaded.as_nanos() as f64;
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(s > 0.0, "solo runtime must be positive");
    (l - s) / s * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::{Looping, Op, Scripted, Src};

    /// A small config on the deterministic tiny switch for fast tests.
    fn tiny_cfg() -> ExperimentConfig {
        ExperimentConfig {
            switch: SwitchConfig::tiny_deterministic(),
            impact: ImpactConfig {
                period: SimDuration::from_micros(100),
                pairs_per_node: 1,
                ..ImpactConfig::default()
            },
            measure_window: SimDuration::from_millis(5),
            warmup_frac: 0.1,
            run_cap: SimDuration::from_secs(5),
            seed: 7,
            jobs: Parallelism::Auto,
            audit: false,
        }
    }

    fn noisy_members(nodes: u32) -> Members {
        (0..nodes)
            .map(|n| {
                (
                    Box::new(Looping::new(vec![
                        Op::Isend {
                            dst: (n + 1) % nodes,
                            bytes: 8 * 1024,
                            tag: 1,
                        },
                        Op::Irecv {
                            src: Src::Any,
                            tag: 1,
                        },
                        Op::WaitAll,
                    ])) as Box<dyn Program>,
                    NodeId(n),
                )
            })
            .collect()
    }

    #[test]
    fn idle_profile_matches_deterministic_fabric() {
        let p = idle_profile(&tiny_cfg()).unwrap();
        assert!(p.count() > 20);
        // tiny switch one-way for 1 KB is exactly 2.448 µs.
        assert!((p.mean() - 2.448).abs() < 0.05, "mean {}", p.mean());
        assert!(
            p.std_dev() < 0.05,
            "idle deterministic switch has no spread"
        );
    }

    #[test]
    fn loaded_profile_shifts_right() {
        let cfg = tiny_cfg();
        let idle = idle_profile(&cfg).unwrap();
        let loaded = impact_profile(&cfg, Some(noisy_members(4))).unwrap();
        assert!(
            loaded.mean() > idle.mean() * 1.2,
            "idle {} vs loaded {}",
            idle.mean(),
            loaded.mean()
        );
    }

    #[test]
    fn calibration_under_both_policies() {
        let cfg = tiny_cfg();
        let c_min = calibrate(&cfg, MuPolicy::MinLatency).unwrap();
        let c_mean = calibrate(&cfg, MuPolicy::MeanLatency).unwrap();
        assert!(c_min.mu >= c_mean.mu);
        assert!(c_min.mu > 0.0);
    }

    #[test]
    fn utilization_estimate_grows_with_load() {
        let cfg = tiny_cfg();
        let calib = calibrate(&cfg, MuPolicy::MinLatency).unwrap();
        let idle_u = calib.utilization(&idle_profile(&cfg).unwrap());
        let loaded_u = calib.utilization(&impact_profile(&cfg, Some(noisy_members(4))).unwrap());
        assert!(loaded_u > idle_u);
        assert!(
            loaded_u > 0.1,
            "heavy ring traffic must register: {loaded_u}"
        );
    }

    #[test]
    fn runtime_of_fixed_job() {
        let cfg = tiny_cfg();
        let members: Members = vec![(
            Box::new(Scripted::new(vec![
                Op::Compute(SimDuration::from_millis(1)),
                Op::Stop,
            ])) as Box<dyn Program>,
            NodeId(0),
        )];
        let t = runtime_of(&cfg, "calc", members, None).unwrap();
        assert_eq!(t, SimDuration::from_millis(1));
    }

    #[test]
    fn horizon_exceeded_is_reported() {
        let mut cfg = tiny_cfg();
        cfg.run_cap = SimDuration::from_micros(10);
        let members: Members = vec![(
            Box::new(Scripted::new(vec![
                Op::Compute(SimDuration::from_secs(30)),
                Op::Stop,
            ])) as Box<dyn Program>,
            NodeId(0),
        )];
        let err = runtime_of(&cfg, "slow", members, None).unwrap_err();
        let ExperimentError::HorizonExceeded { ref report, .. } = err else {
            panic!("expected HorizonExceeded, got {err:?}");
        };
        assert_eq!(report.job_name, "slow");
        assert_eq!(report.blocked.len(), 1, "the computing rank is reported");
        assert!(err.to_string().contains("slow"));
    }

    /// [`tiny_cfg`] widened to the application proxies' 18-node layout.
    fn app_cfg() -> ExperimentConfig {
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        ExperimentConfig {
            switch,
            run_cap: SimDuration::from_secs(60),
            ..tiny_cfg()
        }
    }

    /// Runs `f` inside a supervised single-cell sweep so the installed
    /// [`crate::supervise::RunBudget`] reaches the drivers' worlds.
    #[allow(clippy::result_large_err)] // test helper; the large variants are the point
    fn supervised_cell<T: Send + crate::journal::Journaled>(
        budget: crate::supervise::RunBudget,
        f: impl Fn() -> Result<T, ExperimentError> + Send + Sync,
    ) -> crate::supervise::CellResult<T> {
        let supervisor = crate::supervise::Supervisor {
            budget,
            ..crate::supervise::Supervisor::none()
        };
        let (mut results, _) = crate::supervise::sweep_supervised(
            "budget-test",
            Parallelism::fixed(1),
            &supervisor,
            None,
            0,
            vec![("cell".to_owned(), f)],
        )
        .unwrap();
        results.pop().unwrap()
    }

    #[test]
    fn event_budget_turns_runtime_into_budget_error() {
        let cfg = app_cfg();
        // Establish how many events a clean solo run needs, then grant
        // half of them: the driver must report Budget (with the stall
        // diagnostics), not HorizonExceeded or a bogus runtime.
        let clean = supervised_cell(crate::supervise::RunBudget::unlimited(), || {
            solo_runtime(&cfg, AppKind::Fftw)
        });
        assert!(clean.is_ok());
        let budget = crate::supervise::RunBudget {
            wall: None,
            events: Some(500),
        };
        let err = supervised_cell(budget, || solo_runtime(&cfg, AppKind::Fftw)).unwrap_err();
        let crate::supervise::TaskError::Budget { report, .. } = err else {
            panic!("expected Budget, got {err}");
        };
        assert!(report.events >= 500, "the run charged its events");
        assert!(
            !report.stall.blocked.is_empty(),
            "diagnostics name the unfinished ranks"
        );
    }

    #[test]
    fn event_budget_turns_impact_into_budget_error() {
        let cfg = tiny_cfg();
        let budget = crate::supervise::RunBudget {
            wall: None,
            events: Some(100),
        };
        let err = supervised_cell(budget, || idle_profile(&cfg)).unwrap_err();
        assert!(
            matches!(err, crate::supervise::TaskError::Budget { .. }),
            "a truncated impact window must not masquerade as a profile: {err}"
        );
    }

    #[test]
    fn budget_spans_all_simulations_of_one_cell() {
        // One cell running two back-to-back experiments shares a single
        // event budget: granting enough for one run but not two must trip
        // on the second.
        let cfg = app_cfg();
        let one_run = {
            let _ = crate::sweep::take_events();
            solo_runtime(&cfg, AppKind::Fftw).unwrap();
            crate::sweep::take_events()
        };
        let budget = crate::supervise::RunBudget {
            wall: None,
            events: Some(one_run + one_run / 2),
        };
        let err = supervised_cell(budget, || {
            let a = solo_runtime(&cfg, AppKind::Fftw)?;
            let b = solo_runtime(&cfg, AppKind::Fftw)?;
            Ok((a, b))
        })
        .unwrap_err();
        assert!(matches!(err, crate::supervise::TaskError::Budget { .. }));
    }

    #[test]
    fn supervised_loss_sweep_matches_plain_results() {
        let cfg = app_cfg();
        let rel = ReliabilityConfig::default();
        let losses = [0.0];
        let plain = loss_sweep(&cfg, AppKind::Fftw, &losses, rel);
        let (supervised, t) = loss_sweep_supervised(
            &cfg,
            AppKind::Fftw,
            &losses,
            rel,
            &crate::supervise::Supervisor::none(),
            None,
        )
        .unwrap();
        assert_eq!(supervised.len(), plain.len());
        let plain_t = plain[0].1.as_ref().unwrap();
        let sup_t = supervised[0].1.as_ref().unwrap();
        assert_eq!(sup_t, plain_t, "supervision must not change the physics");
        assert_eq!(t.runs[0].outcome, "ok");
    }

    #[test]
    fn interference_slows_a_network_bound_job() {
        let cfg = tiny_cfg();
        let mk_job = || -> Members {
            // A 2-rank job ping-ponging 50 × 8 KB across the switch.
            let mut a = Vec::new();
            for _ in 0..50 {
                a.push(Op::Isend {
                    dst: 1,
                    bytes: 8 * 1024,
                    tag: 2,
                });
                a.push(Op::Irecv {
                    src: Src::Rank(1),
                    tag: 2,
                });
                a.push(Op::WaitAll);
            }
            a.push(Op::Stop);
            let mut b = Vec::new();
            for _ in 0..50 {
                b.push(Op::Irecv {
                    src: Src::Rank(0),
                    tag: 2,
                });
                b.push(Op::Isend {
                    dst: 0,
                    bytes: 8 * 1024,
                    tag: 2,
                });
                b.push(Op::WaitAll);
            }
            b.push(Op::Stop);
            vec![
                (Box::new(Scripted::new(a)) as Box<dyn Program>, NodeId(0)),
                (Box::new(Scripted::new(b)) as Box<dyn Program>, NodeId(1)),
            ]
        };
        let solo = runtime_of(&cfg, "app", mk_job(), None).unwrap();
        let loaded = runtime_of(&cfg, "app", mk_job(), Some(noisy_members(4))).unwrap();
        let deg = degradation_percent(solo, loaded);
        assert!(deg > 10.0, "expected visible slowdown, got {deg:.1}%");
    }

    #[test]
    fn stalled_job_is_reported_with_diagnostics() {
        // A receive with no sender: the queue drains, and the error must
        // carry the structured report rather than a bare timeout.
        let cfg = tiny_cfg();
        let members: Members = vec![(
            Box::new(Scripted::new(vec![
                Op::Irecv {
                    src: Src::Rank(0),
                    tag: 3,
                },
                Op::WaitAll,
                Op::Stop,
            ])) as Box<dyn Program>,
            NodeId(0),
        )];
        let err = runtime_of(&cfg, "hung", members, None).unwrap_err();
        let ExperimentError::Stalled(report) = err else {
            panic!("expected Stalled, got {err:?}");
        };
        assert_eq!(report.blocked.len(), 1);
        assert!(report.to_string().contains("tag 3"));
    }

    #[test]
    fn loss_sweep_degrades_runtime() {
        // Packet loss must never make the app faster, and a 0.1% loss
        // rate must visibly stretch it (every recovery costs a full
        // timeout). Two regimes matter for the parameters: the timeout
        // must sit well above the congested delivery latency of a 64-rank
        // halo burst (or spurious retransmits snowball into congestion
        // collapse — the clean run finishes in ~85ms, so 50ms is safe),
        // and loss x packets-per-message must stay well below 1, because
        // the ARQ is message-grained: a 24KB halo is 24 packets, and at
        // 1% per-wire loss every attempt would die with ~50% probability.
        // The apps need the paper's 18-node layout; keep the deterministic
        // service so the comparison is noise-free.
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        let cfg = ExperimentConfig {
            switch,
            run_cap: SimDuration::from_secs(60),
            ..tiny_cfg()
        };
        let rel = ReliabilityConfig {
            retransmit_timeout: SimDuration::from_millis(50),
            max_retries: 10,
        };
        let results = loss_sweep(&cfg, AppKind::Lulesh, &[0.0, 0.001], rel);
        let clean = results[0].1.clone().expect("lossless run completes");
        let lossy = results[1].1.clone().expect("0.1% loss must still recover");
        assert!(
            lossy > clean,
            "loss must cost time: clean {clean} vs lossy {lossy}"
        );
    }

    #[test]
    fn degradation_percent_math() {
        let solo = SimDuration::from_millis(100);
        assert_eq!(
            degradation_percent(solo, SimDuration::from_millis(150)),
            50.0
        );
        assert_eq!(degradation_percent(solo, solo), 0.0);
        // Speedups are negative degradation, as in the paper's error plots.
        assert_eq!(
            degradation_percent(solo, SimDuration::from_millis(90)),
            -10.0
        );
    }

    #[test]
    fn audited_experiments_match_unaudited_results() {
        // The auditor observes; it must not change a single sample. (With
        // the `audit` feature compiled out the flag is inert and this
        // reduces to a determinism check.)
        let plain = tiny_cfg();
        let audited = tiny_cfg().with_audit(true);
        let a = impact_profile(&plain, Some(noisy_members(4))).unwrap();
        let b = impact_profile(&audited, Some(noisy_members(4))).unwrap();
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.count(), b.count());
        // The 4-node tiny switch cannot host the 18-rank app proxies;
        // check the runtime driver on the app-sized config instead.
        let cfg_a = app_cfg();
        let cfg_b = app_cfg().with_audit(true);
        assert_eq!(
            solo_runtime(&cfg_a, AppKind::Fftw).unwrap(),
            solo_runtime(&cfg_b, AppKind::Fftw).unwrap()
        );
    }

    #[test]
    fn experiments_are_deterministic() {
        let cfg = tiny_cfg();
        let a = impact_profile(&cfg, Some(noisy_members(4))).unwrap();
        let b = impact_profile(&cfg, Some(noisy_members(4))).unwrap();
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.count(), b.count());
    }
}
