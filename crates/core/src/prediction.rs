//! The end-to-end prediction pipeline (paper §V).
//!
//! A [`Study`] bundles everything measured in isolation — the look-up
//! table, each application's impact profile, and each application's solo
//! runtime — and predicts the slowdown of every ordered application pair
//! with every model. Comparing against measured co-run slowdowns yields
//! the per-pairing errors of Fig. 8 and the quartile summaries of Fig. 9.

use std::collections::BTreeMap;

use anp_metrics::{MetricsError, QuartileSummary};
use anp_workloads::AppKind;

use crate::backend::{Backend, DesBackend, WorkloadSpec};
use crate::experiments::{degradation_percent, ExperimentConfig, ExperimentError};
use crate::journal::{config_fingerprint, JournalError, RunJournal};
use crate::lut::LookupTable;
use crate::models::{ModelKind, SlowdownModel};
use crate::samples::LatencyProfile;
use crate::supervise::{sweep_supervised_for, Supervisor, TaskError};
use crate::sweep::{sweep_recorded_for, SweepTelemetry};

/// Why a pairing has no slowdown value to offer.
///
/// Consumers that read slowdowns out of a study — most prominently the
/// scheduler's placement policies in `anp-sched` — hit three distinct
/// holes, and each needs a different reaction: an [`Unmeasured`] pairing
/// can be measured (or the oracle skipped), a [`MissingProfile`] means
/// the co-runner was never profiled, and [`NoPrediction`] means the
/// look-up table carries no degradation data for the victim. All three
/// used to surface as `Option::unwrap` panics deep inside report loops.
///
/// [`Unmeasured`]: PredictionError::Unmeasured
/// [`MissingProfile`]: PredictionError::MissingProfile
/// [`NoPrediction`]: PredictionError::NoPrediction
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PredictionError {
    /// The pairing's co-run ground truth was never measured (or its
    /// measurement cell failed and left a typed hole).
    Unmeasured {
        /// The application whose slowdown was requested.
        victim: AppKind,
        /// The co-running application.
        other: AppKind,
    },
    /// The co-runner has no impact profile in the study, so no model can
    /// summarize its footprint.
    MissingProfile {
        /// The unprofiled co-runner.
        app: AppKind,
    },
    /// The look-up table carries no degradation data for the victim
    /// under this model.
    NoPrediction {
        /// The application whose slowdown was requested.
        victim: AppKind,
        /// The model that could not predict.
        model: ModelKind,
    },
}

impl std::fmt::Display for PredictionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PredictionError::Unmeasured { victim, other } => write!(
                f,
                "pairing {}+{} has no measured co-run slowdown",
                victim.name(),
                other.name()
            ),
            PredictionError::MissingProfile { app } => {
                write!(f, "{} has no impact profile in the study", app.name())
            }
            PredictionError::NoPrediction { victim, model } => write!(
                f,
                "model {model} has no prediction for {} in the look-up table",
                victim.name()
            ),
        }
    }
}

impl std::error::Error for PredictionError {}

/// One directed pairing: the slowdown of `victim` when co-run with
/// `other`.
#[derive(Debug, Clone)]
pub struct PairOutcome {
    /// The application whose slowdown is being predicted.
    pub victim: AppKind,
    /// The co-running application.
    pub other: AppKind,
    /// Measured % slowdown (ground truth; `None` until measured).
    pub measured: Option<f64>,
    /// Model → predicted % slowdown.
    pub predicted: BTreeMap<ModelKind, f64>,
}

impl PairOutcome {
    /// The |measured − predicted| error of one model, if both sides exist.
    pub fn abs_error(&self, model: ModelKind) -> Option<f64> {
        Some((self.measured? - self.predicted.get(&model)?).abs())
    }

    /// The measured ground truth, or a typed
    /// [`PredictionError::Unmeasured`] hole — for consumers (like the
    /// scheduler's oracle policy) that must react to an unmeasured
    /// pairing rather than panic on it.
    pub fn measured_value(&self) -> Result<f64, PredictionError> {
        self.measured.ok_or(PredictionError::Unmeasured {
            victim: self.victim,
            other: self.other,
        })
    }
}

/// Everything measured in isolation, ready to predict any pairing.
#[derive(Debug, Clone)]
pub struct Study {
    /// The look-up table (compression entries + calibration + solos).
    pub table: LookupTable,
    /// Impact profile of each application.
    pub app_profiles: BTreeMap<AppKind, LatencyProfile>,
}

impl Study {
    /// Assembles a study from measured parts.
    pub fn from_parts(table: LookupTable, app_profiles: BTreeMap<AppKind, LatencyProfile>) -> Self {
        Study {
            table,
            app_profiles,
        }
    }

    /// Measures the application impact profiles for `apps` (the table must
    /// already exist). The per-app runs are independent simulations and
    /// fan out across [`ExperimentConfig::jobs`] workers.
    pub fn measure_profiles(
        cfg: &ExperimentConfig,
        table: LookupTable,
        apps: &[AppKind],
        progress: impl FnMut(&str),
    ) -> Result<Self, ExperimentError> {
        Self::measure_profiles_recorded(cfg, table, apps, progress).map(|(s, _)| s)
    }

    /// [`Study::measure_profiles`], additionally returning the sweep's
    /// telemetry record. Runs on the reference DES backend.
    pub fn measure_profiles_recorded(
        cfg: &ExperimentConfig,
        table: LookupTable,
        apps: &[AppKind],
        progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        Self::measure_profiles_recorded_with(&DesBackend, cfg, table, apps, progress)
    }

    /// [`Study::measure_profiles_recorded`] on an explicit measurement
    /// backend.
    pub fn measure_profiles_recorded_with(
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        table: LookupTable,
        apps: &[AppKind],
        mut progress: impl FnMut(&str),
    ) -> Result<(Self, SweepTelemetry), ExperimentError> {
        let tasks: Vec<(String, _)> = apps
            .iter()
            .map(|&app| {
                let label = format!("profile:{}", app.name());
                (label, move || {
                    backend.measure_impact_profile(cfg, WorkloadSpec::App(app))
                })
            })
            .collect();
        let (results, telemetry) =
            sweep_recorded_for("app-profiles", backend.name(), cfg.jobs, tasks);
        let mut app_profiles = BTreeMap::new();
        for (&app, r) in apps.iter().zip(results) {
            let p = r?;
            progress(&format!(
                "impact {} -> mean {:.2}us sd {:.2}us util {:.1}%",
                app.name(),
                p.mean(),
                p.std_dev(),
                table.calibration.utilization(&p) * 100.0
            ));
            app_profiles.insert(app, p);
        }
        Ok((Study::from_parts(table, app_profiles), telemetry))
    }

    /// [`Study::measure_profiles_recorded_with`] under a supervision
    /// envelope: failing apps leave typed holes (their profiles are
    /// simply absent from the study, so [`Study::predict_pair`] yields no
    /// predictions for them) instead of aborting the whole measurement.
    /// A clean run is byte-identical to the plain path; with a journal,
    /// completed profiles resume instead of re-simulating.
    pub fn measure_profiles_supervised_with(
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        table: LookupTable,
        apps: &[AppKind],
        supervisor: &Supervisor,
        journal: Option<&RunJournal>,
        mut progress: impl FnMut(&str),
    ) -> Result<(Self, Vec<TaskError>, SweepTelemetry), JournalError> {
        let tasks: Vec<(String, _)> = apps
            .iter()
            .map(|&app| {
                let label = format!("profile:{}", app.name());
                (label, move || {
                    backend.measure_impact_profile(cfg, WorkloadSpec::App(app))
                })
            })
            .collect();
        let (results, telemetry) = sweep_supervised_for(
            "app-profiles",
            backend.name(),
            cfg.jobs,
            supervisor,
            journal,
            config_fingerprint(cfg, backend.name()),
            tasks,
        )?;
        let mut app_profiles = BTreeMap::new();
        let mut failures = Vec::new();
        for (&app, r) in apps.iter().zip(results) {
            match r {
                Ok(p) => {
                    progress(&format!(
                        "impact {} -> mean {:.2}us sd {:.2}us util {:.1}%",
                        app.name(),
                        p.mean(),
                        p.std_dev(),
                        table.calibration.utilization(&p) * 100.0
                    ));
                    app_profiles.insert(app, p);
                }
                Err(e) => {
                    progress(&format!("impact {} FAILED: {e}", app.name()));
                    failures.push(e);
                }
            }
        }
        Ok((Study::from_parts(table, app_profiles), failures, telemetry))
    }

    /// Predicts the slowdown of `victim` co-run with `other` under every
    /// given model.
    pub fn predict_pair(
        &self,
        victim: AppKind,
        other: AppKind,
        models: &[Box<dyn SlowdownModel>],
    ) -> PairOutcome {
        let mut predicted = BTreeMap::new();
        if let Some(other_profile) = self.app_profiles.get(&other) {
            for m in models {
                if let Some(p) = m.predict(&self.table, victim, other_profile) {
                    predicted.insert(m.kind(), p);
                }
            }
        }
        PairOutcome {
            victim,
            other,
            measured: None,
            predicted,
        }
    }

    /// Predicts the slowdown of `victim` co-run with `other` under one
    /// model, without touching (or requiring) any co-run measurement —
    /// the entry point the scheduler's predictive placement policies use,
    /// where only isolated measurements (table + profiles) exist and
    /// every hole must be a typed error rather than a panic.
    pub fn predicted_slowdown(
        &self,
        victim: AppKind,
        other: AppKind,
        model: ModelKind,
    ) -> Result<f64, PredictionError> {
        let other_profile = self
            .app_profiles
            .get(&other)
            .ok_or(PredictionError::MissingProfile { app: other })?;
        model
            .model()
            .predict(&self.table, victim, other_profile)
            .ok_or(PredictionError::NoPrediction { victim, model })
    }

    /// Predicts every ordered pair from `apps` (the paper's 36 pairings
    /// for 6 applications, including self-pairings).
    pub fn predict_all(
        &self,
        apps: &[AppKind],
        models: &[Box<dyn SlowdownModel>],
    ) -> Vec<PairOutcome> {
        let mut out = Vec::with_capacity(apps.len() * apps.len());
        for &victim in apps {
            for &other in apps {
                out.push(self.predict_pair(victim, other, models));
            }
        }
        out
    }

    /// Measures the co-run ground truth for one pairing and fills it in.
    pub fn measure_pair(
        &self,
        cfg: &ExperimentConfig,
        outcome: &mut PairOutcome,
    ) -> Result<(), ExperimentError> {
        let solo = self.table.solo[&outcome.victim];
        let loaded = DesBackend.measure_corun_runtime(cfg, outcome.victim, outcome.other)?;
        outcome.measured = Some(degradation_percent(solo, loaded));
        Ok(())
    }

    /// Measures the co-run ground truth for every pairing in `outcomes`
    /// (the quadratic Table-I grid). Each pairing is an independent
    /// simulation, so the grid fans out across [`ExperimentConfig::jobs`]
    /// workers; `outcomes` is filled in place, in its own order. Returns
    /// the sweep's telemetry record.
    pub fn measure_pairs_recorded(
        &self,
        cfg: &ExperimentConfig,
        outcomes: &mut [PairOutcome],
        progress: impl FnMut(&str),
    ) -> Result<SweepTelemetry, ExperimentError> {
        self.measure_pairs_recorded_with(&DesBackend, cfg, outcomes, progress)
    }

    /// [`Study::measure_pairs_recorded`] on an explicit measurement
    /// backend.
    pub fn measure_pairs_recorded_with(
        &self,
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        outcomes: &mut [PairOutcome],
        mut progress: impl FnMut(&str),
    ) -> Result<SweepTelemetry, ExperimentError> {
        let tasks: Vec<(String, _)> = outcomes
            .iter()
            .map(|o| {
                let (victim, other) = (o.victim, o.other);
                let label = format!("corun:{}+{}", victim.name(), other.name());
                (label, move || {
                    backend.measure_corun_runtime(cfg, victim, other)
                })
            })
            .collect();
        let (results, telemetry) =
            sweep_recorded_for("pairing-grid", backend.name(), cfg.jobs, tasks);
        for (o, r) in outcomes.iter_mut().zip(results) {
            let solo = self.table.solo[&o.victim];
            let measured = degradation_percent(solo, r?);
            o.measured = Some(measured);
            progress(&format!(
                "{} with {} -> measured {measured:+.1}%",
                o.victim.name(),
                o.other.name(),
            ));
        }
        Ok(telemetry)
    }

    /// [`Study::measure_pairs_recorded_with`] under a supervision
    /// envelope. Pairings whose cell fails keep `measured: None` — the
    /// natural typed hole of [`PairOutcome`] — and the reason comes back
    /// in the failure list; every sibling pairing still completes. A
    /// pairing whose victim has no solo baseline in the (possibly
    /// partial) table also stays unmeasured. A clean run fills `outcomes`
    /// byte-identically to the plain path.
    pub fn measure_pairs_supervised_with(
        &self,
        backend: &dyn Backend,
        cfg: &ExperimentConfig,
        outcomes: &mut [PairOutcome],
        supervisor: &Supervisor,
        journal: Option<&RunJournal>,
        mut progress: impl FnMut(&str),
    ) -> Result<(Vec<TaskError>, SweepTelemetry), JournalError> {
        let tasks: Vec<(String, _)> = outcomes
            .iter()
            .map(|o| {
                let (victim, other) = (o.victim, o.other);
                let label = format!("corun:{}+{}", victim.name(), other.name());
                (label, move || {
                    backend.measure_corun_runtime(cfg, victim, other)
                })
            })
            .collect();
        let (results, telemetry) = sweep_supervised_for(
            "pairing-grid",
            backend.name(),
            cfg.jobs,
            supervisor,
            journal,
            config_fingerprint(cfg, backend.name()),
            tasks,
        )?;
        let mut failures = Vec::new();
        for (o, r) in outcomes.iter_mut().zip(results) {
            match r {
                Ok(t) => match self.table.solo.get(&o.victim) {
                    Some(&solo) => {
                        let measured = degradation_percent(solo, t);
                        o.measured = Some(measured);
                        progress(&format!(
                            "{} with {} -> measured {measured:+.1}%",
                            o.victim.name(),
                            o.other.name(),
                        ));
                    }
                    None => progress(&format!(
                        "{} with {} -> (no solo baseline)",
                        o.victim.name(),
                        o.other.name()
                    )),
                },
                Err(e) => {
                    progress(&format!(
                        "{} with {} FAILED: {e}",
                        o.victim.name(),
                        o.other.name()
                    ));
                    failures.push(e);
                }
            }
        }
        Ok((failures, telemetry))
    }
}

/// Per-model quartile summary of |measured − predicted| errors across a
/// set of pairings — the Fig. 9 box-plot data.
///
/// Models with no scored pairings are simply absent from the map; a
/// degenerate error sample (NaN from a poisoned measurement) surfaces as a
/// typed [`MetricsError`] so callers can report the hole instead of
/// panicking mid-report.
pub fn error_summaries(
    outcomes: &[PairOutcome],
    models: &[ModelKind],
) -> Result<BTreeMap<ModelKind, QuartileSummary>, MetricsError> {
    let mut out = BTreeMap::new();
    for &model in models {
        let errors: Vec<f64> = outcomes.iter().filter_map(|o| o.abs_error(model)).collect();
        if !errors.is_empty() {
            out.insert(model, QuartileSummary::of(&errors)?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::test_support::{synthetic_profile, synthetic_table, FakeBackend};
    use crate::models::all_models;

    fn study() -> Study {
        let table = synthetic_table(
            8,
            &[
                (AppKind::Fftw, 2.0),
                (AppKind::Mcb, 0.05),
                (AppKind::Milc, 0.8),
            ],
        );
        let mut app_profiles = BTreeMap::new();
        // FFTW perturbs the switch heavily, MCB moderately (bursty), MILC
        // lightly — synthetic profiles at different means.
        app_profiles.insert(AppKind::Fftw, synthetic_profile(4.0, 1.0));
        app_profiles.insert(AppKind::Mcb, synthetic_profile(2.2, 1.4));
        app_profiles.insert(AppKind::Milc, synthetic_profile(1.6, 0.4));
        Study::from_parts(table, app_profiles)
    }

    #[test]
    fn predict_all_covers_every_ordered_pair() {
        let s = study();
        let apps = [AppKind::Fftw, AppKind::Mcb, AppKind::Milc];
        let models = all_models();
        let outcomes = s.predict_all(&apps, &models);
        assert_eq!(outcomes.len(), 9);
        for o in &outcomes {
            assert_eq!(o.predicted.len(), 4, "{:?}+{:?}", o.victim, o.other);
        }
    }

    #[test]
    fn heavier_partner_predicts_larger_slowdown() {
        let s = study();
        let models = all_models();
        // FFTW (the victim, gain 2.0) next to heavy FFTW vs. light MILC.
        let with_heavy = s.predict_pair(AppKind::Fftw, AppKind::Fftw, &models);
        let with_light = s.predict_pair(AppKind::Fftw, AppKind::Milc, &models);
        for m in &models {
            let h = with_heavy.predicted[&m.kind()];
            let l = with_light.predicted[&m.kind()];
            assert!(
                h >= l,
                "{}: heavy partner {h} must beat light partner {l}",
                m.name()
            );
        }
    }

    #[test]
    fn unknown_partner_yields_no_predictions() {
        let s = study();
        let outcome = s.predict_pair(AppKind::Fftw, AppKind::Amg, &all_models());
        assert!(outcome.predicted.is_empty());
    }

    #[test]
    fn abs_error_requires_both_sides() {
        let s = study();
        let mut o = s.predict_pair(AppKind::Fftw, AppKind::Mcb, &all_models());
        assert_eq!(o.abs_error(ModelKind::Queue), None, "not measured yet");
        assert_eq!(
            o.measured_value(),
            Err(PredictionError::Unmeasured {
                victim: AppKind::Fftw,
                other: AppKind::Mcb,
            }),
            "the unmeasured hole is a typed error, not a panic"
        );
        o.measured = Some(o.predicted[&ModelKind::Queue] + 5.0);
        assert!((o.abs_error(ModelKind::Queue).unwrap() - 5.0).abs() < 1e-9);
        assert_eq!(o.measured_value(), Ok(o.measured.unwrap()));
    }

    #[test]
    fn predicted_slowdown_without_measurement() {
        let s = study();
        let pair = s.predict_pair(AppKind::Fftw, AppKind::Mcb, &all_models());
        for kind in ModelKind::ALL {
            assert_eq!(
                s.predicted_slowdown(AppKind::Fftw, AppKind::Mcb, kind),
                Ok(pair.predicted[&kind]),
                "{kind} matches the batch pipeline"
            );
        }
        // An unprofiled co-runner is a typed hole, not a panic.
        assert_eq!(
            s.predicted_slowdown(AppKind::Fftw, AppKind::Amg, ModelKind::Queue),
            Err(PredictionError::MissingProfile { app: AppKind::Amg })
        );
    }

    #[test]
    fn supervised_profiles_leave_typed_holes() {
        let cfg = ExperimentConfig::cab();
        let apps = [AppKind::Fftw, AppKind::Mcb, AppKind::Milc];
        let table = synthetic_table(
            8,
            &[
                (AppKind::Fftw, 2.0),
                (AppKind::Mcb, 0.05),
                (AppKind::Milc, 0.8),
            ],
        );
        let backend =
            FakeBackend::faulty(vec![format!("profile:{}", AppKind::Mcb.name())], Vec::new());
        let (study, failures, t) = Study::measure_profiles_supervised_with(
            &backend,
            &cfg,
            table,
            &apps,
            &Supervisor::none(),
            None,
            |_| {},
        )
        .unwrap();
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0], TaskError::Failed { .. }));
        assert_eq!(study.app_profiles.len(), 2, "siblings complete");
        assert!(!study.app_profiles.contains_key(&AppKind::Mcb));
        // The hole propagates as "no prediction", not as a crash.
        let o = study.predict_pair(AppKind::Fftw, AppKind::Mcb, &all_models());
        assert!(o.predicted.is_empty());
        assert_eq!(t.runs.iter().filter(|r| r.outcome == "ok").count(), 2);
    }

    #[test]
    fn supervised_pairs_match_plain_when_clean_and_hole_on_panic() {
        let cfg = ExperimentConfig::cab();
        let s = study();
        let apps = [AppKind::Fftw, AppKind::Milc];
        let models = all_models();

        let mut plain = s.predict_all(&apps, &models);
        let mut plain_lines = Vec::new();
        s.measure_pairs_recorded_with(&FakeBackend::clean(), &cfg, &mut plain, |l| {
            plain_lines.push(l.to_owned())
        })
        .unwrap();

        let mut supervised = s.predict_all(&apps, &models);
        let mut sup_lines = Vec::new();
        let (failures, _) = s
            .measure_pairs_supervised_with(
                &FakeBackend::clean(),
                &cfg,
                &mut supervised,
                &Supervisor::none(),
                None,
                |l| sup_lines.push(l.to_owned()),
            )
            .unwrap();
        assert!(failures.is_empty());
        assert_eq!(sup_lines, plain_lines, "identical progress lines");
        for (a, b) in supervised.iter().zip(&plain) {
            assert_eq!(
                a.measured.unwrap().to_bits(),
                b.measured.unwrap().to_bits(),
                "bit-identical measurements"
            );
        }

        // Now panic one pairing: its hole stays `measured: None`, every
        // sibling pairing still lands.
        let mut faulted = s.predict_all(&apps, &models);
        let backend = FakeBackend::faulty(
            Vec::new(),
            vec![format!(
                "corun:{}+{}",
                AppKind::Milc.name(),
                AppKind::Fftw.name()
            )],
        );
        let (failures, _) = s
            .measure_pairs_supervised_with(
                &backend,
                &cfg,
                &mut faulted,
                &Supervisor::none(),
                None,
                |_| {},
            )
            .unwrap();
        assert_eq!(failures.len(), 1);
        assert!(matches!(failures[0], TaskError::Panicked { .. }));
        assert_eq!(faulted.iter().filter(|o| o.measured.is_some()).count(), 3);
        let hole = faulted
            .iter()
            .find(|o| o.victim == AppKind::Milc && o.other == AppKind::Fftw)
            .unwrap();
        assert!(hole.measured.is_none(), "the panicked pairing stays open");
    }

    #[test]
    fn error_summaries_aggregate_per_model() {
        let s = study();
        let apps = [AppKind::Fftw, AppKind::Mcb, AppKind::Milc];
        let mut outcomes = s.predict_all(&apps, &all_models());
        for (i, o) in outcomes.iter_mut().enumerate() {
            o.measured = Some(o.predicted[&ModelKind::Queue] + i as f64);
        }
        let sums = error_summaries(&outcomes, &[ModelKind::AverageLt, ModelKind::Queue]).unwrap();
        assert_eq!(sums.len(), 2);
        // Queue's error was constructed as 0..8 → median 4.
        let q = &sums[&ModelKind::Queue];
        assert!((q.median - 4.0).abs() < 1e-9);
        assert_eq!(q.min, 0.0);
        assert_eq!(q.max, 8.0);
    }

    #[test]
    fn poisoned_measurement_yields_typed_metrics_error() {
        let s = study();
        let apps = [AppKind::Fftw, AppKind::Mcb];
        let mut outcomes = s.predict_all(&apps, &all_models());
        for o in outcomes.iter_mut() {
            o.measured = Some(f64::NAN);
        }
        assert_eq!(
            error_summaries(&outcomes, &[ModelKind::Queue]),
            Err(MetricsError::NanSample)
        );
    }
}
