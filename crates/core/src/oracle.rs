//! Differential oracle: one workload, four execution modes, zero excuses.
//!
//! The simulator makes three strong promises that ordinary unit tests
//! exercise only piecemeal:
//!
//! 1. **Schedule independence** — a sweep's results are bit-identical for
//!    any worker count (`--jobs 1` vs `--jobs 8`);
//! 2. **Crash transparency** — a journaled run that is killed and resumed
//!    produces bytes identical to an unfaulted run;
//! 3. **Model agreement** — the analytic flow backend stays inside its
//!    documented error envelope of the packet-level DES.
//!
//! The oracle runs the *same* measurement ladder (impact profile +
//! degraded runtime per CompressionB rung, plus the solo runtime) through
//! all four modes and diffs the artefacts: DES modes must agree to the
//! bit ([`f64::to_bits`], not decimal printing), the flow backend must
//! stay inside [`FLOW_PROBE_ENVELOPE`] / [`FLOW_RUNTIME_ENVELOPE`]. Every
//! DES run executes with [`ExperimentConfig::audit`] set, so when the
//! crate is built with the `audit` feature a conservation-law violation
//! in any mode surfaces as a typed failure rather than a silent skew.
//!
//! The kill is simulated honestly: the `jobs = 1` reference run writes a
//! real [`RunJournal`], the file is then truncated to its header plus the
//! first half of its cell lines (exactly what a mid-campaign `kill -9`
//! leaves behind, minus the torn final line the loader already tolerates),
//! and the resume run re-runs only the missing cells.

use std::fmt;
use std::path::Path;

use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

use crate::backend::{Backend, WorkloadSpec};
use crate::experiments::{
    impact_profile_of_compression, runtime_under_compression, solo_runtime, ExperimentConfig,
    ExperimentError,
};
use crate::journal::{config_fingerprint, JournalError, RunJournal};
use crate::samples::LatencyProfile;
use crate::supervise::{sweep_supervised_for, Supervisor};
use crate::sweep::Parallelism;

/// Highest acceptable relative error of the flow backend's mean probe
/// latency vs the DES reference. Mirrors the `anp-bench` cross-validation
/// gate (`PROBE_TOLERANCE`); the two must move together.
pub const FLOW_PROBE_ENVELOPE: f64 = 0.10;

/// Highest acceptable relative error of the flow backend's
/// `degraded / solo` runtime ratio vs the DES reference. Mirrors the
/// `anp-bench` cross-validation gate (`SLOWDOWN_TOLERANCE`).
pub const FLOW_RUNTIME_ENVELOPE: f64 = 0.15;

/// The artefacts one mode produced for one ladder rung.
#[derive(Debug, Clone)]
pub struct RungArtefact {
    /// The rung's label (`rung:<compression label>`).
    pub label: String,
    /// Mean probe latency, µs.
    pub mean: f64,
    /// Probe latency standard deviation, µs.
    pub std_dev: f64,
    /// Fastest probe, µs.
    pub min: f64,
    /// Slowest probe, µs.
    pub max: f64,
    /// Probe count.
    pub count: u64,
    /// The application's runtime under this rung's interference.
    pub runtime: SimDuration,
}

impl RungArtefact {
    fn new(label: String, profile: &LatencyProfile, runtime: SimDuration) -> Self {
        RungArtefact {
            label,
            mean: profile.mean(),
            std_dev: profile.std_dev(),
            min: profile.min(),
            max: profile.max(),
            count: profile.count(),
            runtime,
        }
    }
}

/// Everything one execution mode measured.
#[derive(Debug, Clone)]
pub struct ModeArtefacts {
    /// The mode's name (`des-jobs1`, `des-jobs8`, `des-resumed`, `flow`).
    pub mode: &'static str,
    /// The application's uncontended runtime.
    pub solo: SimDuration,
    /// Per-rung artefacts, ladder-ordered.
    pub rungs: Vec<RungArtefact>,
}

/// One disagreement between two modes.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// The reference mode (always `des-jobs1`).
    pub baseline: &'static str,
    /// The diverging mode.
    pub mode: &'static str,
    /// Which artefact diverged (e.g. `rung:c7-…: probe mean`).
    pub artefact: String,
    /// Human-readable detail, bit patterns included for exact diffs.
    pub detail: String,
}

/// The oracle's verdict: per-mode artefacts plus every divergence found.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Artefacts per executed mode (3 without a flow backend, 4 with).
    pub modes: Vec<ModeArtefacts>,
    /// Every disagreement against the `des-jobs1` reference.
    pub divergences: Vec<Divergence>,
    /// Cells the resume run replayed from the truncated journal.
    pub replayed_cells: usize,
    /// Cells the resume run had to re-simulate.
    pub recomputed_cells: usize,
}

impl OracleReport {
    /// True when every mode agreed (bit-exact DES, flow in-envelope).
    pub fn is_clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for OracleReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for m in &self.modes {
            writeln!(f, "{}: solo {}", m.mode, m.solo)?;
            for r in &m.rungs {
                writeln!(
                    f,
                    "  {:<22} probe mean {:>8.3}us sd {:>7.3}us (n={:>4})  runtime {}",
                    r.label, r.mean, r.std_dev, r.count, r.runtime
                )?;
            }
        }
        writeln!(
            f,
            "resume: {} cell(s) replayed from the truncated journal, {} re-simulated",
            self.replayed_cells, self.recomputed_cells
        )?;
        if self.divergences.is_empty() {
            write!(
                f,
                "oracle clean: {} modes agree (DES bit-exact; flow within \
                 {:.0}%/{:.0}% envelope)",
                self.modes.len(),
                FLOW_PROBE_ENVELOPE * 100.0,
                FLOW_RUNTIME_ENVELOPE * 100.0
            )
        } else {
            writeln!(f, "oracle FAILED: {} divergence(s)", self.divergences.len())?;
            for d in &self.divergences {
                writeln!(
                    f,
                    "  {} vs {}: {}: {}",
                    d.baseline, d.mode, d.artefact, d.detail
                )?;
            }
            Ok(())
        }
    }
}

/// Why the oracle could not produce a verdict (distinct from a verdict of
/// "the modes diverge", which is a clean [`OracleReport`] with entries).
#[derive(Debug)]
pub enum OracleError {
    /// A measurement cell failed in one of the modes. Invariant
    /// violations from an audited run land here with the full report in
    /// the rendering.
    Cell {
        /// The mode the cell belonged to.
        mode: &'static str,
        /// The cell's label.
        label: String,
        /// The failure rendering.
        error: String,
    },
    /// A non-cell experiment step (solo runtime, flow measurement) failed.
    Experiment(ExperimentError),
    /// The kill-and-resume journal could not be created, mangled, or
    /// reloaded.
    Journal(JournalError),
    /// Filesystem trouble while simulating the kill.
    Io(String),
}

impl fmt::Display for OracleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleError::Cell { mode, label, error } => {
                write!(f, "oracle mode {mode}, cell {label}: {error}")
            }
            OracleError::Experiment(e) => write!(f, "oracle measurement: {e}"),
            OracleError::Journal(e) => write!(f, "oracle journal: {e}"),
            OracleError::Io(e) => write!(f, "oracle journal file: {e}"),
        }
    }
}

impl std::error::Error for OracleError {}

impl From<ExperimentError> for OracleError {
    fn from(e: ExperimentError) -> Self {
        OracleError::Experiment(e)
    }
}

impl From<JournalError> for OracleError {
    fn from(e: JournalError) -> Self {
        OracleError::Journal(e)
    }
}

fn rung_label(comp: &CompressionConfig) -> String {
    format!("rung:{}", comp.label())
}

/// Runs the ladder through the DES sweep engine at the given worker
/// count, optionally journaled. Every cell runs with auditing requested.
fn des_ladder(
    cfg: &ExperimentConfig,
    app: AppKind,
    ladder: &[CompressionConfig],
    par: Parallelism,
    journal: Option<&RunJournal>,
    mode: &'static str,
) -> Result<Vec<(LatencyProfile, SimDuration)>, OracleError> {
    let fp = config_fingerprint(cfg, "des");
    let tasks: Vec<(String, _)> = ladder
        .iter()
        .map(|comp| {
            (rung_label(comp), move || {
                let p = impact_profile_of_compression(cfg, comp)?;
                let t = runtime_under_compression(cfg, app, comp)?;
                Ok((p, t))
            })
        })
        .collect();
    let (cells, _telemetry) = sweep_supervised_for(
        "oracle-ladder",
        "des",
        par,
        &Supervisor::none(),
        journal,
        fp,
        tasks,
    )?;
    cells
        .into_iter()
        .zip(ladder)
        .map(|(cell, comp)| {
            cell.map_err(|e| OracleError::Cell {
                mode,
                label: rung_label(comp),
                error: e.to_string(),
            })
        })
        .collect()
}

fn des_artefacts(
    cfg: &ExperimentConfig,
    app: AppKind,
    ladder: &[CompressionConfig],
    cells: Vec<(LatencyProfile, SimDuration)>,
    mode: &'static str,
) -> Result<ModeArtefacts, OracleError> {
    let solo = solo_runtime(cfg, app)?;
    let rungs = ladder
        .iter()
        .zip(&cells)
        .map(|(comp, (p, t))| RungArtefact::new(rung_label(comp), p, *t))
        .collect();
    Ok(ModeArtefacts { mode, solo, rungs })
}

/// Truncates a freshly written journal to its header line plus the first
/// half of its cell lines — the on-disk state a `kill -9` halfway through
/// the campaign leaves behind. Returns `(kept, total)` cell lines.
fn simulate_kill(path: &Path) -> Result<(usize, usize), OracleError> {
    let io = |e: std::io::Error| OracleError::Io(format!("{}: {e}", path.display()));
    let text = std::fs::read_to_string(path).map_err(io)?;
    let lines: Vec<&str> = text.lines().collect();
    let entries = lines.len().saturating_sub(1); // line 0 is the sweep header
    let keep = entries / 2;
    let mut out = String::new();
    for line in &lines[..1 + keep] {
        out.push_str(line);
        out.push('\n');
    }
    std::fs::write(path, out).map_err(io)?;
    Ok((keep, entries))
}

/// Bit-exact comparison of a DES mode against the reference. Any
/// difference — a single mantissa bit of a probe mean, one nanosecond of
/// a runtime — is a divergence.
fn diff_exact(base: &ModeArtefacts, other: &ModeArtefacts, out: &mut Vec<Divergence>) {
    let mut push = |artefact: String, detail: String| {
        out.push(Divergence {
            baseline: base.mode,
            mode: other.mode,
            artefact,
            detail,
        });
    };
    if base.solo != other.solo {
        push(
            "solo runtime".to_owned(),
            format!("{} != {}", base.solo, other.solo),
        );
    }
    for (b, o) in base.rungs.iter().zip(&other.rungs) {
        let mut field = |name: &str, x: f64, y: f64| {
            if x.to_bits() != y.to_bits() {
                push(
                    format!("{}: probe {name}", b.label),
                    format!(
                        "{x:?} != {y:?} (bits {:016x} != {:016x})",
                        x.to_bits(),
                        y.to_bits()
                    ),
                );
            }
        };
        field("mean", b.mean, o.mean);
        field("std dev", b.std_dev, o.std_dev);
        field("min", b.min, o.min);
        field("max", b.max, o.max);
        if b.count != o.count {
            push(
                format!("{}: probe count", b.label),
                format!("{} != {}", b.count, o.count),
            );
        }
        if b.runtime != o.runtime {
            push(
                format!("{}: runtime", b.label),
                format!("{} != {}", b.runtime, o.runtime),
            );
        }
    }
}

/// Envelope comparison of the flow backend against the DES reference:
/// probe means within [`FLOW_PROBE_ENVELOPE`], `degraded / solo` runtime
/// ratios within [`FLOW_RUNTIME_ENVELOPE`].
fn diff_envelope(base: &ModeArtefacts, flow: &ModeArtefacts, out: &mut Vec<Divergence>) {
    for (b, o) in base.rungs.iter().zip(&flow.rungs) {
        let probe_err = (o.mean - b.mean).abs() / b.mean;
        if probe_err > FLOW_PROBE_ENVELOPE {
            out.push(Divergence {
                baseline: base.mode,
                mode: flow.mode,
                artefact: format!("{}: probe mean", b.label),
                detail: format!(
                    "{:.3}us vs {:.3}us ({:.1}% off, envelope {:.0}%)",
                    o.mean,
                    b.mean,
                    probe_err * 100.0,
                    FLOW_PROBE_ENVELOPE * 100.0
                ),
            });
        }
        let base_ratio = b.runtime.as_nanos() as f64 / base.solo.as_nanos() as f64;
        let flow_ratio = o.runtime.as_nanos() as f64 / flow.solo.as_nanos() as f64;
        let ratio_err = (flow_ratio - base_ratio).abs() / base_ratio;
        if ratio_err > FLOW_RUNTIME_ENVELOPE {
            out.push(Divergence {
                baseline: base.mode,
                mode: flow.mode,
                artefact: format!("{}: runtime ratio", b.label),
                detail: format!(
                    "{flow_ratio:.4} vs {base_ratio:.4} ({:.1}% off, envelope {:.0}%)",
                    ratio_err * 100.0,
                    FLOW_RUNTIME_ENVELOPE * 100.0
                ),
            });
        }
    }
}

/// Runs the differential oracle.
///
/// `cfg` is the shared experiment configuration (its `jobs` field is
/// ignored — the oracle pins worker counts per mode; its `audit` flag is
/// forced on so invariant violations fail the run when the `audit`
/// feature is compiled in). `journal_path` is where the kill-and-resume
/// journal is written; the file is created, truncated, resumed, and
/// removed on success. `flow` adds the fourth, envelope-checked mode —
/// the caller passes the engine in because this crate must not depend on
/// `anp-flowsim` (which depends on it). `log` receives progress lines.
pub fn run_oracle(
    cfg: &ExperimentConfig,
    app: AppKind,
    ladder: &[CompressionConfig],
    flow: Option<&dyn Backend>,
    journal_path: &Path,
    log: &mut dyn FnMut(&str),
) -> Result<OracleReport, OracleError> {
    let cfg = cfg.clone().with_audit(true);

    // Mode 1: the reference — serial, journaled (this run's journal is
    // the one the kill is simulated against).
    log(&format!(
        "mode des-jobs1: {} rungs of {} on one worker (journaled)",
        ladder.len(),
        app.name()
    ));
    let journal = RunJournal::create(journal_path)?;
    let reference_cells = des_ladder(
        &cfg,
        app,
        ladder,
        Parallelism::fixed(1),
        Some(&journal),
        "des-jobs1",
    )?;
    drop(journal);
    let reference = des_artefacts(&cfg, app, ladder, reference_cells, "des-jobs1")?;

    // Mode 2: the same ladder fanned across 8 workers.
    log("mode des-jobs8: same ladder on 8 workers");
    let parallel_cells = des_ladder(&cfg, app, ladder, Parallelism::fixed(8), None, "des-jobs8")?;
    let parallel = des_artefacts(&cfg, app, ladder, parallel_cells, "des-jobs8")?;

    // Mode 3: kill the journal halfway and resume.
    let (kept, total) = simulate_kill(journal_path)?;
    log(&format!(
        "mode des-resumed: journal truncated to {kept}/{total} cells, resuming"
    ));
    let journal = RunJournal::resume(journal_path)?;
    let replayed = journal.completed_cells();
    let resumed_cells = des_ladder(
        &cfg,
        app,
        ladder,
        Parallelism::fixed(8),
        Some(&journal),
        "des-resumed",
    )?;
    drop(journal);
    let resumed = des_artefacts(&cfg, app, ladder, resumed_cells, "des-resumed")?;

    // Mode 4: the analytic flow model, when an engine was supplied.
    let flow_mode = match flow {
        Some(backend) => {
            log("mode flow: analytic model, envelope-checked");
            let solo = backend.measure_solo_runtime(&cfg, app)?;
            let rungs = ladder
                .iter()
                .map(|comp| {
                    let p =
                        backend.measure_impact_profile(&cfg, WorkloadSpec::Compression(comp))?;
                    let t = backend.measure_compression_run(&cfg, app, comp)?;
                    Ok(RungArtefact::new(rung_label(comp), &p, t))
                })
                .collect::<Result<Vec<_>, ExperimentError>>()?;
            Some(ModeArtefacts {
                mode: "flow",
                solo,
                rungs,
            })
        }
        None => None,
    };

    let mut divergences = Vec::new();
    diff_exact(&reference, &parallel, &mut divergences);
    diff_exact(&reference, &resumed, &mut divergences);
    if let Some(fm) = &flow_mode {
        diff_envelope(&reference, fm, &mut divergences);
    }

    let mut modes = vec![reference, parallel, resumed];
    modes.extend(flow_mode);
    let report = OracleReport {
        modes,
        divergences,
        replayed_cells: replayed,
        recomputed_cells: total - kept,
    };
    if report.is_clean() {
        let _ = std::fs::remove_file(journal_path);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simnet::SwitchConfig;
    use anp_workloads::ImpactConfig;

    fn tiny_cfg() -> ExperimentConfig {
        let mut switch = SwitchConfig::tiny_deterministic();
        switch.nodes = 18;
        switch.route_servers = 18;
        let mut cfg = ExperimentConfig::cab();
        cfg.switch = switch;
        cfg.impact = ImpactConfig {
            period: SimDuration::from_micros(100),
            pairs_per_node: 1,
            ..ImpactConfig::default()
        };
        cfg.measure_window = SimDuration::from_millis(5);
        cfg
    }

    fn temp_journal(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("anp-oracle-{tag}-{}.journal", std::process::id()))
    }

    #[test]
    fn oracle_is_clean_on_the_des_modes() {
        let ladder = [
            CompressionConfig::new(1, 25_000_000, 1),
            CompressionConfig::new(17, 25_000, 10),
        ];
        let path = temp_journal("clean");
        let mut lines = Vec::new();
        let report = run_oracle(&tiny_cfg(), AppKind::Fftw, &ladder, None, &path, &mut |l| {
            lines.push(l.to_owned())
        })
        .unwrap();
        assert!(report.is_clean(), "unexpected divergences:\n{report}");
        assert_eq!(report.modes.len(), 3);
        // The truncation must have forced real re-simulation: half the
        // cells replayed, half recomputed.
        assert_eq!(report.replayed_cells, 1);
        assert_eq!(report.recomputed_cells, 1);
        assert!(!path.exists(), "clean oracle must remove its journal");
        assert!(lines.iter().any(|l| l.contains("des-resumed")));
        assert!(format!("{report}").contains("oracle clean"));
    }

    #[test]
    fn diff_exact_catches_a_single_bit() {
        let rung = RungArtefact {
            label: "rung:x".to_owned(),
            mean: 1.0,
            std_dev: 0.5,
            min: 0.9,
            max: 1.1,
            count: 10,
            runtime: SimDuration::from_micros(100),
        };
        let base = ModeArtefacts {
            mode: "des-jobs1",
            solo: SimDuration::from_micros(90),
            rungs: vec![rung.clone()],
        };
        let mut other = ModeArtefacts {
            mode: "des-jobs8",
            ..base.clone()
        };
        other.rungs[0].mean = f64::from_bits(1.0f64.to_bits() + 1);
        let mut out = Vec::new();
        diff_exact(&base, &other, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out[0].artefact.contains("probe mean"));
        assert!(out[0].detail.contains("bits"));
    }

    #[test]
    fn diff_envelope_flags_out_of_envelope_flow_results() {
        let mk = |mode: &'static str, mean: f64, runtime_us: u64| ModeArtefacts {
            mode,
            solo: SimDuration::from_micros(100),
            rungs: vec![RungArtefact {
                label: "rung:x".to_owned(),
                mean,
                std_dev: 0.0,
                min: mean,
                max: mean,
                count: 5,
                runtime: SimDuration::from_micros(runtime_us),
            }],
        };
        let base = mk("des-jobs1", 2.0, 120);
        // 5% off on both observables: inside the envelope.
        let good = mk("flow", 2.1, 126);
        let mut out = Vec::new();
        diff_envelope(&base, &good, &mut out);
        assert!(out.is_empty(), "{out:?}");
        // 25% off on the probe mean: outside.
        let bad = mk("flow", 2.5, 200);
        diff_envelope(&base, &bad, &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        assert!(out[0].artefact.contains("probe mean"));
        assert!(out[1].artefact.contains("runtime ratio"));
    }
}
