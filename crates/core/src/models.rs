//! The four slowdown-prediction models (paper §IV).
//!
//! All four answer the same question: *how much will application A slow
//! down when it shares the switch with workload B?* — using only
//! measurements taken on A and B in isolation. They differ in how they
//! summarize B's latency footprint when searching the look-up table:
//!
//! | Model            | B is described by            | Selection rule            |
//! |------------------|------------------------------|---------------------------|
//! | AverageLT        | mean latency µ_B             | nearest µ_Ci              |
//! | AverageStDevLT   | interval [µ_B−σ_B, µ_B+σ_B]  | max interval overlap      |
//! | PDFLT            | full binned PDF f_B          | max ∫ f_B·f_Ci            |
//! | Queue            | utilization U_B (P-K)        | p_A interpolated at U_B   |

use anp_simnet::SimDuration;
use anp_workloads::AppKind;

use crate::lut::LookupTable;
use crate::samples::LatencyProfile;
use crate::series::TimedSeries;

/// The four prediction models, as a typed identifier.
///
/// Everything that used to pass model names around as strings —
/// prediction maps, error summaries, harness tables, the
/// `anp sched --model` flag — keys on this enum instead, so an unknown
/// model is a parse error at the edge rather than a silent empty column
/// deep inside a report. [`std::fmt::Display`] and [`std::str::FromStr`]
/// round-trip through the paper's spellings (`AverageLT`, …);
/// parsing is case-insensitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ModelKind {
    /// §IV-A.1 — match on mean latency ([`AverageLt`]).
    AverageLt,
    /// §IV-A.2 — match on `µ±σ` interval overlap ([`AverageStDevLt`]).
    AverageStDevLt,
    /// §IV-A.3 — match on the PDF product integral ([`PdfLt`]).
    PdfLt,
    /// §IV-B — the queue-theoretic model ([`QueueModel`]).
    Queue,
}

impl ModelKind {
    /// All four models, in the paper's presentation order (Fig. 8/9).
    pub const ALL: [ModelKind; 4] = [
        ModelKind::AverageLt,
        ModelKind::AverageStDevLt,
        ModelKind::PdfLt,
        ModelKind::Queue,
    ];

    /// The paper's spelling of the model's name.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::AverageLt => "AverageLT",
            ModelKind::AverageStDevLt => "AverageStDevLT",
            ModelKind::PdfLt => "PDFLT",
            ModelKind::Queue => "Queue",
        }
    }

    /// Constructs the model this identifier names.
    pub fn model(self) -> Box<dyn SlowdownModel> {
        match self {
            ModelKind::AverageLt => Box::new(AverageLt),
            ModelKind::AverageStDevLt => Box::new(AverageStDevLt),
            ModelKind::PdfLt => Box::new(PdfLt),
            ModelKind::Queue => Box::new(QueueModel),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A model name that matches none of the four models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownModel(pub String);

impl std::fmt::Display for UnknownModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown model '{}' (expected one of: AverageLT, AverageStDevLT, PDFLT, Queue)",
            self.0
        )
    }
}

impl std::error::Error for UnknownModel {}

impl std::str::FromStr for ModelKind {
    type Err = UnknownModel;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ModelKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
            .ok_or_else(|| UnknownModel(s.to_owned()))
    }
}

/// A slowdown predictor built on the look-up table.
pub trait SlowdownModel {
    /// Which of the four models this is.
    fn kind(&self) -> ModelKind;

    /// The model's display name (as in Fig. 8/9).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Predicted % slowdown of `victim` when co-running with a workload
    /// whose impact profile is `other`. Returns `None` when the table
    /// carries no degradation data for `victim`.
    fn predict(&self, table: &LookupTable, victim: AppKind, other: &LatencyProfile) -> Option<f64>;
}

/// Returns the slowdown stored for `victim` in the entry at `idx`.
fn slowdown_at(table: &LookupTable, idx: usize, victim: AppKind) -> Option<f64> {
    table.entries[idx].slowdown.get(&victim).copied()
}

/// §IV-A.1 — match on mean latency.
#[derive(Debug, Default, Clone, Copy)]
pub struct AverageLt;

impl SlowdownModel for AverageLt {
    fn kind(&self) -> ModelKind {
        ModelKind::AverageLt
    }

    fn predict(&self, table: &LookupTable, victim: AppKind, other: &LatencyProfile) -> Option<f64> {
        let mu_b = other.mean();
        let idx = table
            .entries
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (a.profile.mean() - mu_b).abs();
                let db = (b.profile.mean() - mu_b).abs();
                da.total_cmp(&db)
            })?
            .0;
        slowdown_at(table, idx, victim)
    }
}

/// §IV-A.2 — match on the overlap of `µ±σ` intervals.
#[derive(Debug, Default, Clone, Copy)]
pub struct AverageStDevLt;

impl SlowdownModel for AverageStDevLt {
    fn kind(&self) -> ModelKind {
        ModelKind::AverageStDevLt
    }

    fn predict(&self, table: &LookupTable, victim: AppKind, other: &LatencyProfile) -> Option<f64> {
        let ib = other.interval();
        let best = table
            .entries
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let oa = ib.overlap(&a.profile.interval());
                let ob = ib.overlap(&b.profile.interval());
                oa.total_cmp(&ob)
            })?
            .0;
        // Degenerate case: no entry overlaps at all. The interval carries
        // no signal, so fall back to the mean-distance rule rather than
        // returning an arbitrary entry.
        if ib.overlap(&table.entries[best].profile.interval()) == 0.0 {
            return AverageLt.predict(table, victim, other);
        }
        slowdown_at(table, best, victim)
    }
}

/// §IV-A.3 — match on the PDF product integral `∫ f_B·f_Ci`.
#[derive(Debug, Default, Clone, Copy)]
pub struct PdfLt;

impl SlowdownModel for PdfLt {
    fn kind(&self) -> ModelKind {
        ModelKind::PdfLt
    }

    fn predict(&self, table: &LookupTable, victim: AppKind, other: &LatencyProfile) -> Option<f64> {
        let best = table
            .entries
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                let oa = other.pdf_similarity(&a.profile);
                let ob = other.pdf_similarity(&b.profile);
                oa.total_cmp(&ob)
            })?
            .0;
        // Disjoint supports carry no signal; fall back to mean distance.
        if other.pdf_similarity(&table.entries[best].profile) == 0.0 {
            return AverageLt.predict(table, victim, other);
        }
        slowdown_at(table, best, victim)
    }
}

/// §IV-B / §V-B — the queue-theoretic model: infer B's switch utilization
/// `U_B` via the Pollaczek–Khinchine inversion, then evaluate the victim's
/// degradation curve `p_victim` at `U_B` (piecewise-linear interpolation,
/// clamped to the measured range).
#[derive(Debug, Default, Clone, Copy)]
pub struct QueueModel;

impl SlowdownModel for QueueModel {
    fn kind(&self) -> ModelKind {
        ModelKind::Queue
    }

    fn predict(&self, table: &LookupTable, victim: AppKind, other: &LatencyProfile) -> Option<f64> {
        let u_b = table.calibration.utilization(other);
        let curve = table.degradation_curve(victim);
        interpolate_clamped(&curve, u_b)
    }
}

/// Piecewise-linear interpolation of `(x, y)` points sorted by `x`,
/// clamping outside the covered range. Averages duplicated x values.
pub fn interpolate_clamped(curve: &[(f64, f64)], x: f64) -> Option<f64> {
    if curve.is_empty() {
        return None;
    }
    if x <= curve[0].0 {
        return Some(curve[0].1);
    }
    let last = curve[curve.len() - 1];
    if x >= last.0 {
        return Some(last.1);
    }
    for w in curve.windows(2) {
        let (x0, y0) = w[0];
        let (x1, y1) = w[1];
        if (x0..=x1).contains(&x) {
            if x1 == x0 {
                return Some((y0 + y1) / 2.0);
            }
            return Some(y0 + (y1 - y0) * (x - x0) / (x1 - x0));
        }
    }
    Some(last.1)
}

/// Extension (not in the paper's evaluation, but prescribed by its §V-B
/// discussion): a *phase-aware* queue model. Instead of summarizing the
/// co-runner's probe series by one global mean latency, it splits the
/// series into time windows, infers a utilization per window, and
/// predicts the victim's slowdown as the sample-weighted mean of
/// `p_victim(U_w)` over windows. For phased workloads like AMG — whose
/// quiet phases leave the switch nearly free — this removes the
/// constant-utilization assumption the paper identifies as the source of
/// its one large queue-model error (FFTW predicted against AMG).
#[derive(Debug, Clone, Copy)]
pub struct QueuePhaseModel {
    /// Window length used to segment the probe series.
    pub window: SimDuration,
    /// Minimum samples for a window to count (sparser windows are
    /// dropped).
    pub min_samples: usize,
}

impl Default for QueuePhaseModel {
    fn default() -> Self {
        QueuePhaseModel {
            window: SimDuration::from_millis(10),
            min_samples: 5,
        }
    }
}

impl QueuePhaseModel {
    /// The model's display name.
    pub fn name(&self) -> &'static str {
        "QueuePhase"
    }

    /// Predicts the % slowdown of `victim` co-run with a workload whose
    /// timed probe series is `other`. Falls back to the plain queue model
    /// when no window qualifies.
    pub fn predict_series(
        &self,
        table: &LookupTable,
        victim: AppKind,
        other: &TimedSeries,
    ) -> Option<f64> {
        let dist =
            other.utilization_distribution(&table.calibration, self.window, self.min_samples);
        if dist.is_empty() {
            return QueueModel.predict(table, victim, &other.profile());
        }
        let curve = table.degradation_curve(victim);
        let mut acc = 0.0;
        for (u, w) in dist {
            acc += w * interpolate_clamped(&curve, u)?;
        }
        Some(acc)
    }
}

/// All four models, in the paper's presentation order (Fig. 8/9).
pub fn all_models() -> Vec<Box<dyn SlowdownModel>> {
    ModelKind::ALL.into_iter().map(ModelKind::model).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lut::test_support::{synthetic_profile, synthetic_table};

    fn table() -> LookupTable {
        synthetic_table(8, &[(AppKind::Fftw, 2.0), (AppKind::Mcb, 0.05)])
    }

    #[test]
    fn average_lt_picks_the_nearest_mean() {
        let t = table();
        // Probe profile equal to entry 3's profile: prediction must be
        // entry 3's stored slowdown.
        let target = &t.entries[3];
        let pred = AverageLt
            .predict(&t, AppKind::Fftw, &target.profile)
            .unwrap();
        assert_eq!(pred, target.slowdown[&AppKind::Fftw]);
    }

    #[test]
    fn stdev_lt_uses_interval_overlap() {
        let t = table();
        let target = &t.entries[5];
        let pred = AverageStDevLt
            .predict(&t, AppKind::Fftw, &target.profile)
            .unwrap();
        assert_eq!(pred, target.slowdown[&AppKind::Fftw]);
    }

    #[test]
    fn pdf_lt_uses_distribution_overlap() {
        let t = table();
        // ∫f·g is not maximized by g = f in general (a narrower g near
        // f's mode can score higher), so verify against the argmax
        // computed independently rather than assuming self-selection.
        let probe = t.entries[2].profile.clone();
        let best = t
            .entries
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| {
                probe
                    .pdf_similarity(&a.profile)
                    .partial_cmp(&probe.pdf_similarity(&b.profile))
                    .unwrap()
            })
            .unwrap()
            .0;
        let pred = PdfLt.predict(&t, AppKind::Fftw, &probe).unwrap();
        assert_eq!(pred, t.entries[best].slowdown[&AppKind::Fftw]);
    }

    #[test]
    fn pdf_lt_falls_back_when_support_is_disjoint() {
        let t = table();
        // A profile far beyond every entry (9.8 µs, tiny spread): PDF
        // overlap is zero everywhere, so PDFLT must defer to AverageLT.
        let far = synthetic_profile(9.8, 0.01);
        let pdf = PdfLt.predict(&t, AppKind::Fftw, &far);
        let avg = AverageLt.predict(&t, AppKind::Fftw, &far);
        assert_eq!(pdf, avg);
    }

    #[test]
    fn queue_model_interpolates_between_entries() {
        let t = table();
        // Build a probe profile whose P-K utilization lands between two
        // entries; the prediction must lie between their slowdowns.
        let u_mid = (t.entries[3].utilization + t.entries[4].utilization) / 2.0;
        let lambda = u_mid * t.calibration.mu;
        let w = t.calibration.pk_sojourn(lambda);
        let probe = synthetic_profile(w, 0.1);
        let pred = QueueModel.predict(&t, AppKind::Fftw, &probe).unwrap();
        let lo = t.entries[3].slowdown[&AppKind::Fftw].min(t.entries[4].slowdown[&AppKind::Fftw]);
        let hi = t.entries[3].slowdown[&AppKind::Fftw].max(t.entries[4].slowdown[&AppKind::Fftw]);
        // The synthetic profile's mean is only approximately w, so allow
        // one entry of slack around the bracket.
        assert!(
            pred >= lo * 0.5 && pred <= hi * 1.5,
            "pred {pred} outside [{lo}, {hi}] bracket"
        );
    }

    #[test]
    fn queue_model_clamps_outside_range() {
        let t = table();
        let low = synthetic_profile(0.5, 0.01); // below idle: U ≈ 0
        let pred = QueueModel.predict(&t, AppKind::Fftw, &low).unwrap();
        let curve = t.degradation_curve(AppKind::Fftw);
        assert_eq!(pred, curve[0].1);
        let high = synthetic_profile(9.9, 0.01); // deep saturation
        let pred_hi = QueueModel.predict(&t, AppKind::Fftw, &high).unwrap();
        assert_eq!(pred_hi, curve.last().unwrap().1);
    }

    #[test]
    fn unknown_victim_returns_none() {
        let t = table();
        let probe = synthetic_profile(2.0, 0.3);
        for m in all_models() {
            assert!(
                m.predict(&t, AppKind::Amg, &probe).is_none(),
                "{} must return None for an unmeasured victim",
                m.name()
            );
        }
    }

    #[test]
    fn interpolation_edge_cases() {
        assert_eq!(interpolate_clamped(&[], 0.5), None);
        let one = [(0.4, 10.0)];
        assert_eq!(interpolate_clamped(&one, 0.0), Some(10.0));
        assert_eq!(interpolate_clamped(&one, 1.0), Some(10.0));
        let two = [(0.0, 0.0), (1.0, 100.0)];
        assert_eq!(interpolate_clamped(&two, 0.25), Some(25.0));
        // Duplicate x: averaged.
        let dup = [(0.5, 10.0), (0.5, 30.0)];
        assert_eq!(interpolate_clamped(&dup, 0.5), Some(10.0));
    }

    #[test]
    fn model_names_match_paper() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name()).collect();
        assert_eq!(names, ["AverageLT", "AverageStDevLT", "PDFLT", "Queue"]);
    }

    #[test]
    fn model_kind_round_trips_through_display() {
        for kind in ModelKind::ALL {
            let rendered = kind.to_string();
            assert_eq!(rendered.parse::<ModelKind>().unwrap(), kind);
            // Parsing is case-insensitive so CLI flags stay forgiving.
            assert_eq!(rendered.to_lowercase().parse::<ModelKind>().unwrap(), kind);
            assert_eq!(rendered.to_uppercase().parse::<ModelKind>().unwrap(), kind);
            // The boxed model agrees with its kind.
            assert_eq!(kind.model().kind(), kind);
            assert_eq!(kind.model().name(), rendered);
        }
        let err = "NoSuchModel".parse::<ModelKind>().unwrap_err();
        assert!(err.to_string().contains("NoSuchModel"));
        assert!(err.to_string().contains("AverageLT"));
    }
}
