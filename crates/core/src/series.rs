//! Time-resolved probe series and windowed utilization analysis.
//!
//! The paper's §V-B explains the queue model's one significant miss (FFTW
//! predicted against AMG): AMG "executions go through phases that do not
//! significantly use the network, \[so\] the switch capacity available to
//! FFTW is close to 100 % during a significant portion of its co-run …
//! which is something that the queue model has not considered as it
//! assumes a constant utilization of the network".
//!
//! This module keeps probe samples *with their timestamps*, so the
//! utilization can be evaluated per time window instead of once globally —
//! the input of the phase-aware extension model in
//! [`crate::models::QueuePhaseModel`].

use anp_simnet::{SimDuration, SimTime};
use anp_workloads::ProbeSample;

use crate::queue::Calibration;
use crate::samples::LatencyProfile;

/// A time-ordered collection of probe samples from one impact experiment.
#[derive(Debug, Clone)]
pub struct TimedSeries {
    samples: Vec<ProbeSample>,
}

impl TimedSeries {
    /// Builds a series; samples are sorted by timestamp if not already.
    ///
    /// # Panics
    /// Panics if `samples` is empty.
    pub fn new(mut samples: Vec<ProbeSample>) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!samples.is_empty(), "a timed series needs samples");
        if !samples.windows(2).all(|w| w[0].at <= w[1].at) {
            samples.sort_by_key(|s| s.at);
        }
        TimedSeries { samples }
    }

    /// Builds a series discarding the first `warmup_frac` of the samples.
    pub fn with_warmup(samples: Vec<ProbeSample>, warmup_frac: f64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!((0.0..1.0).contains(&warmup_frac), "bad warmup fraction");
        let skip = (samples.len() as f64 * warmup_frac).floor() as usize;
        TimedSeries::new(samples[skip..].to_vec())
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when the series holds no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The raw samples, time-ordered.
    pub fn samples(&self) -> &[ProbeSample] {
        &self.samples
    }

    /// Time span covered by the series.
    pub fn span(&self) -> (SimTime, SimTime) {
        (self.samples[0].at, self.samples[self.samples.len() - 1].at)
    }

    /// Collapses the series into a single (time-blind) latency profile —
    /// what the paper's four baseline models consume.
    pub fn profile(&self) -> LatencyProfile {
        let lat: Vec<f64> = self.samples.iter().map(|s| s.one_way_us).collect();
        LatencyProfile::from_samples(&lat)
    }

    /// Splits the series into consecutive `window`-long segments and
    /// profiles each segment that contains at least `min_samples` samples.
    /// Returns `(window_profile, sample_count)` pairs in time order.
    pub fn windowed_profiles(
        &self,
        window: SimDuration,
        min_samples: usize,
    ) -> Vec<(LatencyProfile, usize)> {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(window > SimDuration::ZERO, "window must be positive");
        let (start, end) = self.span();
        let mut out = Vec::new();
        let mut cursor = start;
        let mut idx = 0;
        while cursor <= end {
            let next = cursor + window;
            let begin = idx;
            while idx < self.samples.len() && self.samples[idx].at < next {
                idx += 1;
            }
            let slice = &self.samples[begin..idx];
            if slice.len() >= min_samples.max(1) {
                let lat: Vec<f64> = slice.iter().map(|s| s.one_way_us).collect();
                out.push((LatencyProfile::from_samples(&lat), slice.len()));
            }
            cursor = next;
        }
        out
    }

    /// The per-window utilization distribution under `calib`: one
    /// `(utilization, weight)` entry per window, weights summing to 1.
    /// This is the phase description the §V-B discussion calls for.
    pub fn utilization_distribution(
        &self,
        calib: &Calibration,
        window: SimDuration,
        min_samples: usize,
    ) -> Vec<(f64, f64)> {
        let windows = self.windowed_profiles(window, min_samples);
        let total: usize = windows.iter().map(|(_, n)| n).sum();
        if total == 0 {
            return Vec::new();
        }
        windows
            .into_iter()
            .map(|(p, n)| (calib.utilization(&p), n as f64 / total as f64))
            .collect()
    }
}

/// Bit-exact journal codec: timestamps round-trip as raw nanoseconds and
/// latencies through [`f64::to_bits`] hex, so a series decoded from a run
/// journal yields byte-identical windowed profiles and phase-model
/// predictions on resume.
impl crate::journal::Journaled for TimedSeries {
    fn encode_journal(&self) -> String {
        use crate::journal::encode_f64_bits;
        let ats: Vec<String> = self
            .samples
            .iter()
            .map(|s| s.at.as_nanos().to_string())
            .collect();
        let lats: Vec<String> = self
            .samples
            .iter()
            .map(|s| encode_f64_bits(s.one_way_us))
            .collect();
        format!("{{\"at\":[{}],\"us\":[{}]}}", ats.join(","), lats.join(","))
    }

    fn decode_journal(s: &str) -> Option<Self> {
        use crate::journal::decode_f64_bits;
        let slice = |key: &str| -> Option<&str> {
            let open = format!("\"{key}\":[");
            let start = s.find(&open)? + open.len();
            let end = start + s[start..].find(']')?;
            Some(&s[start..end])
        };
        let ats = slice("at")?
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().ok())
            .collect::<Option<Vec<u64>>>()?;
        let lats = slice("us")?
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(decode_f64_bits)
            .collect::<Option<Vec<f64>>>()?;
        if ats.is_empty() || ats.len() != lats.len() {
            return None;
        }
        Some(TimedSeries::new(
            ats.into_iter()
                .zip(lats)
                .map(|(ns, one_way_us)| ProbeSample {
                    at: SimTime::from_nanos(ns),
                    one_way_us,
                })
                .collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::MuPolicy;

    fn sample(at_us: u64, lat: f64) -> ProbeSample {
        ProbeSample {
            at: SimTime::from_micros(at_us),
            one_way_us: lat,
        }
    }

    fn calib() -> Calibration {
        Calibration {
            mu: 1.0,
            var_s: 0.25,
            idle_mean: 1.1,
            policy: MuPolicy::MinLatency,
        }
    }

    #[test]
    fn series_sorts_and_spans() {
        let s = TimedSeries::new(vec![sample(30, 1.0), sample(10, 2.0), sample(20, 3.0)]);
        assert_eq!(s.len(), 3);
        let (a, b) = s.span();
        assert_eq!(a, SimTime::from_micros(10));
        assert_eq!(b, SimTime::from_micros(30));
        assert!(!s.is_empty());
    }

    #[test]
    fn profile_matches_flat_samples() {
        let s = TimedSeries::new(vec![sample(1, 1.0), sample(2, 2.0), sample(3, 3.0)]);
        assert!((s.profile().mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_trims_earliest() {
        let s = TimedSeries::with_warmup(
            vec![
                sample(1, 9.0),
                sample(2, 9.0),
                sample(3, 1.0),
                sample(4, 1.0),
            ],
            0.5,
        );
        assert_eq!(s.len(), 2);
        assert!((s.profile().mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn windowing_partitions_by_time() {
        // Two clearly separated phases: busy (5 µs latencies) then idle
        // (1 µs), 10 samples each, 1 ms apart within phase.
        let mut v = Vec::new();
        for i in 0..10u64 {
            v.push(sample(i * 1_000, 5.0));
        }
        for i in 0..10u64 {
            v.push(sample(20_000 + i * 1_000, 1.0));
        }
        let s = TimedSeries::new(v);
        let windows = s.windowed_profiles(SimDuration::from_millis(10), 3);
        assert_eq!(windows.len(), 2, "two phases, two qualifying windows");
        assert!(windows[0].0.mean() > 4.5);
        assert!(windows[1].0.mean() < 1.5);
    }

    #[test]
    fn sparse_windows_are_dropped() {
        let s = TimedSeries::new(vec![
            sample(0, 1.0),
            sample(1_000, 1.0),
            sample(50_000, 2.0), // lone straggler in its own window
        ]);
        let windows = s.windowed_profiles(SimDuration::from_millis(10), 2);
        assert_eq!(windows.len(), 1, "the lone-sample window is dropped");
    }

    #[test]
    fn utilization_distribution_weights_sum_to_one() {
        let mut v = Vec::new();
        for i in 0..40u64 {
            // Alternating 10 ms phases of idle-ish and loaded latencies.
            let phase_loaded = (i / 10) % 2 == 1;
            v.push(sample(i * 1_000, if phase_loaded { 6.0 } else { 1.05 }));
        }
        let s = TimedSeries::new(v);
        let dist = s.utilization_distribution(&calib(), SimDuration::from_millis(10), 3);
        assert!(dist.len() >= 3);
        let total_weight: f64 = dist.iter().map(|(_, w)| w).sum();
        assert!((total_weight - 1.0).abs() < 1e-9);
        // Loaded windows must read much higher utilization than idle ones.
        let max_u = dist.iter().map(|(u, _)| *u).fold(0.0, f64::max);
        let min_u = dist.iter().map(|(u, _)| *u).fold(1.0, f64::min);
        assert!(
            max_u > min_u + 0.3,
            "phases must separate: {min_u}..{max_u}"
        );
    }

    #[test]
    #[should_panic(expected = "needs samples")]
    fn empty_series_panics() {
        TimedSeries::new(vec![]);
    }

    #[test]
    fn journal_codec_round_trips_bit_exactly() {
        use crate::journal::Journaled;
        let s = TimedSeries::new(vec![
            sample(10, 1.0 / 3.0),
            sample(20, 2.448),
            sample(30, f64::MIN_POSITIVE),
        ]);
        let back = TimedSeries::decode_journal(&s.encode_journal()).unwrap();
        assert_eq!(back.len(), s.len());
        for (a, b) in back.samples().iter().zip(s.samples()) {
            assert_eq!(a.at, b.at);
            assert_eq!(a.one_way_us.to_bits(), b.one_way_us.to_bits());
        }
        assert!(TimedSeries::decode_journal("{\"at\":[],\"us\":[]}").is_none());
    }
}
