//! Latency profiles: the statistical summary of one impact measurement.
//!
//! An impact experiment produces a set of one-way probe latencies. All four
//! prediction models consume *summaries* of that set — the mean
//! (AverageLT), mean ± σ interval (AverageStDevLT), binned PDF (PDFLT), or
//! the mean alone again as the `W` of the Pollaczek–Khinchine inversion
//! (queue model). [`LatencyProfile`] computes all of them once.

use anp_metrics::{Histogram, Interval, OnlineStats};

/// Summary of a probe-latency sample set (all values in microseconds).
#[derive(Debug, Clone)]
pub struct LatencyProfile {
    stats: OnlineStats,
    histogram: Histogram,
}

impl LatencyProfile {
    /// Builds a profile from one-way latencies in microseconds, using the
    /// paper's Fig. 3 binning (0.5 µs bins over 0–10 µs).
    ///
    /// # Panics
    /// Panics if `samples` is empty — a profile of nothing is meaningless
    /// and always indicates a broken experiment.
    pub fn from_samples(samples: &[f64]) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!samples.is_empty(), "cannot profile zero latency samples");
        let mut histogram = Histogram::latency_us();
        histogram.extend(samples.iter().copied());
        LatencyProfile {
            stats: OnlineStats::from_slice(samples),
            histogram,
        }
    }

    /// Builds a profile discarding the first `warmup_frac` of the samples
    /// (in collection order) — impact experiments discard the ramp-up
    /// phase before the application reaches steady state.
    ///
    /// # Panics
    /// Panics if nothing survives the warm-up cut.
    pub fn from_samples_with_warmup(samples: &[f64], warmup_frac: f64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!((0.0..1.0).contains(&warmup_frac), "bad warmup fraction");
        let skip = (samples.len() as f64 * warmup_frac).floor() as usize;
        Self::from_samples(&samples[skip..])
    }

    /// Number of samples summarized.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean latency `µ_X` in µs — the AverageLT metric and the queue
    /// model's `W`.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Standard deviation `σ_X` in µs.
    pub fn std_dev(&self) -> f64 {
        self.stats.std_dev()
    }

    /// Smallest observed latency in µs (used for idle-switch calibration
    /// of the service rate, per the paper's §IV-B).
    pub fn min(&self) -> f64 {
        // anp-lint: allow(D003) — non-empty by construction: the public constructor rejects empty sample sets
        self.stats.min().expect("profile is never empty")
    }

    /// Largest observed latency in µs.
    pub fn max(&self) -> f64 {
        // anp-lint: allow(D003) — non-empty by construction: the public constructor rejects empty sample sets
        self.stats.max().expect("profile is never empty")
    }

    /// Sample variance in µs² (used as `Var(S)` when calibrating from an
    /// idle switch).
    pub fn variance(&self) -> f64 {
        self.stats.variance()
    }

    /// The paper's AverageStDevLT interval `[µ−σ, µ+σ]`.
    pub fn interval(&self) -> Interval {
        Interval::mean_pm_sigma(self.mean(), self.std_dev())
    }

    /// The binned latency distribution (Fig. 3 binning).
    pub fn histogram(&self) -> &Histogram {
        &self.histogram
    }

    /// The paper's PDFLT similarity to another profile: `∫ f·g`.
    pub fn pdf_similarity(&self, other: &LatencyProfile) -> f64 {
        self.histogram.pdf_product_integral(&other.histogram)
    }
}

/// Bit-exact journal codec: the accumulator moments and histogram counts
/// round-trip through [`f64::to_bits`] hex, so a profile decoded from a
/// run journal produces byte-identical downstream tables (means, σ,
/// PDFLT integrals) — the resume guarantee rests on this.
impl crate::journal::Journaled for LatencyProfile {
    fn encode_journal(&self) -> String {
        use crate::journal::encode_f64_bits as bits;
        let h = &self.histogram;
        let counts: Vec<String> = (0..h.bins()).map(|i| h.count(i).to_string()).collect();
        format!(
            "{{\"n\":{},\"mean\":{},\"m2\":{},\"min\":{},\"max\":{},\
             \"lo\":{},\"hi\":{},\"counts\":[{}],\"under\":{},\"over\":{}}}",
            self.stats.count(),
            bits(self.stats.mean()),
            bits(self.stats.m2()),
            bits(self.min()),
            bits(self.max()),
            bits(h.lo()),
            bits(h.hi()),
            counts.join(","),
            h.underflow(),
            h.overflow(),
        )
    }

    fn decode_journal(s: &str) -> Option<Self> {
        use crate::journal::{decode_f64_bits, raw_field};
        let f = |key| decode_f64_bits(raw_field(s, key)?);
        let n: u64 = raw_field(s, "n")?.parse().ok()?;
        if n == 0 {
            return None; // profiles are never empty
        }
        let stats = OnlineStats::from_parts(n, f("mean")?, f("m2")?, f("min")?, f("max")?);
        let counts_start = s.find("\"counts\":[")? + "\"counts\":[".len();
        let counts_end = counts_start + s[counts_start..].find(']')?;
        let counts = s[counts_start..counts_end]
            .split(',')
            .filter(|p| !p.trim().is_empty())
            .map(|p| p.trim().parse().ok())
            .collect::<Option<Vec<u64>>>()?;
        if counts.is_empty() {
            return None;
        }
        let histogram = Histogram::from_parts(
            f("lo")?,
            f("hi")?,
            counts,
            raw_field(s, "under")?.parse().ok()?,
            raw_field(s, "over")?.parse().ok()?,
        );
        Some(LatencyProfile { stats, histogram })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_values() {
        let p = LatencyProfile::from_samples(&[1.0, 2.0, 3.0]);
        assert_eq!(p.count(), 3);
        assert!((p.mean() - 2.0).abs() < 1e-12);
        assert_eq!(p.min(), 1.0);
        assert_eq!(p.max(), 3.0);
        let i = p.interval();
        assert!((i.center() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_discards_prefix() {
        // First half is slow (ramp-up), steady state is 1 µs.
        let samples: Vec<f64> = (0..10).map(|i| if i < 5 { 9.0 } else { 1.0 }).collect();
        let p = LatencyProfile::from_samples_with_warmup(&samples, 0.5);
        assert_eq!(p.count(), 5);
        assert!((p.mean() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pdf_similarity_ranks_like_distributions_higher() {
        let a: Vec<f64> = (0..200).map(|i| 1.0 + (i % 5) as f64 * 0.1).collect();
        let b: Vec<f64> = (0..200).map(|i| 1.05 + (i % 5) as f64 * 0.1).collect();
        let far: Vec<f64> = (0..200).map(|i| 6.0 + (i % 5) as f64 * 0.1).collect();
        let pa = LatencyProfile::from_samples(&a);
        let pb = LatencyProfile::from_samples(&b);
        let pf = LatencyProfile::from_samples(&far);
        assert!(pa.pdf_similarity(&pb) > pa.pdf_similarity(&pf));
    }

    #[test]
    #[should_panic(expected = "zero latency samples")]
    fn empty_profile_panics() {
        LatencyProfile::from_samples(&[]);
    }

    #[test]
    fn warmup_always_keeps_at_least_one_sample() {
        // floor(n · frac) < n for frac < 1, so even an aggressive warm-up
        // cut cannot empty a non-empty sample set.
        let p = LatencyProfile::from_samples_with_warmup(&[3.5], 0.99);
        assert_eq!(p.count(), 1);
        assert_eq!(p.mean(), 3.5);
    }
}
