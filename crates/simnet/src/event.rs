//! Deterministic discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`. The sequence number is assigned
//! at scheduling time, so two events scheduled for the same instant fire in
//! scheduling order — a total order that makes every run byte-for-byte
//! reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A time-ordered event queue with a monotonically advancing clock.
///
/// `EventQueue` is the single source of truth for "now" in a simulation:
/// [`EventQueue::pop`] advances the clock to the popped event's timestamp.
/// Scheduling into the past is a logic error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            popped: 0,
        }
    }

    /// The current simulation time: the timestamp of the most recently
    /// popped event (zero before any pop).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting to fire.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events popped so far (simulation-size telemetry).
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `event` to fire at the absolute instant `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current clock.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` to fire `after` the current clock.
    pub fn schedule_after(&mut self, after: SimDuration, event: E) {
        self.schedule_at(self.now + after, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(30), "c");
        q.schedule_at(SimTime::from_nanos(10), "a");
        q.schedule_at(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::from_nanos(5), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(SimDuration::from_nanos(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(7));
        assert_eq!(q.now(), t);
        assert_eq!(q.events_processed(), 1);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(50), ());
        q.pop();
        q.schedule_at(SimTime::from_nanos(10), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_nanos(10), 1u32);
        q.schedule_at(SimTime::from_nanos(30), 3u32);
        let (_, e) = q.pop().unwrap();
        assert_eq!(e, 1);
        // Schedule between the popped event and the remaining one.
        q.schedule_at(SimTime::from_nanos(20), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    proptest! {
        /// Popping must yield a non-decreasing time sequence, and events
        /// sharing a timestamp must come out in insertion order.
        #[test]
        fn prop_total_order(times in proptest::collection::vec(0u64..1_000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, t) in times.iter().enumerate() {
                q.schedule_at(SimTime::from_nanos(*t), i);
            }
            let mut last_time = SimTime::ZERO;
            let mut last_idx_at_time: Option<usize> = None;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last_time);
                if t == last_time {
                    if let Some(prev) = last_idx_at_time {
                        prop_assert!(idx > prev, "stability violated");
                    }
                }
                last_time = t;
                last_idx_at_time = Some(idx);
            }
        }

        /// The queue drains exactly the number of scheduled events.
        #[test]
        fn prop_conservation(times in proptest::collection::vec(0u64..100, 0..64)) {
            let mut q = EventQueue::new();
            for t in &times {
                q.schedule_at(SimTime::from_nanos(*t), ());
            }
            prop_assert_eq!(q.len(), times.len());
            let mut n = 0usize;
            while q.pop().is_some() { n += 1; }
            prop_assert_eq!(n, times.len());
            prop_assert!(q.is_empty());
        }
    }
}
