//! Simulator invariant auditor: typed violation reports instead of panics.
//!
//! The simulator maintains several conservation laws that no legal event
//! sequence may break — admission credits must balance across drops and
//! retransmits, every byte accepted by an egress port must eventually leave
//! it, simulated time never runs backwards, and FIFO channels never let a
//! later message overtake an earlier one. Historically these were spot-checked
//! by `debug_assert!`s, which abort the process and take every sibling sweep
//! cell down with them.
//!
//! This module provides the reporting half of the audit layer: a typed
//! [`AuditReport`] carrying each [`AuditViolation`] plus the tail of the event
//! trace leading up to it. The checking half lives behind the `audit` cargo
//! feature inside [`crate::fabric`] and `anp-simmpi`; when the feature is off
//! the hooks compile to nothing and runtime cost is zero. The types here are
//! always compiled so that callers (the experiment layer, the `anp audit`
//! CLI) never need `cfg` gates of their own.

use crate::time::SimTime;
use std::collections::VecDeque;
use std::fmt;

/// How many trace lines the auditor retains (the "flight recorder" depth).
pub const TRACE_TAIL_LEN: usize = 32;

/// Cap on recorded violations; beyond this only the count grows. A single
/// broken conservation law can trip on every subsequent event, and the first
/// few occurrences carry all the diagnostic value.
pub const MAX_VIOLATIONS: usize = 64;

/// Which conservation invariant a violation broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// Admission credits went out of balance: a release without a matching
    /// acquire, more credits in use than the pool's capacity, or credits
    /// still held after the fabric drained to quiescence.
    CreditConservation,
    /// An egress port transmitted bytes it never accepted, or finished a run
    /// still holding accepted-but-untransmitted bytes.
    EgressByteConservation,
    /// The event clock moved backwards between consecutively popped events.
    TimeMonotonicity,
    /// A later eager message on a (source, destination, tag) channel was
    /// delivered before an earlier one (FIFO non-overtaking).
    FifoOrdering,
    /// The reliability layer's per-pair sequence window regressed: the
    /// delivery cursor moved backwards or a buffered sequence number fell
    /// below it.
    SeqWindow,
}

impl fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InvariantKind::CreditConservation => "credit-conservation",
            InvariantKind::EgressByteConservation => "egress-byte-conservation",
            InvariantKind::TimeMonotonicity => "time-monotonicity",
            InvariantKind::FifoOrdering => "fifo-ordering",
            InvariantKind::SeqWindow => "seq-window",
        };
        f.write_str(name)
    }
}

/// One detected invariant violation.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditViolation {
    /// Which invariant broke.
    pub kind: InvariantKind,
    /// Simulated time at which the check tripped.
    pub at: SimTime,
    /// Human-readable specifics (which switch, which pair, the counts).
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] t={:?}: {}", self.kind, self.at, self.detail)
    }
}

/// The auditor's verdict for one run: every violation found, the tail of the
/// event trace leading up to the last one, and how many events were audited.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct AuditReport {
    /// Violations in detection order (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<AuditViolation>,
    /// Violations detected beyond the cap (not individually recorded).
    pub suppressed: u64,
    /// The last [`TRACE_TAIL_LEN`] event descriptions before the report was
    /// taken, oldest first. Empty unless the auditor recorded a trace.
    pub trace_tail: Vec<String>,
    /// Number of events the auditor inspected.
    pub events_audited: u64,
}

impl AuditReport {
    /// `true` when no invariant tripped.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty() && self.suppressed == 0
    }

    /// Total violations detected, including suppressed ones.
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64 + self.suppressed
    }

    /// Folds another report into this one (fabric + world layers of the same
    /// run). The longer trace tail wins; event counts take the maximum since
    /// both layers observe the same event stream.
    pub fn merge(&mut self, other: AuditReport) {
        for v in other.violations {
            if self.violations.len() < MAX_VIOLATIONS {
                self.violations.push(v);
            } else {
                self.suppressed += 1;
            }
        }
        self.suppressed += other.suppressed;
        if other.trace_tail.len() > self.trace_tail.len() {
            self.trace_tail = other.trace_tail;
        }
        self.events_audited = self.events_audited.max(other.events_audited);
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            return write!(
                f,
                "audit clean: {} events, no invariant violations",
                self.events_audited
            );
        }
        writeln!(
            f,
            "audit FAILED: {} violation(s) over {} events",
            self.violation_count(),
            self.events_audited
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        if self.suppressed > 0 {
            writeln!(f, "  ... and {} more (suppressed)", self.suppressed)?;
        }
        if !self.trace_tail.is_empty() {
            writeln!(f, "  event trace tail (oldest first):")?;
            for line in &self.trace_tail {
                writeln!(f, "    {line}")?;
            }
        }
        Ok(())
    }
}

/// `true` when the crate was compiled with the `audit` feature, i.e. the
/// invariant hooks exist at all. Callers can use this to warn that a
/// requested audit is compiled out rather than silently reporting "clean".
pub const fn audit_compiled() -> bool {
    cfg!(feature = "audit")
}

/// Shared flight recorder used by the fabric- and world-level checkers:
/// a bounded event-trace ring plus the accumulated violations.
///
/// Exposed so `anp-simmpi` can reuse it; not intended for direct use by
/// experiment code, which should only consume [`AuditReport`]s.
#[derive(Debug, Default)]
pub struct AuditLog {
    trace: VecDeque<String>,
    violations: Vec<AuditViolation>,
    suppressed: u64,
    events: u64,
}

impl AuditLog {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one event description in the trace ring and counts it.
    pub fn note_event(&mut self, desc: String) {
        if self.trace.len() == TRACE_TAIL_LEN {
            self.trace.pop_front();
        }
        self.trace.push_back(desc);
        self.events += 1;
    }

    /// Counts an audited event without recording a trace line (used by the
    /// fabric layer when the world layer already owns the trace).
    pub fn count_event(&mut self) {
        self.events += 1;
    }

    /// Records a violation (capped at [`MAX_VIOLATIONS`]).
    pub fn violate(&mut self, kind: InvariantKind, at: SimTime, detail: String) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(AuditViolation { kind, at, detail });
        } else {
            self.suppressed += 1;
        }
    }

    /// `true` if any violation has been recorded so far.
    pub fn has_violations(&self) -> bool {
        !self.violations.is_empty() || self.suppressed > 0
    }

    /// Drains the recorder into a report, resetting it for further use.
    pub fn take_report(&mut self) -> AuditReport {
        AuditReport {
            violations: std::mem::take(&mut self.violations),
            suppressed: std::mem::take(&mut self.suppressed),
            trace_tail: std::mem::take(&mut self.trace).into(),
            events_audited: std::mem::take(&mut self.events),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_report_displays_event_count() {
        let mut log = AuditLog::new();
        log.note_event("ev-1".into());
        log.note_event("ev-2".into());
        let report = log.take_report();
        assert!(report.is_clean());
        assert_eq!(report.events_audited, 2);
        assert_eq!(report.trace_tail, vec!["ev-1", "ev-2"]);
        assert!(report.to_string().contains("audit clean: 2 events"));
    }

    #[test]
    fn violations_carry_kind_time_and_trace_tail() {
        let mut log = AuditLog::new();
        for i in 0..40 {
            log.note_event(format!("ev-{i}"));
        }
        log.violate(
            InvariantKind::CreditConservation,
            SimTime::from_nanos(17),
            "release without acquire at switch 0 class 1".into(),
        );
        let report = log.take_report();
        assert!(!report.is_clean());
        assert_eq!(report.violation_count(), 1);
        assert_eq!(report.violations[0].kind, InvariantKind::CreditConservation);
        // Ring keeps only the newest TRACE_TAIL_LEN entries.
        assert_eq!(report.trace_tail.len(), TRACE_TAIL_LEN);
        assert_eq!(report.trace_tail.first().unwrap(), "ev-8");
        assert_eq!(report.trace_tail.last().unwrap(), "ev-39");
        let shown = report.to_string();
        assert!(shown.contains("audit FAILED"));
        assert!(shown.contains("credit-conservation"));
        assert!(shown.contains("release without acquire"));
    }

    #[test]
    fn violation_flood_is_capped_not_unbounded() {
        let mut log = AuditLog::new();
        for i in 0..(MAX_VIOLATIONS + 10) {
            log.violate(
                InvariantKind::SeqWindow,
                SimTime::from_nanos(i as u64),
                format!("violation {i}"),
            );
        }
        let report = log.take_report();
        assert_eq!(report.violations.len(), MAX_VIOLATIONS);
        assert_eq!(report.suppressed, 10);
        assert_eq!(report.violation_count(), (MAX_VIOLATIONS + 10) as u64);
        assert!(report.to_string().contains("10 more (suppressed)"));
    }

    #[test]
    fn merge_folds_violations_and_keeps_longer_trace() {
        let mut fabric_log = AuditLog::new();
        fabric_log.count_event();
        fabric_log.violate(
            InvariantKind::EgressByteConservation,
            SimTime::from_nanos(5),
            "port 3 held 128 bytes at quiescence".into(),
        );
        let mut world_log = AuditLog::new();
        world_log.note_event("step-1".into());
        world_log.note_event("step-2".into());
        world_log.violate(
            InvariantKind::FifoOrdering,
            SimTime::from_nanos(9),
            "pair (0,1) tag 7 overtaken".into(),
        );
        let mut merged = world_log.take_report();
        merged.merge(fabric_log.take_report());
        assert_eq!(merged.violation_count(), 2);
        assert_eq!(merged.trace_tail.len(), 2);
        assert_eq!(merged.events_audited, 2);
    }

    #[test]
    fn take_report_resets_the_recorder() {
        let mut log = AuditLog::new();
        log.note_event("ev".into());
        log.violate(
            InvariantKind::TimeMonotonicity,
            SimTime::from_nanos(1),
            "clock moved backwards".into(),
        );
        let first = log.take_report();
        assert!(!first.is_clean());
        let second = log.take_report();
        assert!(second.is_clean());
        assert_eq!(second.events_audited, 0);
        assert!(second.trace_tail.is_empty());
    }
}
