//! Small utilities: a fast identity hasher for dense integer keys.

use std::hash::{BuildHasherDefault, Hasher};

/// A trivial hasher for keys that are already well-distributed integers
/// (sequential message ids). SipHash's HashDoS resistance buys nothing in a
/// closed simulation, and message-id lookups sit on the hot path of every
/// packet delivery.
#[derive(Default)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fold arbitrary bytes; only used if a non-integer key sneaks in.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ u64::from(b);
        }
    }

    fn write_u64(&mut self, i: u64) {
        // Multiply by a large odd constant to spread sequential ids across
        // buckets (Fibonacci hashing).
        self.0 = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_u32(&mut self, i: u32) {
        self.write_u64(u64::from(i));
    }
}

/// `BuildHasher` for [`IdHasher`].
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A `HashMap` keyed by dense integer ids.
// anp-lint: allow(D001) — IdBuildHasher is deterministic (no RandomState); iteration order is a pure function of the insertion sequence
pub type IdHashMap<K, V> = std::collections::HashMap<K, V, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: IdHashMap<u64, &str> = IdHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&"x"));
        }
        assert_eq!(m.get(&1000), None);
    }

    #[test]
    fn sequential_ids_spread() {
        // Fibonacci hashing must not map sequential ids to sequential
        // hashes (that would collide after masking in small tables).
        let h = |i: u64| {
            let mut hasher = IdHasher::default();
            hasher.write_u64(i);
            hasher.finish()
        };
        assert_ne!(h(1).wrapping_sub(h(0)), 1);
        assert_ne!(h(2).wrapping_sub(h(1)), 1);
    }
}
