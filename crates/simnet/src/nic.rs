//! Per-node network interface: per-flow injection queues drained
//! round-robin at link bandwidth, gated by switch admission credits
//! (back-pressure).
//!
//! Flows model InfiniBand queue pairs: each sending process gets its own
//! send queue and the NIC arbitrates between active queues packet by
//! packet. Without this, one process with a deep backlog (CompressionB
//! queues megabytes) would head-of-line-block every other process on the
//! node — most damagingly the latency probes, whose single packet would
//! measure the *local* backlog instead of the switch.

use std::collections::VecDeque;

use crate::packet::Packet;
use crate::time::SimDuration;
use crate::util::IdHashMap;

/// Identifies a sending context (one rank / queue pair) for NIC
/// arbitration.
pub type FlowId = u64;

/// The transmit side of one node's NIC.
///
/// Receiving needs no state: delivered packets are handed straight to the
/// upper layer by the fabric.
#[derive(Debug, Default)]
pub struct Nic {
    /// Per-flow FIFO queues.
    flows: IdHashMap<FlowId, VecDeque<Packet>>,
    /// Round-robin order of flows with queued packets.
    rr: VecDeque<FlowId>,
    /// Packets queued across all flows.
    queued: usize,
    /// Packet currently being serialized onto the wire, if any.
    tx: Option<Packet>,
    /// True while this NIC is parked in the switch's back-pressure waiter
    /// list (prevents double-parking).
    pub(crate) waiting_for_credit: bool,
}

impl Nic {
    /// Queues a packet on `flow`'s send queue.
    pub fn enqueue(&mut self, flow: FlowId, pkt: Packet) {
        let q = self.flows.entry(flow).or_default();
        if q.is_empty() {
            self.rr.push_back(flow);
        }
        q.push_back(pkt);
        self.queued += 1;
    }

    /// True if the NIC could start a transmission: idle, not parked, and
    /// has something to send.
    pub fn can_start(&self) -> bool {
        self.tx.is_none() && !self.waiting_for_credit && self.queued > 0
    }

    /// Begins serializing the next packet, taken round-robin across active
    /// flows (credit must already be held). Returns the serialization
    /// duration; the caller schedules TX-done.
    pub fn start_tx(&mut self, bytes_per_sec: u64) -> SimDuration {
        debug_assert!(self.tx.is_none(), "NIC started while busy");
        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
        let flow = self.rr.pop_front().expect("start_tx on empty NIC queue");
        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
        let q = self.flows.get_mut(&flow).expect("flow in rr has a queue");
        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
        let pkt = q.pop_front().expect("flow in rr is non-empty");
        if q.is_empty() {
            self.flows.remove(&flow);
        } else {
            // One packet per turn: re-queue the flow at the back.
            self.rr.push_back(flow);
        }
        self.queued -= 1;
        let d = SimDuration::serialization(pkt.bytes, bytes_per_sec);
        self.tx = Some(pkt);
        d
    }

    /// Completes the in-flight transmission, returning the packet now on
    /// the wire toward the switch.
    pub fn tx_done(&mut self) -> Packet {
        self.tx
            .take()
            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
            .expect("NIC tx_done with no packet in flight")
    }

    /// Packets queued (not counting one in flight).
    pub fn backlog(&self) -> usize {
        self.queued
    }

    /// Number of flows with queued packets.
    pub fn active_flows(&self) -> usize {
        self.rr.len()
    }

    /// True if a packet is currently being serialized.
    pub fn is_transmitting(&self) -> bool {
        self.tx.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageId, NodeId};
    use crate::time::SimTime;

    fn pkt(msg: u64, bytes: u64) -> Packet {
        Packet {
            msg: MessageId(msg),
            index: 0,
            last: true,
            src: NodeId(0),
            dst: NodeId(1),
            bytes,
            created: SimTime::ZERO,
        }
    }

    #[test]
    fn nic_lifecycle() {
        let mut nic = Nic::default();
        assert!(!nic.can_start());
        nic.enqueue(1, pkt(1, 1000));
        nic.enqueue(1, pkt(2, 500));
        assert!(nic.can_start());
        assert_eq!(nic.backlog(), 2);
        assert_eq!(nic.active_flows(), 1);

        let d = nic.start_tx(1_000_000_000);
        assert_eq!(d, SimDuration::from_nanos(1000));
        assert!(nic.is_transmitting());
        assert!(!nic.can_start(), "busy NIC cannot start another tx");

        let sent = nic.tx_done();
        assert_eq!(sent.bytes, 1000);
        assert!(nic.can_start());
        assert_eq!(nic.backlog(), 1);
    }

    #[test]
    fn single_flow_is_fifo() {
        let mut nic = Nic::default();
        for i in 0..5 {
            nic.enqueue(7, pkt(i, 100));
        }
        for i in 0..5 {
            nic.start_tx(1_000_000_000);
            assert_eq!(nic.tx_done().msg, MessageId(i));
        }
    }

    #[test]
    fn flows_interleave_round_robin() {
        let mut nic = Nic::default();
        // Flow 1 has a deep backlog; flow 2 has a single probe packet
        // enqueued later. Round-robin must send the probe second, not
        // fifth.
        for i in 0..4 {
            nic.enqueue(1, pkt(i, 100));
        }
        nic.enqueue(2, pkt(99, 100));
        let order: Vec<u64> = (0..5)
            .map(|_| {
                nic.start_tx(1_000_000_000);
                nic.tx_done().msg.0
            })
            .collect();
        assert_eq!(order, vec![0, 99, 1, 2, 3]);
    }

    #[test]
    fn three_flows_share_fairly() {
        let mut nic = Nic::default();
        for f in 0..3u64 {
            for i in 0..2 {
                nic.enqueue(f, pkt(f * 10 + i, 100));
            }
        }
        let order: Vec<u64> = (0..6)
            .map(|_| {
                nic.start_tx(1_000_000_000);
                nic.tx_done().msg.0
            })
            .collect();
        assert_eq!(order, vec![0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn parked_nic_cannot_start() {
        let mut nic = Nic::default();
        nic.enqueue(0, pkt(1, 100));
        nic.waiting_for_credit = true;
        assert!(!nic.can_start());
        nic.waiting_for_credit = false;
        assert!(nic.can_start());
    }

    #[test]
    #[should_panic(expected = "empty NIC queue")]
    fn start_on_empty_queue_panics() {
        let mut nic = Nic::default();
        nic.start_tx(1_000_000_000);
    }
}
