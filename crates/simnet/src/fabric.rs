//! The fabric: NICs, switches and wires, glued together by network events.
//!
//! The fabric does not own the event loop. A composer (usually
//! `anp-simmpi`'s `World`) owns an [`EventQueue`] whose event type embeds
//! [`NetEvent`]; it forwards popped network events to [`Fabric::handle`] and
//! reacts to the returned [`Notice`]s. This keeps one global clock across
//! the network and the software running on it.
//!
//! Two topologies share the same machinery ([`Topology`]):
//!
//! * **SingleSwitch** — the paper's setting: every node on one switch.
//! * **FatTree** — a two-level tree (Cab's real shape): leaf switches
//!   hosting the nodes, fully meshed to spine switches. Cross-leaf packets
//!   take three switch hops (src leaf → spine → dst leaf) with the spine
//!   chosen statically by destination (`dst % spines`).
//!
//! Packet life cycle (remote traffic):
//!
//! ```text
//! send_message → NIC per-flow queue → \[credit gate\] → NIC serialize → wire
//!   → routing stage (parallel servers) → egress FIFO → [next-hop credit]
//!   → egress serialize → wire → … → Deliver
//! ```
//!
//! Flow control is credit-based per switch, with *separate pools per
//! admission class* — packets entering a leaf from its nodes draw from the
//! up-pool, packets entering from a spine draw from the down-pool. Down
//! traffic drains to nodes unconditionally, so the credit-dependency graph
//! is acyclic and multi-hop back-pressure cannot deadlock.
//!
//! Intra-node messages bypass the network entirely over a per-node local
//! channel — they must not load the switches, since the paper's
//! methodology measures switch contention only.

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::SeedableRng;

use rand::Rng;

use crate::audit::AuditReport;
#[cfg(feature = "audit")]
use crate::audit::{AuditLog, InvariantKind};
use crate::config::{ConfigError, SwitchConfig, Topology};
use crate::event::EventQueue;
use crate::fault::{LinkId, LinkState, ServerFaultState};
use crate::nic::Nic;
use crate::packet::{segment_sizes, MessageId, NodeId, Packet};
use crate::stats::{FabricStats, SwitchStats};
use crate::switch::{CentralStage, CreditPool, EgressPort};
use crate::time::{SimDuration, SimTime};
use crate::util::IdHashMap;

/// Events internal to the network. Compose into a larger event type via
/// `From<NetEvent>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetEvent {
    /// A NIC finished serializing a packet onto the node→switch wire.
    NicTxDone {
        /// The transmitting node.
        node: NodeId,
    },
    /// A packet reached a switch's routing stage.
    SwitchArrive {
        /// The switch index.
        sw: u32,
        /// The arriving packet.
        packet: Packet,
    },
    /// A routing server finished servicing a packet.
    ServiceDone {
        /// The switch index.
        sw: u32,
        /// The routed packet.
        packet: Packet,
        /// When the packet arrived at the routing stage.
        arrived: SimTime,
    },
    /// An egress port finished serializing a packet onto its wire.
    EgressTxDone {
        /// The switch index.
        sw: u32,
        /// The egress port within the switch.
        port: u32,
    },
    /// A packet arrived at its destination NIC.
    Deliver {
        /// The delivered packet.
        packet: Packet,
    },
    /// All packets of an intra-node message finished local serialization
    /// (send-side completion for local traffic).
    LocalInjectDone {
        /// The locally-sent message.
        msg: MessageId,
    },
    /// A scheduled fault window opens or closes on a link (only emitted
    /// when a [`FaultPlan`](crate::FaultPlan) declares down windows and
    /// [`Fabric::prime_fault_events`] was called).
    LinkStateChange {
        /// The affected link.
        link: LinkId,
        /// `true` when the link comes back up.
        up: bool,
    },
}

/// Upcalls from the fabric to the layer above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Notice {
    /// The last packet of a message left the source NIC: an eager send
    /// completes locally at this point.
    MessageInjected {
        /// The injected message.
        msg: MessageId,
        /// The sending node.
        src: NodeId,
    },
    /// A packet arrived at its destination (telemetry; message-level callers
    /// can ignore it).
    PacketDelivered {
        /// The delivered packet.
        packet: Packet,
    },
    /// Every packet of the message has arrived at the destination node.
    MessageDelivered {
        /// The completed message.
        msg: MessageId,
        /// Originating node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Message payload size.
        bytes: u64,
    },
    /// A packet was lost to an injected fault while crossing `link`.
    PacketDropped {
        /// The lost packet.
        packet: Packet,
        /// The link that ate it.
        link: LinkId,
    },
    /// At least one packet of the message was dropped, and all its other
    /// packets have finished (delivered or dropped): the message will
    /// never complete. A reliability layer above may retransmit.
    MessageDropped {
        /// The incomplete message.
        msg: MessageId,
        /// Originating node.
        src: NodeId,
        /// Destination node.
        dst: NodeId,
        /// Message payload size.
        bytes: u64,
    },
    /// A scheduled link-down window opened.
    LinkDown {
        /// The failed link.
        link: LinkId,
    },
    /// A scheduled link-down window closed.
    LinkUp {
        /// The recovered link.
        link: LinkId,
    },
}

#[derive(Debug)]
struct MsgProgress {
    src: NodeId,
    dst: NodeId,
    bytes: u64,
    deliver_remaining: u32,
    /// Packets of this message lost to injected faults.
    dropped: u32,
}

/// Resolved per-link fault state plus the dedicated loss RNG. Present
/// only when the configured [`FaultPlan`](crate::FaultPlan) is non-empty,
/// so fault-free fabrics pay nothing and draw nothing.
struct FaultLayer {
    links: Vec<LinkState>,
    rng: StdRng,
}

/// Where a switch egress port's wire leads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NextHop {
    /// Down to a compute node.
    Node(NodeId),
    /// To another switch, drawing from the given admission class there.
    Switch {
        /// Destination switch index.
        sw: u32,
        /// Admission class at the destination switch.
        class: usize,
    },
}

/// Who is parked waiting for a credit of some (switch, class).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Waiter {
    Nic(NodeId),
    Egress { sw: u32, port: u32 },
}

/// One switch: routing stage, egress ports, and its admission pools
/// (pool 0 = up/main class, pool 1 = down class on fat-tree leaves).
struct SwitchUnit {
    central: CentralStage,
    egress: Vec<EgressPort>,
    pools: Vec<CreditPool>,
    waiters: Vec<VecDeque<Waiter>>,
}

/// Static description of the switch arrangement.
#[derive(Debug, Clone, Copy)]
struct Routes {
    leaves: u32,
    spines: u32,
    nodes_per_leaf: u32,
}

impl Routes {
    fn from_config(cfg: &SwitchConfig) -> Self {
        match cfg.topology {
            Topology::SingleSwitch => Routes {
                leaves: 1,
                spines: 0,
                nodes_per_leaf: cfg.nodes,
            },
            Topology::FatTree { leaves, spines } => Routes {
                leaves,
                spines,
                nodes_per_leaf: cfg.nodes / leaves,
            },
        }
    }

    fn switch_count(&self) -> u32 {
        self.leaves + self.spines
    }

    fn is_spine(&self, sw: u32) -> bool {
        sw >= self.leaves
    }

    fn leaf_of(&self, node: NodeId) -> u32 {
        node.0 / self.nodes_per_leaf
    }

    /// Ports of switch `sw`: leaves expose `nodes_per_leaf` down ports then
    /// `spines` up ports; spines expose `leaves` down ports.
    fn port_count(&self, sw: u32) -> u32 {
        if self.is_spine(sw) {
            self.leaves
        } else {
            self.nodes_per_leaf + self.spines
        }
    }

    /// The deterministic spine carrying traffic for `dst`.
    fn spine_for(&self, dst: NodeId) -> u32 {
        self.leaves + dst.0 % self.spines
    }

    /// The egress port switch `sw` uses toward `dst`.
    fn route_port(&self, sw: u32, dst: NodeId) -> u32 {
        if self.is_spine(sw) {
            self.leaf_of(dst)
        } else if self.leaf_of(dst) == sw {
            dst.0 % self.nodes_per_leaf
        } else {
            self.nodes_per_leaf + (self.spine_for(dst) - self.leaves)
        }
    }

    /// What lies at the far end of (sw, port).
    fn next_hop(&self, sw: u32, port: u32) -> NextHop {
        if self.is_spine(sw) {
            // Down into a leaf: drawn from the leaf's down class.
            NextHop::Switch { sw: port, class: 1 }
        } else if port < self.nodes_per_leaf {
            NextHop::Node(NodeId(sw * self.nodes_per_leaf + port))
        } else {
            // Up into a spine.
            NextHop::Switch {
                sw: self.leaves + (port - self.nodes_per_leaf),
                class: 0,
            }
        }
    }

    /// The admission class a packet occupies at switch `sw`: up/main (0)
    /// when it entered from a node, down (1) when it entered from a spine.
    fn class_at(&self, sw: u32, pkt: &Packet) -> usize {
        if self.is_spine(sw) || self.leaf_of(pkt.src) == sw {
            0
        } else {
            1
        }
    }
}

/// The network fabric: one or more switches plus the node NICs.
pub struct Fabric {
    cfg: SwitchConfig,
    routes: Routes,
    nics: Vec<Nic>,
    switches: Vec<SwitchUnit>,
    /// Per-node time at which the local (shared-memory) channel frees up.
    local_busy_until: Vec<SimTime>,
    rng: StdRng,
    next_msg: u64,
    inflight: IdHashMap<MessageId, MsgProgress>,
    stats: FabricStats,
    faults: Option<FaultLayer>,
    /// Invariant auditor state. `None` until [`Fabric::enable_audit`]; the
    /// field itself only exists when the `audit` feature is compiled in, so
    /// unaudited builds carry no state and no branches.
    #[cfg(feature = "audit")]
    audit: Option<Box<FabricAudit>>,
}

/// Shadow accounting for the fabric-level conservation invariants: per-port
/// egress byte ledgers plus the shared violation recorder. Boxed off the
/// `Fabric` hot path; allocated only when auditing is enabled at runtime.
#[cfg(feature = "audit")]
struct FabricAudit {
    log: AuditLog,
    /// Per (switch, port): `(bytes accepted into the FIFO, bytes transmitted
    /// out)`. Conservation demands `out ≤ in` always and `out == in` at
    /// quiescence.
    egress_bytes: Vec<Vec<(u64, u64)>>,
    /// Clock of the most recent audited event, for timestamps on checks that
    /// run outside the event loop (e.g. the final quiescence sweep).
    last_now: SimTime,
}

#[cfg(feature = "audit")]
impl FabricAudit {
    fn new(routes: &Routes) -> Self {
        FabricAudit {
            log: AuditLog::new(),
            egress_bytes: (0..routes.switch_count())
                .map(|sw| vec![(0u64, 0u64); routes.port_count(sw) as usize])
                .collect(),
            last_now: SimTime::ZERO,
        }
    }

    fn egress_accept(&mut self, sw: u32, port: u32, bytes: u64) {
        self.egress_bytes[sw as usize][port as usize].0 += bytes;
    }

    fn egress_transmit(&mut self, sw: u32, port: u32, bytes: u64, now: SimTime) {
        let (accepted, transmitted) = &mut self.egress_bytes[sw as usize][port as usize];
        *transmitted += bytes;
        if *transmitted > *accepted {
            let detail = format!(
                "egress (switch {sw}, port {port}) transmitted {transmitted} bytes \
                 but only accepted {accepted}"
            );
            self.log
                .violate(InvariantKind::EgressByteConservation, now, detail);
        }
    }
}

/// Maps a dense link index back to its [`LinkId`] (inverse of
/// [`Fabric::link_index`]).
fn link_from_index(nodes: usize, switch_count: usize, idx: usize) -> LinkId {
    if idx < nodes {
        LinkId::NodeUp(NodeId(idx as u32))
    } else if idx < 2 * nodes {
        LinkId::NodeDown(NodeId((idx - nodes) as u32))
    } else {
        let t = idx - 2 * nodes;
        LinkId::Trunk {
            from: (t / switch_count) as u32,
            to: (t % switch_count) as u32,
        }
    }
}

impl Fabric {
    /// Builds a fabric from a validated configuration.
    ///
    /// # Panics
    /// Panics if the configuration fails [`SwitchConfig::validate`]. Use
    /// [`Fabric::try_new`] to handle invalid configurations gracefully.
    pub fn new(cfg: SwitchConfig) -> Self {
        match Fabric::try_new(cfg) {
            Ok(f) => f,
            Err(e) => panic!("invalid SwitchConfig: {e}"),
        }
    }

    /// Builds a fabric, reporting configuration problems as a typed
    /// [`ConfigError`] instead of panicking.
    pub fn try_new(cfg: SwitchConfig) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let routes = Routes::from_config(&cfg);
        let mut switches: Vec<SwitchUnit> = (0..routes.switch_count())
            .map(|sw| {
                let classes = if routes.is_spine(sw) || routes.spines == 0 {
                    1
                } else {
                    2
                };
                SwitchUnit {
                    central: CentralStage::new(cfg.service.clone(), cfg.route_servers as usize),
                    egress: (0..routes.port_count(sw))
                        .map(|_| EgressPort::default())
                        .collect(),
                    pools: (0..classes)
                        .map(|_| CreditPool::new(cfg.switch_capacity))
                        .collect(),
                    waiters: (0..classes).map(|_| VecDeque::new()).collect(),
                }
            })
            .collect();
        let faults = if cfg.fault_plan.is_none() {
            None
        } else {
            let nodes = cfg.nodes as usize;
            let sc = routes.switch_count() as usize;
            let mut links = vec![LinkState::nominal(); 2 * nodes + sc * sc];
            for (idx, state) in links.iter_mut().enumerate() {
                let link = link_from_index(nodes, sc, idx);
                for lf in &cfg.fault_plan.link_faults {
                    if lf.links.matches(link) {
                        state.apply(lf);
                    }
                }
            }
            for sf in &cfg.fault_plan.server_faults {
                switches[sf.sw as usize]
                    .central
                    .set_fault(ServerFaultState::from_fault(sf));
            }
            Some(FaultLayer {
                links,
                rng: StdRng::seed_from_u64(cfg.fault_plan.seed),
            })
        };
        Ok(Fabric {
            routes,
            nics: (0..cfg.nodes as usize).map(|_| Nic::default()).collect(),
            switches,
            local_busy_until: vec![SimTime::ZERO; cfg.nodes as usize],
            rng: StdRng::seed_from_u64(cfg.seed),
            next_msg: 0,
            inflight: IdHashMap::default(),
            stats: FabricStats::default(),
            faults,
            cfg,
            #[cfg(feature = "audit")]
            audit: None,
        })
    }

    /// Turns on the invariant auditor for this fabric. No-op unless the
    /// crate was compiled with the `audit` feature (check with
    /// [`audit_compiled`](crate::audit::audit_compiled)), so callers never
    /// need feature gates of their own.
    pub fn enable_audit(&mut self) {
        #[cfg(feature = "audit")]
        if self.audit.is_none() {
            self.audit = Some(Box::new(FabricAudit::new(&self.routes)));
        }
    }

    /// `true` when the auditor is compiled in and enabled.
    pub fn audit_enabled(&self) -> bool {
        #[cfg(feature = "audit")]
        {
            self.audit.is_some()
        }
        #[cfg(not(feature = "audit"))]
        {
            false
        }
    }

    /// Runs the end-of-run conservation sweep and drains the auditor's
    /// findings. Returns `None` when auditing is off or compiled out.
    pub fn take_audit_report(&mut self) -> Option<AuditReport> {
        #[cfg(feature = "audit")]
        {
            self.audit.as_ref()?;
            self.audit_quiescence_check();
            Some(
                self.audit
                    .as_deref_mut()
                    // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
                    .expect("checked above")
                    .log
                    .take_report(),
            )
        }
        #[cfg(not(feature = "audit"))]
        {
            None
        }
    }

    /// At any quiescent point every admission credit must be back in its
    /// pool and every egress port's byte ledger must balance — a packet
    /// cannot be "gone" while still holding a credit or occupying a FIFO.
    #[cfg(feature = "audit")]
    fn audit_quiescence_check(&mut self) {
        if self.audit.is_none() || !self.is_quiescent() {
            return;
        }
        // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
        let audit = self.audit.as_deref_mut().expect("checked above");
        let now = audit.last_now;
        for (sw, unit) in self.switches.iter().enumerate() {
            for (class, pool) in unit.pools.iter().enumerate() {
                if pool.in_use() != 0 {
                    let detail = format!(
                        "{} credit(s) still held at quiescence (switch {sw}, class {class})",
                        pool.in_use()
                    );
                    audit
                        .log
                        .violate(InvariantKind::CreditConservation, now, detail);
                }
            }
        }
        for (sw, ports) in audit.egress_bytes.iter().enumerate() {
            for (port, (accepted, transmitted)) in ports.iter().enumerate() {
                if accepted != transmitted {
                    let detail = format!(
                        "egress (switch {sw}, port {port}) accepted {accepted} bytes \
                         but transmitted {transmitted} at quiescence"
                    );
                    audit
                        .log
                        .violate(InvariantKind::EgressByteConservation, now, detail);
                }
            }
        }
    }

    /// Dense index of `link` into the fault-state table.
    fn link_index(&self, link: LinkId) -> usize {
        let nodes = self.cfg.nodes as usize;
        match link {
            LinkId::NodeUp(node) => node.index(),
            LinkId::NodeDown(node) => nodes + node.index(),
            LinkId::Trunk { from, to } => {
                2 * nodes + from as usize * self.routes.switch_count() as usize + to as usize
            }
        }
    }

    /// Serialization bandwidth of `link` after any fault derating.
    fn link_bandwidth_of(&self, link: LinkId) -> u64 {
        match &self.faults {
            Some(f) => {
                let factor = f.links[self.link_index(link)].bandwidth_factor;
                if factor < 1.0 {
                    ((self.cfg.link_bandwidth as f64 * factor) as u64).max(1)
                } else {
                    self.cfg.link_bandwidth
                }
            }
            None => self.cfg.link_bandwidth,
        }
    }

    /// Propagation delay of `link` including any fault-added latency.
    fn wire_delay(&self, link: LinkId) -> SimDuration {
        match &self.faults {
            Some(f) => self.cfg.wire_latency + f.links[self.link_index(link)].extra_latency,
            None => self.cfg.wire_latency,
        }
    }

    /// Decides whether a packet entering `link` at `now` is lost to an
    /// injected fault, counting the drop if so. Fault-free fabrics always
    /// return `false` without touching any RNG.
    fn link_drops(&mut self, link: LinkId, now: SimTime) -> bool {
        let idx = self.link_index(link);
        let Some(f) = &mut self.faults else {
            return false;
        };
        let state = &mut f.links[idx];
        if state.never_drops() {
            return false;
        }
        let dropped = state.down_at(now) || (state.loss > 0.0 && f.rng.gen::<f64>() < state.loss);
        if dropped {
            state.drops += 1;
        }
        dropped
    }

    /// Accounts a fault-dropped packet: per-message progress, fabric
    /// counters, and the [`Notice::PacketDropped`] /
    /// [`Notice::MessageDropped`] upcalls.
    fn drop_packet(&mut self, pkt: Packet, link: LinkId, out: &mut Vec<Notice>) {
        self.stats.packets_dropped += 1;
        out.push(Notice::PacketDropped { packet: pkt, link });
        let finished = {
            let prog = self
                .inflight
                .get_mut(&pkt.msg)
                // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                .expect("drop for unknown message");
            prog.dropped += 1;
            prog.deliver_remaining -= 1;
            prog.deliver_remaining == 0
        };
        if finished {
            let prog = self
                .inflight
                .remove(&pkt.msg)
                // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
                .expect("present: checked above");
            self.stats.messages_dropped += 1;
            out.push(Notice::MessageDropped {
                msg: pkt.msg,
                src: prog.src,
                dst: prog.dst,
                bytes: prog.bytes,
            });
        }
    }

    /// Schedules [`NetEvent::LinkStateChange`] events for every declared
    /// down window, so the composer receives [`Notice::LinkDown`] /
    /// [`Notice::LinkUp`] at the window edges. Call once after creating
    /// the event queue (`anp-simmpi`'s `World` does this automatically).
    /// Without priming, drops still happen; only the notices are missed.
    pub fn prime_fault_events<E: From<NetEvent>>(&self, q: &mut EventQueue<E>) {
        let Some(f) = &self.faults else { return };
        let nodes = self.cfg.nodes as usize;
        let sc = self.routes.switch_count() as usize;
        for (idx, state) in f.links.iter().enumerate() {
            let link = link_from_index(nodes, sc, idx);
            for w in &state.down {
                q.schedule_at(
                    w.from.max(q.now()),
                    NetEvent::LinkStateChange { link, up: false }.into(),
                );
                q.schedule_at(
                    w.until.max(q.now()),
                    NetEvent::LinkStateChange { link, up: true }.into(),
                );
            }
        }
    }

    /// Packets dropped on `link` so far (0 for fault-free fabrics).
    pub fn drops_on(&self, link: LinkId) -> u64 {
        match &self.faults {
            Some(f) => f.links[self.link_index(link)].drops,
            None => 0,
        }
    }

    /// The configuration this fabric was built from.
    pub fn config(&self) -> &SwitchConfig {
        &self.cfg
    }

    /// Number of attached nodes.
    pub fn nodes(&self) -> u32 {
        self.cfg.nodes
    }

    /// Number of switches (1 for the single-switch topology).
    pub fn switch_count(&self) -> u32 {
        self.routes.switch_count()
    }

    /// Ground-truth telemetry of switch 0 (the only switch in the paper's
    /// topology; the first leaf of a fat tree). Tests/benches only — the
    /// measurement methodology must rely on probe latencies instead.
    pub fn switch_stats(&self) -> &SwitchStats {
        self.central_stats(0)
    }

    /// Ground-truth telemetry of a specific switch.
    pub fn central_stats(&self, sw: u32) -> &SwitchStats {
        self.switches[sw as usize].central.stats()
    }

    /// Fabric-level counters.
    pub fn stats(&self) -> &FabricStats {
        &self.stats
    }

    /// Opens a fresh telemetry window on every switch at `now`.
    pub fn reset_switch_stats(&mut self, now: SimTime) {
        for unit in &mut self.switches {
            unit.central.reset_stats(now);
        }
    }

    /// Submits a message for transmission. Returns its id; completion is
    /// signalled via [`Notice::MessageInjected`] / [`Notice::MessageDelivered`]
    /// from subsequent [`Fabric::handle`] calls.
    ///
    /// `flow` identifies the sending context (a rank / queue pair): the
    /// source NIC arbitrates round-robin between flows so one sender's
    /// backlog cannot head-of-line-block another's traffic.
    pub fn send_message<E: From<NetEvent>>(
        &mut self,
        q: &mut EventQueue<E>,
        flow: u64,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> MessageId {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(src.index() < self.nics.len(), "source node out of range");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            dst.index() < self.nics.len(),
            "destination node out of range"
        );
        let id = MessageId(self.next_msg);
        self.next_msg += 1;
        self.stats.messages_sent += 1;

        let sizes = segment_sizes(bytes, self.cfg.mtu);
        let n_pkts = sizes.len() as u32;
        self.inflight.insert(
            id,
            MsgProgress {
                src,
                dst,
                bytes,
                deliver_remaining: n_pkts,
                dropped: 0,
            },
        );

        if src == dst {
            // Local path: sequential serialization on the node's local
            // channel, then a fixed hop latency. No switch involvement.
            self.stats.local_messages += 1;
            let now = q.now();
            let mut busy = self.local_busy_until[src.index()].max(now);
            for (i, sz) in sizes.iter().enumerate() {
                busy += crate::time::SimDuration::serialization(*sz, self.cfg.local_bandwidth);
                let pkt = Packet {
                    msg: id,
                    index: i as u32,
                    last: i + 1 == sizes.len(),
                    src,
                    dst,
                    bytes: *sz,
                    created: now,
                };
                q.schedule_at(
                    busy + self.cfg.local_latency,
                    NetEvent::Deliver { packet: pkt }.into(),
                );
            }
            self.local_busy_until[src.index()] = busy;
            q.schedule_at(busy, NetEvent::LocalInjectDone { msg: id }.into());
            return id;
        }

        self.stats.packets_created += n_pkts as u64;
        let now = q.now();
        for (i, sz) in sizes.iter().enumerate() {
            self.nics[src.index()].enqueue(
                flow,
                Packet {
                    msg: id,
                    index: i as u32,
                    last: i + 1 == sizes.len(),
                    src,
                    dst,
                    bytes: *sz,
                    created: now,
                },
            );
        }
        self.try_start_nic(q, src);
        id
    }

    /// Processes one network event, appending upcalls to `out`.
    pub fn handle<E: From<NetEvent>>(
        &mut self,
        q: &mut EventQueue<E>,
        ev: NetEvent,
        out: &mut Vec<Notice>,
    ) {
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            a.last_now = q.now();
            a.log.count_event();
        }
        match ev {
            NetEvent::NicTxDone { node } => {
                let pkt = self.nics[node.index()].tx_done();
                if pkt.last {
                    out.push(Notice::MessageInjected {
                        msg: pkt.msg,
                        src: node,
                    });
                }
                let link = LinkId::NodeUp(node);
                let leaf = self.routes.leaf_of(node);
                if self.link_drops(link, q.now()) {
                    // The packet dies on the wire still holding the leaf's
                    // admission credit (acquired in `try_start_nic`, released
                    // at the leaf's `EgressTxDone` — which it will never
                    // reach). Hand the credit back, or every drop shrinks the
                    // pool until all NICs on the leaf park forever.
                    self.release_credit(q, leaf, 0);
                    self.drop_packet(pkt, link, out);
                } else {
                    q.schedule_after(
                        self.wire_delay(link),
                        NetEvent::SwitchArrive {
                            sw: leaf,
                            packet: pkt,
                        }
                        .into(),
                    );
                }
                self.try_start_nic(q, node);
            }
            NetEvent::SwitchArrive { sw, packet } => {
                let unit = &mut self.switches[sw as usize];
                if let Some(start) = unit.central.arrive(packet, q.now(), &mut self.rng) {
                    Self::schedule_service(q, sw, start);
                }
            }
            NetEvent::ServiceDone {
                sw,
                packet,
                arrived,
            } => {
                let unit = &mut self.switches[sw as usize];
                if let Some(start) = unit.central.service_done(arrived, q.now(), &mut self.rng) {
                    Self::schedule_service(q, sw, start);
                }
                let port = self.routes.route_port(sw, packet.dst);
                #[cfg(feature = "audit")]
                if let Some(a) = self.audit.as_deref_mut() {
                    a.egress_accept(sw, port, packet.bytes);
                }
                self.switches[sw as usize].egress[port as usize].accept(packet);
                self.try_start_egress(q, sw, port);
            }
            NetEvent::EgressTxDone { sw, port } => {
                let pkt = self.switches[sw as usize].egress[port as usize].tx_done();
                #[cfg(feature = "audit")]
                if let Some(a) = self.audit.as_deref_mut() {
                    a.egress_transmit(sw, port, pkt.bytes, q.now());
                }
                // The packet has left this switch: release its admission
                // credit and wake exactly one waiter of that class.
                let class = self.routes.class_at(sw, &pkt);
                self.release_credit(q, sw, class);
                // Forward onto the wire. This switch's credit is released
                // above, but a packet bound for another switch already holds
                // that next switch's credit (acquired in `try_start_egress`):
                // if the trunk wire eats the packet, the credit must come
                // back with it or the downstream pool leaks dry.
                let hop = self.routes.next_hop(sw, port);
                let link = match hop {
                    NextHop::Node(dst) => LinkId::NodeDown(dst),
                    NextHop::Switch { sw: next, .. } => LinkId::Trunk { from: sw, to: next },
                };
                if self.link_drops(link, q.now()) {
                    if let NextHop::Switch { sw: next, class } = hop {
                        self.release_credit(q, next, class);
                    }
                    self.drop_packet(pkt, link, out);
                } else {
                    match hop {
                        NextHop::Node(_) => {
                            q.schedule_after(
                                self.wire_delay(link),
                                NetEvent::Deliver { packet: pkt }.into(),
                            );
                        }
                        NextHop::Switch { sw: next, .. } => {
                            q.schedule_after(
                                self.wire_delay(link),
                                NetEvent::SwitchArrive {
                                    sw: next,
                                    packet: pkt,
                                }
                                .into(),
                            );
                        }
                    }
                }
                self.try_start_egress(q, sw, port);
            }
            NetEvent::Deliver { packet } => {
                if packet.src != packet.dst {
                    self.stats.packets_delivered += 1;
                }
                let done = {
                    let prog = self
                        .inflight
                        .get_mut(&packet.msg)
                        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
                        .expect("delivery for unknown message");
                    prog.deliver_remaining -= 1;
                    prog.deliver_remaining == 0
                };
                out.push(Notice::PacketDelivered { packet });
                if done {
                    let prog = self
                        .inflight
                        .remove(&packet.msg)
                        // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
                        .expect("present: checked above");
                    if prog.dropped == 0 {
                        self.stats.messages_delivered += 1;
                        out.push(Notice::MessageDelivered {
                            msg: packet.msg,
                            src: prog.src,
                            dst: prog.dst,
                            bytes: prog.bytes,
                        });
                    } else {
                        // Some packets were lost: the message can never be
                        // reassembled, so it completes as a drop even though
                        // the surviving packets arrived.
                        self.stats.messages_dropped += 1;
                        out.push(Notice::MessageDropped {
                            msg: packet.msg,
                            src: prog.src,
                            dst: prog.dst,
                            bytes: prog.bytes,
                        });
                    }
                }
            }
            NetEvent::LinkStateChange { link, up } => {
                out.push(if up {
                    Notice::LinkUp { link }
                } else {
                    Notice::LinkDown { link }
                });
            }
            NetEvent::LocalInjectDone { msg } => {
                let src = self.inflight.get(&msg).map(|p| p.src).unwrap_or(NodeId(0));
                out.push(Notice::MessageInjected { msg, src });
            }
        }
    }

    fn schedule_service<E: From<NetEvent>>(
        q: &mut EventQueue<E>,
        sw: u32,
        start: crate::switch::ServiceStart,
    ) {
        q.schedule_after(
            start.service,
            NetEvent::ServiceDone {
                sw,
                packet: start.packet,
                arrived: start.arrived,
            }
            .into(),
        );
    }

    /// Starts the NIC's next transmission if it is idle, has traffic, and
    /// its leaf grants an up-class credit; otherwise parks it.
    fn try_start_nic<E: From<NetEvent>>(&mut self, q: &mut EventQueue<E>, node: NodeId) {
        if !self.nics[node.index()].can_start() {
            return;
        }
        let leaf = self.routes.leaf_of(node);
        if self.switches[leaf as usize].pools[0].try_acquire() {
            let bw = self.link_bandwidth_of(LinkId::NodeUp(node));
            let d = self.nics[node.index()].start_tx(bw);
            q.schedule_after(d, NetEvent::NicTxDone { node }.into());
        } else {
            self.nics[node.index()].waiting_for_credit = true;
            self.switches[leaf as usize].waiters[0].push_back(Waiter::Nic(node));
            self.stats.backpressure_stalls += 1;
        }
    }

    /// Starts an egress port's next transmission if it is idle and — for
    /// ports feeding another switch — that switch grants a credit.
    fn try_start_egress<E: From<NetEvent>>(&mut self, q: &mut EventQueue<E>, sw: u32, port: u32) {
        if !self.switches[sw as usize].egress[port as usize].can_start() {
            return;
        }
        let hop = self.routes.next_hop(sw, port);
        if let NextHop::Switch { sw: next, class } = hop {
            if !self.switches[next as usize].pools[class].try_acquire() {
                self.switches[sw as usize].egress[port as usize].waiting_for_credit = true;
                self.switches[next as usize].waiters[class].push_back(Waiter::Egress { sw, port });
                self.stats.backpressure_stalls += 1;
                return;
            }
        }
        let link = match hop {
            NextHop::Node(dst) => LinkId::NodeDown(dst),
            NextHop::Switch { sw: next, .. } => LinkId::Trunk { from: sw, to: next },
        };
        let bw = self.link_bandwidth_of(link);
        let d = self.switches[sw as usize].egress[port as usize].start_tx(bw);
        q.schedule_after(d, NetEvent::EgressTxDone { sw, port }.into());
    }

    /// Releases one (switch, class) admission credit and wakes a parked
    /// waiter. Under the auditor, a release that would underflow the pool —
    /// a credit handed back twice, or never acquired — is reported as a
    /// [`InvariantKind::CreditConservation`] violation and skipped, instead
    /// of corrupting the pool (or aborting on the pool's debug assertion).
    fn release_credit<E: From<NetEvent>>(&mut self, q: &mut EventQueue<E>, sw: u32, class: usize) {
        #[cfg(feature = "audit")]
        if let Some(a) = self.audit.as_deref_mut() {
            if self.switches[sw as usize].pools[class].in_use() == 0 {
                let detail =
                    format!("credit release without matching acquire (switch {sw}, class {class})");
                a.log
                    .violate(InvariantKind::CreditConservation, q.now(), detail);
                return;
            }
        }
        self.switches[sw as usize].pools[class].release();
        self.wake_one(q, sw, class);
    }

    /// Grants a freed (switch, class) credit to the first parked waiter.
    fn wake_one<E: From<NetEvent>>(&mut self, q: &mut EventQueue<E>, sw: u32, class: usize) {
        let Some(w) = self.switches[sw as usize].waiters[class].pop_front() else {
            return;
        };
        match w {
            Waiter::Nic(node) => {
                self.nics[node.index()].waiting_for_credit = false;
                self.try_start_nic(q, node);
            }
            Waiter::Egress { sw: esw, port } => {
                self.switches[esw as usize].egress[port as usize].waiting_for_credit = false;
                self.try_start_egress(q, esw, port);
            }
        }
    }

    /// True when no packet is anywhere in the fabric (testing aid).
    pub fn is_quiescent(&self) -> bool {
        self.inflight.is_empty()
            && self
                .switches
                .iter()
                .all(|u| u.central.depth() == 0 && u.egress.iter().all(|e| e.depth() == 0))
            && self
                .nics
                .iter()
                .all(|n| n.backlog() == 0 && !n.is_transmitting())
    }

    /// Credits outstanding in a switch's pool (test hook).
    pub fn credits_in_use(&self, sw: u32, class: usize) -> usize {
        self.switches[sw as usize].pools[class].in_use()
    }
}

/// Runs a fabric-only simulation until the queue drains or `horizon`
/// passes, collecting all notices. Convenience for tests and benches that
/// exercise the network without a software layer on top.
pub fn drain<E>(fabric: &mut Fabric, q: &mut EventQueue<E>, horizon: SimTime) -> Vec<Notice>
where
    E: From<NetEvent> + Into<NetEvent>,
{
    let mut out = Vec::new();
    while let Some(t) = q.peek_time() {
        if t > horizon {
            break;
        }
        // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
        let (_, ev) = q.pop().expect("peeked event vanished");
        fabric.handle(q, ev.into(), &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn setup() -> (Fabric, EventQueue<NetEvent>) {
        (
            Fabric::new(SwitchConfig::tiny_deterministic()),
            EventQueue::new(),
        )
    }

    fn delivered(notices: &[Notice]) -> Vec<MessageId> {
        notices
            .iter()
            .filter_map(|n| match n {
                Notice::MessageDelivered { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn single_packet_end_to_end_latency_is_exact() {
        let (mut fab, mut q) = setup();
        // tiny_deterministic: 1 GB/s links, 100 ns wire, 200 ns service.
        // 512 B: nic 512 ns + wire 100 + service 200 + egress 512 + wire 100
        // = 1424 ns.
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(10_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(q.now(), SimTime::from_nanos(1424));
        assert!(fab.is_quiescent());
    }

    #[test]
    fn message_is_segmented_and_reassembled() {
        let (mut fab, mut q) = setup();
        // 2500 B at MTU 1024 → 3 packets.
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(2), 2500);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        let pkts = notices
            .iter()
            .filter(|n| matches!(n, Notice::PacketDelivered { .. }))
            .count();
        assert_eq!(pkts, 3);
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(fab.stats().packets_created, 3);
        assert_eq!(fab.stats().packets_delivered, 3);
    }

    #[test]
    fn injection_notice_precedes_delivery() {
        let (mut fab, mut q) = setup();
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 2048);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        let inj = notices
            .iter()
            .position(|n| matches!(n, Notice::MessageInjected { msg, .. } if *msg == id))
            .expect("injected notice missing");
        let del = notices
            .iter()
            .position(|n| matches!(n, Notice::MessageDelivered { msg, .. } if *msg == id))
            .expect("delivered notice missing");
        assert!(inj < del);
    }

    #[test]
    fn local_messages_bypass_the_switch() {
        let (mut fab, mut q) = setup();
        let id = fab.send_message(&mut q, 0, NodeId(1), NodeId(1), 4096);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(1_000_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(fab.switch_stats().arrivals, 0, "switch must stay idle");
        assert_eq!(fab.stats().local_messages, 1);
    }

    #[test]
    fn concurrent_senders_share_the_central_server() {
        let (mut fab, mut q) = setup();
        // Two nodes each send one 512 B packet to distinct destinations at
        // t=0. NIC serializations run in parallel (512 ns each), both
        // arrive at 612 ns, but tiny_deterministic has one routing server,
        // which serializes them: the second departs service 200 ns later.
        fab.send_message(&mut q, 0, NodeId(0), NodeId(2), 512);
        fab.send_message(&mut q, 1, NodeId(1), NodeId(3), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        assert_eq!(delivered(&notices).len(), 2);
        // First delivery 1424 ns, second waited 200 ns in the queue.
        assert_eq!(q.now(), SimTime::from_nanos(1624));
        let st = fab.switch_stats();
        assert_eq!(st.served, 2);
        assert_eq!(st.total_wait_ns, 200);
    }

    #[test]
    fn backpressure_stalls_and_recovers() {
        let mut cfg = SwitchConfig::tiny_deterministic();
        cfg.switch_capacity = 1; // one credit: the second packet must stall
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        fab.send_message(&mut q, 0, NodeId(0), NodeId(2), 512);
        fab.send_message(&mut q, 1, NodeId(1), NodeId(3), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(1_000_000));
        assert_eq!(delivered(&notices).len(), 2, "both must eventually deliver");
        assert!(fab.stats().backpressure_stalls >= 1);
        assert!(fab.is_quiescent());
    }

    #[test]
    fn many_messages_all_deliver_exactly_once() {
        let (mut fab, mut q) = setup();
        let mut ids = Vec::new();
        for i in 0..50u64 {
            let src = NodeId((i % 4) as u32);
            let dst = NodeId(((i + 1) % 4) as u32);
            ids.push(fab.send_message(&mut q, i, src, dst, 300 + i * 37));
        }
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(1_000_000_000));
        let mut got = delivered(&notices);
        got.sort();
        ids.sort();
        assert_eq!(got, ids);
        assert!(fab.is_quiescent());
    }

    #[test]
    fn zero_byte_message_still_delivers() {
        let (mut fab, mut q) = setup();
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 0);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        assert_eq!(delivered(&notices), vec![id]);
    }

    #[test]
    fn credits_fully_release_after_drain() {
        let (mut fab, mut q) = setup();
        for i in 0..30u64 {
            fab.send_message(
                &mut q,
                i,
                NodeId((i % 4) as u32),
                NodeId(((i + 1) % 4) as u32),
                2048,
            );
        }
        drain(&mut fab, &mut q, SimTime::from_secs(10));
        assert!(fab.is_quiescent());
        assert_eq!(fab.credits_in_use(0, 0), 0);
    }

    #[test]
    fn audit_is_off_by_default_and_reports_none() {
        let (mut fab, mut q) = setup();
        assert!(!fab.audit_enabled());
        fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert_eq!(fab.take_audit_report(), None);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_clean_run_reports_no_violations() {
        let (mut fab, mut q) = setup();
        fab.enable_audit();
        assert!(fab.audit_enabled());
        for i in 0..30u64 {
            fab.send_message(
                &mut q,
                i,
                NodeId((i % 4) as u32),
                NodeId(((i + 1) % 4) as u32),
                2048,
            );
        }
        drain(&mut fab, &mut q, SimTime::from_secs(10));
        assert!(fab.is_quiescent());
        let report = fab.take_audit_report().expect("audit enabled");
        assert!(report.is_clean(), "unexpected violations: {report}");
        assert!(report.events_audited > 0);
    }

    #[cfg(feature = "audit")]
    #[test]
    fn audited_lossy_run_stays_clean() {
        // Drops exercise the credit-return paths the auditor guards; a
        // correct fabric must stay violation-free even when packets die.
        let mut cfg = SwitchConfig::tiny_deterministic();
        cfg.switch_capacity = 1;
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_micros(10)));
        let mut fab = Fabric::new(cfg.with_fault_plan(FaultPlan::none().with_link_fault(fault)));
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        fab.enable_audit();
        fab.prime_fault_events(&mut q);
        fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 4096);
        drain(&mut fab, &mut q, SimTime::from_micros(15));
        fab.send_message(&mut q, 1, NodeId(0), NodeId(1), 4096);
        drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert!(fab.stats().packets_dropped >= 4);
        let report = fab.take_audit_report().expect("audit enabled");
        assert!(report.is_clean(), "unexpected violations: {report}");
    }

    #[cfg(feature = "audit")]
    #[test]
    fn double_release_is_reported_not_panicked() {
        let (mut fab, mut q) = setup();
        fab.enable_audit();
        // No credit is in use: a release here is the class of accounting bug
        // the auditor exists to catch. It must come back as a typed
        // violation, not a debug-assert abort.
        fab.release_credit(&mut q, 0, 0);
        let report = fab.take_audit_report().expect("audit enabled");
        assert_eq!(report.violation_count(), 1);
        assert_eq!(report.violations[0].kind, InvariantKind::CreditConservation);
        assert!(report.violations[0]
            .detail
            .contains("without matching acquire"));
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut fab = Fabric::new(SwitchConfig::cab().with_seed(11));
            let mut q: EventQueue<NetEvent> = EventQueue::new();
            for i in 0..40u32 {
                fab.send_message(&mut q, 0, NodeId(i % 18), NodeId((i + 5) % 18), 4096 * 3);
            }
            let n = drain(&mut fab, &mut q, SimTime::from_nanos(10_000_000));
            (q.now(), n.len())
        };
        assert_eq!(run(), run());
    }

    // ------------------------------------------------------------------
    // Fat-tree topology.

    fn tiny_fat_tree() -> SwitchConfig {
        let mut cfg = SwitchConfig::tiny_deterministic();
        cfg.topology = Topology::FatTree {
            leaves: 2,
            spines: 2,
        };
        cfg.nodes = 4; // 2 nodes per leaf
        cfg
    }

    #[test]
    fn fat_tree_intra_leaf_matches_single_switch_latency() {
        let mut fab = Fabric::new(tiny_fat_tree());
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        // Nodes 0 and 1 share leaf 0: one switch hop, same as before.
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(q.now(), SimTime::from_nanos(1424));
    }

    #[test]
    fn fat_tree_cross_leaf_takes_three_hops() {
        let mut fab = Fabric::new(tiny_fat_tree());
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        // Node 0 (leaf 0) → node 2 (leaf 1): nic 512 + wire 100 +
        // [svc 200 + egress 512 + wire 100] × 3 hops = 3048 ns.
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(2), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(100_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(q.now(), SimTime::from_nanos(3048));
        // The spine chosen for node 2 (2 % 2 = spine 0 → switch index 2)
        // must have routed exactly one packet.
        assert_eq!(fab.central_stats(2).served, 1);
        assert_eq!(fab.central_stats(3).served, 0);
    }

    #[test]
    fn fat_tree_all_pairs_connect() {
        let mut cfg = tiny_fat_tree();
        cfg.topology = Topology::FatTree {
            leaves: 3,
            spines: 2,
        };
        cfg.nodes = 9;
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let mut expect = Vec::new();
        for s in 0..9u32 {
            for d in 0..9u32 {
                if s != d {
                    expect.push(fab.send_message(&mut q, u64::from(s), NodeId(s), NodeId(d), 700));
                }
            }
        }
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(10));
        let mut got = delivered(&notices);
        got.sort();
        expect.sort();
        assert_eq!(got, expect, "every pair must deliver");
        assert!(fab.is_quiescent());
    }

    #[test]
    fn fat_tree_spreads_destinations_over_spines() {
        let mut fab = Fabric::new(tiny_fat_tree());
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        // Traffic to node 2 uses spine 0; to node 3 uses spine 1.
        fab.send_message(&mut q, 0, NodeId(0), NodeId(2), 512);
        fab.send_message(&mut q, 1, NodeId(1), NodeId(3), 512);
        drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert_eq!(fab.central_stats(2).served, 1);
        assert_eq!(fab.central_stats(3).served, 1);
    }

    #[test]
    fn fat_tree_survives_saturation_without_deadlock() {
        // Tight credits + heavy bidirectional cross-leaf traffic: the
        // per-class pools must keep the credit graph acyclic.
        let mut cfg = tiny_fat_tree();
        cfg.switch_capacity = 2;
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let mut expect = Vec::new();
        for i in 0..120u64 {
            let src = NodeId((i % 4) as u32);
            let dst = NodeId(((i % 4 + 2) % 4) as u32); // always cross-leaf
            expect.push(fab.send_message(&mut q, i % 8, src, dst, 3_000));
        }
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(60));
        assert_eq!(delivered(&notices).len(), expect.len());
        assert!(fab.is_quiescent());
        assert!(fab.stats().backpressure_stalls > 0, "must have stalled");
    }

    proptest! {
        /// Conservation for arbitrary traffic matrices: every message
        /// submitted is delivered exactly once, every created packet is
        /// delivered, and the fabric ends quiescent.
        #[test]
        fn prop_traffic_conservation(
            msgs in proptest::collection::vec((0u32..4, 0u32..4, 0u64..20_000), 1..60)
        ) {
            let mut fab = Fabric::new(SwitchConfig::tiny_deterministic());
            let mut q: EventQueue<NetEvent> = EventQueue::new();
            for (i, (src, dst, bytes)) in msgs.iter().enumerate() {
                fab.send_message(&mut q, i as u64, NodeId(*src), NodeId(*dst), *bytes);
            }
            let notices = drain(&mut fab, &mut q, SimTime::from_secs(100));
            let delivered = notices
                .iter()
                .filter(|n| matches!(n, Notice::MessageDelivered { .. }))
                .count();
            let injected = notices
                .iter()
                .filter(|n| matches!(n, Notice::MessageInjected { .. }))
                .count();
            prop_assert_eq!(delivered, msgs.len());
            prop_assert_eq!(injected, msgs.len());
            prop_assert_eq!(fab.stats().packets_created, fab.stats().packets_delivered);
            prop_assert!(fab.is_quiescent());
        }

        /// The same conservation property over a fat tree.
        #[test]
        fn prop_fat_tree_conservation(
            msgs in proptest::collection::vec((0u32..6, 0u32..6, 0u64..10_000), 1..40)
        ) {
            let mut cfg = SwitchConfig::tiny_deterministic();
            cfg.topology = Topology::FatTree { leaves: 3, spines: 2 };
            cfg.nodes = 6;
            let mut fab = Fabric::new(cfg);
            let mut q: EventQueue<NetEvent> = EventQueue::new();
            for (i, (src, dst, bytes)) in msgs.iter().enumerate() {
                fab.send_message(&mut q, i as u64, NodeId(*src), NodeId(*dst), *bytes);
            }
            let notices = drain(&mut fab, &mut q, SimTime::from_secs(100));
            let delivered = notices
                .iter()
                .filter(|n| matches!(n, Notice::MessageDelivered { .. }))
                .count();
            prop_assert_eq!(delivered, msgs.len());
            prop_assert!(fab.is_quiescent());
        }

        /// The switch's served count equals remote packets created, for
        /// any remote-only traffic pattern.
        #[test]
        fn prop_switch_serves_every_remote_packet(
            msgs in proptest::collection::vec((0u32..4, 0u64..10_000), 1..40)
        ) {
            let mut fab = Fabric::new(SwitchConfig::tiny_deterministic());
            let mut q: EventQueue<NetEvent> = EventQueue::new();
            for (i, (src, bytes)) in msgs.iter().enumerate() {
                // Destination always differs from source: remote traffic.
                let dst = (*src + 1) % 4;
                fab.send_message(&mut q, i as u64, NodeId(*src), NodeId(dst), *bytes);
            }
            drain(&mut fab, &mut q, SimTime::from_secs(100));
            prop_assert_eq!(fab.switch_stats().served, fab.stats().packets_created);
        }
    }

    // ------------------------------------------------------------------
    // Fault injection.

    use crate::fault::{FaultPlan, FaultWindow, LinkFault, LinkId, LinkSelector};

    fn run_notices(cfg: SwitchConfig) -> Vec<Notice> {
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        fab.prime_fault_events(&mut q);
        for i in 0..12u64 {
            let src = NodeId((i % 4) as u32);
            let dst = NodeId(((i + 1) % 4) as u32);
            fab.send_message(&mut q, i, src, dst, 700 + 512 * i);
        }
        drain(&mut fab, &mut q, SimTime::from_secs(10))
    }

    #[test]
    fn zero_loss_fault_plan_matches_fault_free_run() {
        // An *installed* fault layer whose faults are all no-ops must not
        // perturb the schedule: the opt-in guarantee is byte-identical
        // traces, not merely similar ones.
        let baseline = run_notices(SwitchConfig::tiny_deterministic());
        let cfg = SwitchConfig::tiny_deterministic()
            .with_fault_plan(FaultPlan::none().with_link_fault(LinkFault::on(LinkSelector::All)));
        assert_eq!(run_notices(cfg), baseline);
    }

    #[test]
    fn lossy_fabric_is_deterministic_and_conserves_packets() {
        let lossy = || {
            SwitchConfig::tiny_deterministic()
                .with_fault_plan(FaultPlan::uniform_loss(0.3).with_seed(7))
        };
        let a = run_notices(lossy());
        let b = run_notices(lossy());
        assert_eq!(a, b, "same seed + same plan must replay identically");
        let drops = a
            .iter()
            .filter(|n| matches!(n, Notice::PacketDropped { .. }))
            .count();
        assert!(drops > 0, "30% loss over 12 messages must drop something");

        // Conservation: every created packet is either delivered or
        // dropped, and every message resolves one way or the other.
        let mut fab = Fabric::new(lossy());
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        for i in 0..12u64 {
            let src = NodeId((i % 4) as u32);
            let dst = NodeId(((i + 1) % 4) as u32);
            fab.send_message(&mut q, i, src, dst, 700 + 512 * i);
        }
        drain(&mut fab, &mut q, SimTime::from_secs(10));
        let s = fab.stats();
        assert_eq!(s.packets_created, s.packets_delivered + s.packets_dropped);
        assert_eq!(s.messages_sent, s.messages_delivered + s.messages_dropped);
        assert!(fab.is_quiescent(), "no packet may be left in flight");
        // Dropped packets die on the wire *after* acquiring the downstream
        // switch's admission credit; each one must hand it back.
        for sw in 0..fab.routes.switch_count() {
            for class in 0..fab.switches[sw as usize].pools.len() {
                assert_eq!(
                    fab.credits_in_use(sw, class),
                    0,
                    "drops leaked credits at switch {sw} class {class}"
                );
            }
        }
    }

    #[test]
    fn drops_do_not_exhaust_a_tight_credit_pool() {
        // Regression: a packet dropped between the NIC and the switch (or
        // on a trunk) still holds the downstream admission credit. With a
        // single-credit pool, one leaked credit wedges the whole leaf: no
        // NIC on it could ever transmit again.
        let mut cfg = SwitchConfig::tiny_deterministic();
        cfg.switch_capacity = 1;
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_micros(10)));
        let mut fab = Fabric::new(cfg.with_fault_plan(FaultPlan::none().with_link_fault(fault)));
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        // Prime the window-edge events so the drain below advances the
        // clock past the down window before the second send.
        fab.prime_fault_events(&mut q);
        // Eaten by the down window — four packets, four potential leaks.
        fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 4096);
        drain(&mut fab, &mut q, SimTime::from_micros(15));
        assert_eq!(fab.stats().packets_dropped, 4);
        assert_eq!(fab.credits_in_use(0, 0), 0, "drop must return the credit");
        // The window is over; the same node (and its leaf peers) must still
        // be able to push traffic through the single credit.
        let id = fab.send_message(&mut q, 1, NodeId(0), NodeId(1), 4096);
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert_eq!(delivered(&notices), vec![id]);
    }

    #[test]
    fn down_window_drops_every_packet_on_the_link() {
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_secs(1)));
        let cfg = SwitchConfig::tiny_deterministic()
            .with_fault_plan(FaultPlan::none().with_link_fault(fault));
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let dead = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 4096);
        let alive = fab.send_message(&mut q, 1, NodeId(2), NodeId(3), 4096);
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(2));
        assert_eq!(delivered(&notices), vec![alive]);
        assert!(notices
            .iter()
            .any(|n| matches!(n, Notice::MessageDropped { msg, .. } if *msg == dead)));
        // 4096 B over a 1024 B MTU: four packets, all eaten by the link.
        assert_eq!(fab.drops_on(LinkId::NodeUp(NodeId(0))), 4);
        assert_eq!(fab.stats().packets_dropped, 4);
        assert_eq!(fab.stats().messages_dropped, 1);
    }

    #[test]
    fn link_recovers_after_down_window_closes() {
        let fault = LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0))))
            .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_micros(10)));
        let cfg = SwitchConfig::tiny_deterministic()
            .with_fault_plan(FaultPlan::none().with_link_fault(fault));
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        fab.prime_fault_events(&mut q);
        // Drain past the window, then send: the link must carry traffic.
        let notices = drain(&mut fab, &mut q, SimTime::from_micros(20));
        assert!(notices
            .iter()
            .any(|n| matches!(n, Notice::LinkDown { link } if *link == LinkId::NodeUp(NodeId(0)))));
        assert!(notices
            .iter()
            .any(|n| matches!(n, Notice::LinkUp { link } if *link == LinkId::NodeUp(NodeId(0)))));
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(fab.stats().packets_dropped, 0);
    }

    #[test]
    fn bandwidth_derating_stretches_serialization() {
        // Halving the node→switch bandwidth doubles NIC serialization:
        // nic 1024 + wire 100 + svc 200 + egress 512 + wire 100 = 1936 ns
        // (vs 1424 ns nominal for 512 B).
        let fault =
            LinkFault::on(LinkSelector::Link(LinkId::NodeUp(NodeId(0)))).with_bandwidth_factor(0.5);
        let cfg = SwitchConfig::tiny_deterministic()
            .with_fault_plan(FaultPlan::none().with_link_fault(fault));
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(10_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(q.now(), SimTime::from_nanos(1936));
    }

    #[test]
    fn extra_latency_adds_per_wire_crossing() {
        // +50 ns on every link: the 512 B single-switch path crosses two
        // wires (node→switch, switch→node) → 1424 + 100 = 1524 ns.
        let fault =
            LinkFault::on(LinkSelector::All).with_extra_latency(SimDuration::from_nanos(50));
        let cfg = SwitchConfig::tiny_deterministic()
            .with_fault_plan(FaultPlan::none().with_link_fault(fault));
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let id = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_nanos(10_000));
        assert_eq!(delivered(&notices), vec![id]);
        assert_eq!(q.now(), SimTime::from_nanos(1524));
    }

    #[test]
    fn trunk_faults_hit_only_cross_leaf_traffic() {
        // Kill every trunk out of leaf 0 (to spines 2 and 3): intra-leaf
        // traffic is untouched, cross-leaf traffic dies.
        let plan = FaultPlan::none()
            .with_link_fault(
                LinkFault::on(LinkSelector::Link(LinkId::Trunk { from: 0, to: 2 }))
                    .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_secs(5))),
            )
            .with_link_fault(
                LinkFault::on(LinkSelector::Link(LinkId::Trunk { from: 0, to: 3 }))
                    .with_down(FaultWindow::new(SimTime::ZERO, SimTime::from_secs(5))),
            );
        let cfg = tiny_fat_tree().with_fault_plan(plan);
        let mut fab = Fabric::new(cfg);
        let mut q: EventQueue<NetEvent> = EventQueue::new();
        let intra = fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
        let cross = fab.send_message(&mut q, 1, NodeId(0), NodeId(2), 512);
        let notices = drain(&mut fab, &mut q, SimTime::from_secs(1));
        assert_eq!(delivered(&notices), vec![intra]);
        assert!(notices
            .iter()
            .any(|n| matches!(n, Notice::MessageDropped { msg, .. } if *msg == cross)));
        assert!(fab.is_quiescent());
    }

    #[test]
    fn invalid_fault_plan_is_rejected_at_construction() {
        let cfg = SwitchConfig::tiny_deterministic().with_fault_plan(FaultPlan::uniform_loss(1.5));
        assert!(Fabric::try_new(cfg).is_err());
    }
}
