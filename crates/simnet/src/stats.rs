//! Fabric telemetry.
//!
//! The switch records ground-truth queue behaviour (waits, sojourns, busy
//! time). The measurement methodology in `anp-core` must *not* read these —
//! it only sees probe-packet latencies, exactly like the paper's ImpactB on
//! real hardware — but tests and benches use them to validate that the
//! inferred utilization tracks the true one.

use crate::time::{SimDuration, SimTime};

/// Ground-truth counters for the central routing stage.
#[derive(Debug, Clone, Default)]
pub struct SwitchStats {
    /// Packets that entered the central queue.
    pub arrivals: u64,
    /// Packets that completed service.
    pub served: u64,
    /// Sum of time spent waiting in the central queue (arrival → service
    /// start), nanoseconds.
    pub total_wait_ns: u128,
    /// Sum of time from arrival to service completion, nanoseconds.
    pub total_sojourn_ns: u128,
    /// Sum of service durations, nanoseconds. Dividing by the observation
    /// horizon times the server count gives the true utilization ρ.
    pub busy_ns: u128,
    /// Number of parallel routing servers (set by the stage; 1 by
    /// default).
    pub servers: usize,
    /// Largest central-queue length observed (including the packet in
    /// service).
    pub max_queue_len: usize,
    /// Sum of queue lengths sampled at each arrival (for mean queue length
    /// by arrival averaging).
    pub queue_len_sum: u128,
    /// Start of the current observation window.
    pub window_start: SimTime,
}

impl SwitchStats {
    /// Mean waiting time (excluding service) of served packets.
    pub fn mean_wait(&self) -> SimDuration {
        if self.served == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_wait_ns / self.served as u128) as u64)
    }

    /// Mean sojourn time (wait + service) of served packets — the switch's
    /// contribution to packet latency, i.e. the `W` of the paper's eq. 1.
    pub fn mean_sojourn(&self) -> SimDuration {
        if self.served == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos((self.total_sojourn_ns / self.served as u128) as u64)
    }

    /// True routing-stage utilization over `[window_start, now]`: the mean
    /// fraction of servers kept busy.
    pub fn utilization(&self, now: SimTime) -> f64 {
        let horizon = now.saturating_since(self.window_start).as_nanos();
        if horizon == 0 {
            return 0.0;
        }
        let capacity = horizon as f64 * self.servers.max(1) as f64;
        (self.busy_ns as f64 / capacity).min(1.0)
    }

    /// Mean queue length seen by arriving packets (PASTA estimator under
    /// Poisson arrivals).
    pub fn mean_queue_len_at_arrival(&self) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.queue_len_sum as f64 / self.arrivals as f64
    }

    /// Resets all counters and opens a new observation window at `now`.
    ///
    /// Note: packets already inside the switch keep their original arrival
    /// stamps, so the first few completions after a reset can carry wait
    /// time accrued before the window. With windows much longer than a
    /// sojourn this bias is negligible.
    pub fn reset_window(&mut self, now: SimTime) {
        *self = SwitchStats {
            window_start: now,
            servers: self.servers,
            ..SwitchStats::default()
        };
    }
}

/// Fabric-wide counters.
#[derive(Debug, Clone, Default)]
pub struct FabricStats {
    /// Messages accepted by `send_message`.
    pub messages_sent: u64,
    /// Messages fully delivered to their destination node.
    pub messages_delivered: u64,
    /// Packets created by segmentation (remote traffic only).
    pub packets_created: u64,
    /// Packets delivered to destination NICs (remote traffic only).
    pub packets_delivered: u64,
    /// Intra-node messages short-circuited past the switch.
    pub local_messages: u64,
    /// Times a NIC was stalled by switch back-pressure (no credit).
    pub backpressure_stalls: u64,
    /// Packets lost to injected link faults (zero unless a
    /// [`crate::fault::FaultPlan`] is active).
    pub packets_dropped: u64,
    /// Messages that lost at least one packet to an injected fault and can
    /// therefore never be delivered.
    pub messages_dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = SwitchStats::default();
        assert_eq!(s.mean_wait(), SimDuration::ZERO);
        assert_eq!(s.mean_sojourn(), SimDuration::ZERO);
        assert_eq!(s.utilization(SimTime::from_nanos(1000)), 0.0);
        assert_eq!(s.mean_queue_len_at_arrival(), 0.0);
    }

    #[test]
    fn utilization_is_busy_over_horizon() {
        let mut s = SwitchStats {
            busy_ns: 400,
            ..SwitchStats::default()
        };
        assert!((s.utilization(SimTime::from_nanos(1_000)) - 0.4).abs() < 1e-12);
        // Clamped to 1 even if accounting overshoots.
        s.busy_ns = 5_000;
        assert_eq!(s.utilization(SimTime::from_nanos(1_000)), 1.0);
    }

    #[test]
    fn utilization_normalizes_by_server_count() {
        let mut s = SwitchStats {
            servers: 4,
            ..SwitchStats::default()
        };
        // 4 servers busy 400 ns each over a 1000 ns window: ρ = 0.4.
        s.busy_ns = 1_600;
        assert!((s.utilization(SimTime::from_nanos(1_000)) - 0.4).abs() < 1e-12);
        // Window reset keeps the server count.
        s.reset_window(SimTime::from_nanos(2_000));
        assert_eq!(s.servers, 4);
        assert_eq!(s.busy_ns, 0);
    }

    #[test]
    fn window_reset_rebases_horizon() {
        let mut s = SwitchStats {
            busy_ns: 500,
            served: 10,
            ..SwitchStats::default()
        };
        s.reset_window(SimTime::from_nanos(2_000));
        assert_eq!(s.served, 0);
        assert_eq!(s.busy_ns, 0);
        // 300 busy ns over the 1000 ns window after reset.
        s.busy_ns = 300;
        assert!((s.utilization(SimTime::from_nanos(3_000)) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn mean_wait_and_sojourn_divide_by_served() {
        let s = SwitchStats {
            served: 4,
            total_wait_ns: 400,
            total_sojourn_ns: 1_200,
            ..SwitchStats::default()
        };
        assert_eq!(s.mean_wait().as_nanos(), 100);
        assert_eq!(s.mean_sojourn().as_nanos(), 300);
    }
}
