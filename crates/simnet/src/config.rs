//! Fabric configuration and the Cab-cluster preset.

use crate::service::ServiceDistribution;
use crate::time::SimDuration;

/// The network's switch arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// All nodes hang off one switch — the paper's experimental setting.
    SingleSwitch,
    /// A two-level fat tree: `leaves` bottom switches each hosting
    /// `nodes / leaves` nodes, fully connected to `spines` top switches.
    /// Cab itself is such a tree (the paper confines its runs to single
    /// leaves); this extension lets the methodology be exercised beyond
    /// one switch.
    FatTree {
        /// Bottom-level (leaf) switches.
        leaves: u32,
        /// Top-level (spine) switches.
        spines: u32,
    },
}

/// Complete description of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Switch arrangement.
    pub topology: Topology,
    /// Number of compute nodes attached to the network (spread evenly
    /// over leaves for a fat tree).
    pub nodes: u32,
    /// Maximum transmission unit: messages are segmented into packets of at
    /// most this many bytes.
    pub mtu: u64,
    /// Per-port link bandwidth, bytes per second (node→switch and
    /// switch→node are symmetric).
    pub link_bandwidth: u64,
    /// One-way propagation latency of a node↔switch cable.
    pub wire_latency: SimDuration,
    /// Service-time distribution of the central routing stage — the "G" of
    /// the M/G/1 abstraction.
    pub service: ServiceDistribution,
    /// Maximum packets admitted into the switch (routing queue, servers,
    /// and egress queues combined). When full, source NICs are
    /// back-pressured and stall until credits free up, like link-level
    /// flow control on InfiniBand.
    pub switch_capacity: usize,
    /// Parallel routing servers at the central stage. The Cab preset uses
    /// one per port; `1` recovers a literal M/G/1 switch for tests and
    /// ablations.
    pub route_servers: u32,
    /// Latency of an intra-node (shared-memory) message, per hop.
    pub local_latency: SimDuration,
    /// Intra-node bandwidth, bytes per second.
    pub local_bandwidth: u64,
    /// CPU clock rate in Hz, used to convert cycle-denominated workload
    /// parameters (e.g. CompressionB's bubble size) into time.
    pub cpu_hz: u64,
    /// Seed for the fabric's random number generator (service-time draws).
    pub seed: u64,
}

impl SwitchConfig {
    /// A model of one bottom-level switch of LLNL's Cab cluster as described
    /// in the paper's §II: 18 compute nodes on a QLogic 12300 switch with
    /// ≈1 µs idle latency and ≈5 GB/s per-port bandwidth; nodes carry two
    /// 2.6 GHz Xeon E5-2670 sockets.
    ///
    /// Calibration notes:
    /// * The base-plus-tail service stage (300 ns base, 5 % exponential
    ///   1.5 µs excursions) yields an idle 1 KB probe latency mode of
    ///   ≈1.25 µs with the occasional multi-µs packet — the shape of the
    ///   paper's Fig. 3 "No App" distribution — while keeping the idle
    ///   mean−min gap small so the P-K inversion reads a *quiet* switch as
    ///   lightly utilized.
    /// * The mean service time of ≈338 ns caps the central stage at roughly
    ///   12 GB/s of 4 KB packets. A real crossbar is faster in aggregate,
    ///   but the paper's entire methodology *models* the switch as a single
    ///   M/G/1 server; making the simulated switch literally that keeps the
    ///   observable (probe latency vs. load) faithful to the model under
    ///   measurement.
    /// * 18 parallel routing servers keep the aggregate forwarding rate
    ///   port-limited rather than server-limited, as on a real crossbar;
    ///   the methodology still *applies* M/G/1 theory to the device, the
    ///   same honest approximation the paper makes on real hardware.
    /// * The 384-credit admission window (≈21 packets per port) bounds
    ///   total in-switch occupancy the way link-level flow control bounds
    ///   buffering in a real switch; at saturation probe packets see
    ///   ≈10–15 µs sojourns, which the P-K inversion maps to the low-90s %
    ///   utilization at the top of the paper's Fig. 6 range.
    pub fn cab() -> Self {
        SwitchConfig {
            topology: Topology::SingleSwitch,
            nodes: 18,
            mtu: 4096,
            link_bandwidth: 5_000_000_000,
            wire_latency: SimDuration::from_nanos(250),
            service: ServiceDistribution::BaseWithTail {
                base_ns: 300,
                tail_mean_ns: 1_500.0,
                p_tail: 0.05,
            },
            switch_capacity: 384,
            route_servers: 18,
            local_latency: SimDuration::from_nanos(400),
            local_bandwidth: 10_000_000_000,
            cpu_hz: 2_600_000_000,
            seed: 0xCAB_5EED,
        }
    }

    /// A small fabric for unit and integration tests: 4 nodes, deterministic
    /// service. Deterministic service makes latency arithmetic exact in
    /// assertions.
    pub fn tiny_deterministic() -> Self {
        SwitchConfig {
            topology: Topology::SingleSwitch,
            nodes: 4,
            mtu: 1024,
            link_bandwidth: 1_000_000_000,
            wire_latency: SimDuration::from_nanos(100),
            service: ServiceDistribution::Deterministic { ns: 200 },
            switch_capacity: 64,
            route_servers: 1,
            local_latency: SimDuration::from_nanos(50),
            local_bandwidth: 4_000_000_000,
            cpu_hz: 1_000_000_000,
            seed: 1,
        }
    }

    /// A two-level fat tree built from Cab-like leaf switches: `leaves`
    /// bottom switches of 18 nodes each, fully meshed to `spines` top
    /// switches. All per-switch parameters match [`SwitchConfig::cab`].
    pub fn cab_fat_tree(leaves: u32, spines: u32) -> Self {
        SwitchConfig {
            topology: Topology::FatTree { leaves, spines },
            nodes: leaves * 18,
            ..SwitchConfig::cab()
        }
    }

    /// Replaces the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the node count (builder style).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Replaces the service distribution (builder style).
    pub fn with_service(mut self, service: ServiceDistribution) -> Self {
        self.service = service;
        self
    }

    /// Validates internal consistency; called by the fabric constructor.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes < 2 {
            return Err("a switch needs at least 2 nodes".into());
        }
        if self.mtu == 0 {
            return Err("MTU must be positive".into());
        }
        if self.link_bandwidth == 0 || self.local_bandwidth == 0 {
            return Err("bandwidths must be positive".into());
        }
        if self.switch_capacity == 0 {
            return Err("switch capacity must be positive".into());
        }
        if self.route_servers == 0 {
            return Err("route_servers must be positive".into());
        }
        if self.cpu_hz == 0 {
            return Err("cpu_hz must be positive".into());
        }
        if self.service.mean_ns() <= 0.0 {
            return Err("service mean must be positive".into());
        }
        if let Topology::FatTree { leaves, spines } = self.topology {
            if leaves < 2 {
                return Err("a fat tree needs at least 2 leaves".into());
            }
            if spines == 0 {
                return Err("a fat tree needs at least 1 spine".into());
            }
            if self.nodes % leaves != 0 {
                return Err("nodes must divide evenly over leaves".into());
            }
            if self.nodes / leaves == 0 {
                return Err("each leaf needs at least one node".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cab_preset_is_valid_and_matches_paper() {
        let c = SwitchConfig::cab();
        c.validate().unwrap();
        assert_eq!(c.nodes, 18);
        assert_eq!(c.link_bandwidth, 5_000_000_000);
        assert_eq!(c.cpu_hz, 2_600_000_000);
    }

    #[test]
    fn tiny_preset_is_valid() {
        SwitchConfig::tiny_deterministic().validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(SwitchConfig::cab().with_nodes(1).validate().is_err());
        let mut c = SwitchConfig::cab();
        c.mtu = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.switch_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.link_bandwidth = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.cpu_hz = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = SwitchConfig::cab().with_seed(7).with_nodes(8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.nodes, 8);
    }

    #[test]
    fn fat_tree_preset_and_validation() {
        let c = SwitchConfig::cab_fat_tree(4, 2);
        c.validate().unwrap();
        assert_eq!(c.nodes, 72);
        assert_eq!(
            c.topology,
            Topology::FatTree {
                leaves: 4,
                spines: 2
            }
        );
        let mut bad = SwitchConfig::cab_fat_tree(4, 2);
        bad.nodes = 70; // not divisible by 4
        assert!(bad.validate().is_err());
        let mut bad = SwitchConfig::cab_fat_tree(1, 2);
        bad.nodes = 18;
        assert!(bad.validate().is_err(), "one leaf is not a tree");
        let bad = SwitchConfig::cab_fat_tree(4, 0);
        assert!(bad.validate().is_err(), "zero spines");
    }
}
