//! Fabric configuration and the Cab-cluster preset.

use std::fmt;

use crate::fault::FaultPlan;
use crate::service::ServiceDistribution;
use crate::time::{SimDuration, SimTime};

/// Why a [`SwitchConfig`] (or its [`FaultPlan`]) is unusable.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// Fewer than two nodes: there is nothing to switch between.
    TooFewNodes {
        /// The configured node count.
        nodes: u32,
    },
    /// `mtu == 0`: messages could never be segmented.
    ZeroMtu,
    /// `link_bandwidth == 0`: packets would serialize forever.
    ZeroLinkBandwidth,
    /// `local_bandwidth == 0`: intra-node messages would never move.
    ZeroLocalBandwidth,
    /// `switch_capacity == 0`: no packet could ever be admitted.
    ZeroSwitchCapacity,
    /// `route_servers == 0`: the routing stage could never serve.
    ZeroRouteServers,
    /// `cpu_hz == 0`: cycle-denominated workloads cannot be converted.
    ZeroCpuHz,
    /// The service distribution's mean is not positive.
    NonPositiveServiceMean,
    /// A fat tree needs at least two leaf switches.
    FatTreeTooFewLeaves {
        /// The configured leaf count.
        leaves: u32,
    },
    /// A fat tree needs at least one spine switch.
    FatTreeNoSpines,
    /// Nodes must spread evenly over the leaves.
    UnevenNodesPerLeaf {
        /// The configured node count.
        nodes: u32,
        /// The configured leaf count.
        leaves: u32,
    },
    /// A link-fault loss probability is outside `[0, 1]`.
    InvalidLossProbability {
        /// The offending probability.
        loss: f64,
    },
    /// A link-fault bandwidth factor is outside `(0, 1]`.
    InvalidBandwidthFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A server-fault slowdown factor is not a positive finite number.
    InvalidSlowdownFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A fault window is empty (`until <= from`).
    EmptyFaultWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// A fault references a node the fabric does not have.
    FaultNodeOutOfRange {
        /// The referenced node index.
        node: u32,
        /// The fabric's node count.
        nodes: u32,
    },
    /// A fault references a switch the fabric does not have.
    FaultSwitchOutOfRange {
        /// The referenced switch index.
        sw: u32,
        /// The fabric's switch count.
        switches: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::TooFewNodes { nodes } => {
                write!(f, "a switch needs at least 2 nodes (got {nodes})")
            }
            ConfigError::ZeroMtu => write!(f, "MTU must be positive"),
            ConfigError::ZeroLinkBandwidth => write!(f, "link_bandwidth must be positive"),
            ConfigError::ZeroLocalBandwidth => write!(f, "local_bandwidth must be positive"),
            ConfigError::ZeroSwitchCapacity => write!(f, "switch_capacity must be positive"),
            ConfigError::ZeroRouteServers => write!(f, "route_servers must be positive"),
            ConfigError::ZeroCpuHz => write!(f, "cpu_hz must be positive"),
            ConfigError::NonPositiveServiceMean => {
                write!(f, "service-time mean must be positive")
            }
            ConfigError::FatTreeTooFewLeaves { leaves } => {
                write!(f, "a fat tree needs at least 2 leaves (got {leaves})")
            }
            ConfigError::FatTreeNoSpines => write!(f, "a fat tree needs at least 1 spine"),
            ConfigError::UnevenNodesPerLeaf { nodes, leaves } => {
                write!(
                    f,
                    "nodes must divide evenly over leaves ({nodes} nodes on {leaves} leaves)"
                )
            }
            ConfigError::InvalidLossProbability { loss } => {
                write!(f, "loss probability must be within [0, 1] (got {loss})")
            }
            ConfigError::InvalidBandwidthFactor { factor } => {
                write!(f, "bandwidth factor must be within (0, 1] (got {factor})")
            }
            ConfigError::InvalidSlowdownFactor { factor } => {
                write!(
                    f,
                    "slowdown factor must be positive and finite (got {factor})"
                )
            }
            ConfigError::EmptyFaultWindow { from, until } => {
                write!(
                    f,
                    "fault window is empty: from {} ns, until {} ns",
                    from.as_nanos(),
                    until.as_nanos()
                )
            }
            ConfigError::FaultNodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault references node {node}, but the fabric has {nodes} nodes"
                )
            }
            ConfigError::FaultSwitchOutOfRange { sw, switches } => {
                write!(
                    f,
                    "fault references switch {sw}, but the fabric has {switches} switches"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// The network's switch arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// All nodes hang off one switch — the paper's experimental setting.
    SingleSwitch,
    /// A two-level fat tree: `leaves` bottom switches each hosting
    /// `nodes / leaves` nodes, fully connected to `spines` top switches.
    /// Cab itself is such a tree (the paper confines its runs to single
    /// leaves); this extension lets the methodology be exercised beyond
    /// one switch.
    FatTree {
        /// Bottom-level (leaf) switches.
        leaves: u32,
        /// Top-level (spine) switches.
        spines: u32,
    },
}

/// Complete description of the network.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchConfig {
    /// Switch arrangement.
    pub topology: Topology,
    /// Number of compute nodes attached to the network (spread evenly
    /// over leaves for a fat tree).
    pub nodes: u32,
    /// Maximum transmission unit: messages are segmented into packets of at
    /// most this many bytes.
    pub mtu: u64,
    /// Per-port link bandwidth, bytes per second (node→switch and
    /// switch→node are symmetric).
    pub link_bandwidth: u64,
    /// One-way propagation latency of a node↔switch cable.
    pub wire_latency: SimDuration,
    /// Service-time distribution of the central routing stage — the "G" of
    /// the M/G/1 abstraction.
    pub service: ServiceDistribution,
    /// Maximum packets admitted into the switch (routing queue, servers,
    /// and egress queues combined). When full, source NICs are
    /// back-pressured and stall until credits free up, like link-level
    /// flow control on InfiniBand.
    pub switch_capacity: usize,
    /// Parallel routing servers at the central stage. The Cab preset uses
    /// one per port; `1` recovers a literal M/G/1 switch for tests and
    /// ablations.
    pub route_servers: u32,
    /// Latency of an intra-node (shared-memory) message, per hop.
    pub local_latency: SimDuration,
    /// Intra-node bandwidth, bytes per second.
    pub local_bandwidth: u64,
    /// CPU clock rate in Hz, used to convert cycle-denominated workload
    /// parameters (e.g. CompressionB's bubble size) into time.
    pub cpu_hz: u64,
    /// Seed for the fabric's random number generator (service-time draws).
    pub seed: u64,
    /// Fault-injection schedule. [`FaultPlan::none`] (the default)
    /// disables the fault layer entirely: no extra events, no extra RNG
    /// draws, byte-identical behaviour to a fault-free build.
    pub fault_plan: FaultPlan,
}

impl SwitchConfig {
    /// A model of one bottom-level switch of LLNL's Cab cluster as described
    /// in the paper's §II: 18 compute nodes on a QLogic 12300 switch with
    /// ≈1 µs idle latency and ≈5 GB/s per-port bandwidth; nodes carry two
    /// 2.6 GHz Xeon E5-2670 sockets.
    ///
    /// Calibration notes:
    /// * The base-plus-tail service stage (300 ns base, 5 % exponential
    ///   1.5 µs excursions) yields an idle 1 KB probe latency mode of
    ///   ≈1.25 µs with the occasional multi-µs packet — the shape of the
    ///   paper's Fig. 3 "No App" distribution — while keeping the idle
    ///   mean−min gap small so the P-K inversion reads a *quiet* switch as
    ///   lightly utilized.
    /// * The mean service time of ≈338 ns caps the central stage at roughly
    ///   12 GB/s of 4 KB packets. A real crossbar is faster in aggregate,
    ///   but the paper's entire methodology *models* the switch as a single
    ///   M/G/1 server; making the simulated switch literally that keeps the
    ///   observable (probe latency vs. load) faithful to the model under
    ///   measurement.
    /// * 18 parallel routing servers keep the aggregate forwarding rate
    ///   port-limited rather than server-limited, as on a real crossbar;
    ///   the methodology still *applies* M/G/1 theory to the device, the
    ///   same honest approximation the paper makes on real hardware.
    /// * The 384-credit admission window (≈21 packets per port) bounds
    ///   total in-switch occupancy the way link-level flow control bounds
    ///   buffering in a real switch; at saturation probe packets see
    ///   ≈10–15 µs sojourns, which the P-K inversion maps to the low-90s %
    ///   utilization at the top of the paper's Fig. 6 range.
    pub fn cab() -> Self {
        SwitchConfig {
            topology: Topology::SingleSwitch,
            nodes: 18,
            mtu: 4096,
            link_bandwidth: 5_000_000_000,
            wire_latency: SimDuration::from_nanos(250),
            service: ServiceDistribution::BaseWithTail {
                base_ns: 300,
                tail_mean_ns: 1_500.0,
                p_tail: 0.05,
            },
            switch_capacity: 384,
            route_servers: 18,
            local_latency: SimDuration::from_nanos(400),
            local_bandwidth: 10_000_000_000,
            cpu_hz: 2_600_000_000,
            seed: 0xCAB_5EED,
            fault_plan: FaultPlan::none(),
        }
    }

    /// A small fabric for unit and integration tests: 4 nodes, deterministic
    /// service. Deterministic service makes latency arithmetic exact in
    /// assertions.
    pub fn tiny_deterministic() -> Self {
        SwitchConfig {
            topology: Topology::SingleSwitch,
            nodes: 4,
            mtu: 1024,
            link_bandwidth: 1_000_000_000,
            wire_latency: SimDuration::from_nanos(100),
            service: ServiceDistribution::Deterministic { ns: 200 },
            switch_capacity: 64,
            route_servers: 1,
            local_latency: SimDuration::from_nanos(50),
            local_bandwidth: 4_000_000_000,
            cpu_hz: 1_000_000_000,
            seed: 1,
            fault_plan: FaultPlan::none(),
        }
    }

    /// A two-level fat tree built from Cab-like leaf switches: `leaves`
    /// bottom switches of 18 nodes each, fully meshed to `spines` top
    /// switches. All per-switch parameters match [`SwitchConfig::cab`].
    pub fn cab_fat_tree(leaves: u32, spines: u32) -> Self {
        SwitchConfig {
            topology: Topology::FatTree { leaves, spines },
            nodes: leaves * 18,
            ..SwitchConfig::cab()
        }
    }

    /// Replaces the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the node count (builder style).
    pub fn with_nodes(mut self, nodes: u32) -> Self {
        self.nodes = nodes;
        self
    }

    /// Replaces the service distribution (builder style).
    pub fn with_service(mut self, service: ServiceDistribution) -> Self {
        self.service = service;
        self
    }

    /// Replaces the fault plan (builder style).
    pub fn with_fault_plan(mut self, fault_plan: FaultPlan) -> Self {
        self.fault_plan = fault_plan;
        self
    }

    /// Number of switches the topology implies.
    pub fn switch_count(&self) -> u32 {
        match self.topology {
            Topology::SingleSwitch => 1,
            Topology::FatTree { leaves, spines } => leaves + spines,
        }
    }

    /// Validates internal consistency, including the fault plan; called
    /// by the fabric constructor and the CLI before building anything.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.nodes < 2 {
            return Err(ConfigError::TooFewNodes { nodes: self.nodes });
        }
        if self.mtu == 0 {
            return Err(ConfigError::ZeroMtu);
        }
        if self.link_bandwidth == 0 {
            return Err(ConfigError::ZeroLinkBandwidth);
        }
        if self.local_bandwidth == 0 {
            return Err(ConfigError::ZeroLocalBandwidth);
        }
        if self.switch_capacity == 0 {
            return Err(ConfigError::ZeroSwitchCapacity);
        }
        if self.route_servers == 0 {
            return Err(ConfigError::ZeroRouteServers);
        }
        if self.cpu_hz == 0 {
            return Err(ConfigError::ZeroCpuHz);
        }
        if self.service.mean_ns() <= 0.0 {
            return Err(ConfigError::NonPositiveServiceMean);
        }
        if let Topology::FatTree { leaves, spines } = self.topology {
            if leaves < 2 {
                return Err(ConfigError::FatTreeTooFewLeaves { leaves });
            }
            if spines == 0 {
                return Err(ConfigError::FatTreeNoSpines);
            }
            if !self.nodes.is_multiple_of(leaves) || self.nodes / leaves == 0 {
                return Err(ConfigError::UnevenNodesPerLeaf {
                    nodes: self.nodes,
                    leaves,
                });
            }
        }
        self.fault_plan.validate(self.nodes, self.switch_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cab_preset_is_valid_and_matches_paper() {
        let c = SwitchConfig::cab();
        c.validate().unwrap();
        assert_eq!(c.nodes, 18);
        assert_eq!(c.link_bandwidth, 5_000_000_000);
        assert_eq!(c.cpu_hz, 2_600_000_000);
    }

    #[test]
    fn tiny_preset_is_valid() {
        SwitchConfig::tiny_deterministic().validate().unwrap();
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        assert!(SwitchConfig::cab().with_nodes(1).validate().is_err());
        let mut c = SwitchConfig::cab();
        c.mtu = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.switch_capacity = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.link_bandwidth = 0;
        assert!(c.validate().is_err());
        let mut c = SwitchConfig::cab();
        c.cpu_hz = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_compose() {
        let c = SwitchConfig::cab().with_seed(7).with_nodes(8);
        assert_eq!(c.seed, 7);
        assert_eq!(c.nodes, 8);
    }

    #[test]
    fn validation_errors_are_typed_and_descriptive() {
        assert_eq!(
            SwitchConfig::cab().with_nodes(1).validate(),
            Err(ConfigError::TooFewNodes { nodes: 1 })
        );
        let mut c = SwitchConfig::cab();
        c.link_bandwidth = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroLinkBandwidth));
        let mut c = SwitchConfig::cab();
        c.route_servers = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroRouteServers));
        let mut bad = SwitchConfig::cab_fat_tree(4, 2);
        bad.nodes = 70;
        assert_eq!(
            bad.validate(),
            Err(ConfigError::UnevenNodesPerLeaf {
                nodes: 70,
                leaves: 4
            })
        );
        // Every error renders a human-readable message.
        assert!(ConfigError::ZeroMtu.to_string().contains("MTU"));
        assert!(ConfigError::TooFewNodes { nodes: 1 }
            .to_string()
            .contains("got 1"));
    }

    #[test]
    fn validation_covers_the_fault_plan() {
        let bad = SwitchConfig::cab().with_fault_plan(crate::fault::FaultPlan::uniform_loss(1.5));
        assert!(matches!(
            bad.validate(),
            Err(ConfigError::InvalidLossProbability { .. })
        ));
        let ok = SwitchConfig::cab().with_fault_plan(crate::fault::FaultPlan::uniform_loss(0.01));
        ok.validate().unwrap();
    }

    #[test]
    fn fat_tree_preset_and_validation() {
        let c = SwitchConfig::cab_fat_tree(4, 2);
        c.validate().unwrap();
        assert_eq!(c.nodes, 72);
        assert_eq!(
            c.topology,
            Topology::FatTree {
                leaves: 4,
                spines: 2
            }
        );
        let mut bad = SwitchConfig::cab_fat_tree(4, 2);
        bad.nodes = 70; // not divisible by 4
        assert!(bad.validate().is_err());
        let mut bad = SwitchConfig::cab_fat_tree(1, 2);
        bad.nodes = 18;
        assert!(bad.validate().is_err(), "one leaf is not a tree");
        let bad = SwitchConfig::cab_fat_tree(4, 0);
        assert!(bad.validate().is_err(), "zero spines");
    }
}
