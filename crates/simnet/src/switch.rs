//! The switch proper: a parallel routing stage plus per-port egress
//! serialization queues, under one credit-based admission window.
//!
//! The routing stage has `k` servers (one per port on the Cab preset):
//! packets admitted by the credit gate wait in a single FIFO until a
//! routing server frees, receive a service time drawn from a general
//! distribution, then queue at their destination port for
//! bandwidth-limited serialization.
//!
//! The paper *models* this device as an M/G/1 queue observed through probe
//! latencies (§IV-B). The simulated switch is deliberately *not* a literal
//! single server: a real crossbar routes packets in parallel, and the
//! methodology's charm is that the single-queue abstraction still predicts
//! well when applied to such a device. Keeping k servers reproduces that
//! honest model-vs-reality gap. (Setting `route_servers = 1` in the config
//! recovers the literal M/G/1 for tests and ablations.)
//!
//! Credits are acquired by source NICs before injection and released only
//! when the packet finishes egress serialization, so the admission window
//! bounds *total* in-switch occupancy — ingress queue, service, and port
//! queues — the way link-level flow control bounds buffering in real
//! InfiniBand switches. A note on ordering: with parallel servers two
//! packets can reorder inside the switch; message completion is counted,
//! not sequenced, so upper layers are unaffected.

use std::collections::VecDeque;

use rand::rngs::StdRng;

use crate::fault::ServerFaultState;
use crate::packet::Packet;
use crate::service::ServiceDistribution;
use crate::stats::SwitchStats;
use crate::time::{SimDuration, SimTime};

/// A service start handed back to the event loop: the caller schedules the
/// completion event after `service`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceStart {
    /// The packet entering service.
    pub packet: Packet,
    /// When the packet arrived at the routing stage (for completion-time
    /// accounting).
    pub arrived: SimTime,
    /// The drawn service duration.
    pub service: SimDuration,
}

/// A credit pool implementing link-level flow control for one admission
/// class of one switch. Separate pools per traffic direction keep
/// multi-hop credit loops acyclic (see the fabric docs).
#[derive(Debug)]
pub struct CreditPool {
    in_use: usize,
    capacity: usize,
}

impl CreditPool {
    /// Creates a pool of `capacity` credits.
    pub fn new(capacity: usize) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(capacity > 0, "a credit pool needs capacity");
        CreditPool {
            in_use: 0,
            capacity,
        }
    }

    /// Attempts to reserve one credit; `false` is back-pressure.
    pub fn try_acquire(&mut self) -> bool {
        if self.in_use < self.capacity {
            self.in_use += 1;
            true
        } else {
            false
        }
    }

    /// Releases one credit.
    pub fn release(&mut self) {
        debug_assert!(self.in_use > 0, "credit release without acquire");
        self.in_use -= 1;
    }

    /// Credits currently outstanding (test hook).
    pub fn in_use(&self) -> usize {
        self.in_use
    }
}

/// The parallel routing stage.
#[derive(Debug)]
pub struct CentralStage {
    queue: VecDeque<(Packet, SimTime)>,
    busy: usize,
    servers: usize,
    service: ServiceDistribution,
    fault: Option<ServerFaultState>,
    pub(crate) stats: SwitchStats,
}

impl CentralStage {
    /// Creates an idle stage with `servers` parallel routing servers.
    pub fn new(service: ServiceDistribution, servers: usize) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(servers >= 1, "need at least one routing server");
        CentralStage {
            queue: VecDeque::new(),
            busy: 0,
            servers,
            service,
            fault: None,
            stats: SwitchStats {
                servers,
                ..SwitchStats::default()
            },
        }
    }

    /// Installs an injected routing-server fault (slowdown / blackout
    /// windows). Only the fabric's fault layer calls this.
    pub(crate) fn set_fault(&mut self, fault: ServerFaultState) {
        self.fault = Some(fault);
    }

    /// Handles a packet arriving at the routing stage (credit already
    /// held). Returns a [`ServiceStart`] if a server was free; otherwise
    /// the packet queues.
    pub fn arrive(&mut self, pkt: Packet, now: SimTime, rng: &mut StdRng) -> Option<ServiceStart> {
        self.stats.arrivals += 1;
        let depth = self.queue.len() + self.busy;
        self.stats.queue_len_sum += depth as u128;
        self.stats.max_queue_len = self.stats.max_queue_len.max(depth + 1);
        if self.busy < self.servers {
            Some(self.start_service(pkt, now, now, rng))
        } else {
            self.queue.push_back((pkt, now));
            None
        }
    }

    fn start_service(
        &mut self,
        pkt: Packet,
        arrived: SimTime,
        now: SimTime,
        rng: &mut StdRng,
    ) -> ServiceStart {
        let mut service = self.service.sample(rng);
        if let Some(f) = &self.fault {
            // Faulted servers really are busy for the stretched duration,
            // so utilization accounting uses the adjusted value.
            service = f.adjust(now, service);
        }
        self.stats.total_wait_ns += now.since(arrived).as_nanos() as u128;
        self.stats.busy_ns += service.as_nanos() as u128;
        self.busy += 1;
        ServiceStart {
            packet: pkt,
            arrived,
            service,
        }
    }

    /// Records a service completion (the caller got the packet from the
    /// completion event) and starts the next queued packet if any.
    pub fn service_done(
        &mut self,
        arrived: SimTime,
        now: SimTime,
        rng: &mut StdRng,
    ) -> Option<ServiceStart> {
        debug_assert!(self.busy > 0, "service_done with no busy server");
        self.busy -= 1;
        self.stats.served += 1;
        self.stats.total_sojourn_ns += now.since(arrived).as_nanos() as u128;
        let (next, next_arrived) = self.queue.pop_front()?;
        Some(self.start_service(next, next_arrived, now, rng))
    }

    /// Packets waiting or in service at the routing stage.
    pub fn depth(&self) -> usize {
        self.queue.len() + self.busy
    }

    /// Number of busy routing servers.
    pub fn busy_servers(&self) -> usize {
        self.busy
    }

    /// Ground-truth telemetry.
    pub fn stats(&self) -> &SwitchStats {
        &self.stats
    }

    /// Resets telemetry counters, opening a new observation window.
    pub fn reset_stats(&mut self, now: SimTime) {
        self.stats.reset_window(now);
    }
}

/// One switch output port: a FIFO drained at link bandwidth, with an
/// explicit start step so the fabric can gate transmission on the next
/// hop's admission credits.
#[derive(Debug, Default)]
pub struct EgressPort {
    queue: VecDeque<Packet>,
    in_flight: Option<Packet>,
    /// True while this port is parked in another switch's credit-waiter
    /// list (prevents double-parking).
    pub(crate) waiting_for_credit: bool,
}

impl EgressPort {
    /// Queues a routed packet; the caller decides when transmission may
    /// start (see [`EgressPort::can_start`]).
    pub fn accept(&mut self, pkt: Packet) {
        self.queue.push_back(pkt);
    }

    /// True if the port could start a transmission: idle, not parked, and
    /// has something to send.
    pub fn can_start(&self) -> bool {
        self.in_flight.is_none() && !self.waiting_for_credit && !self.queue.is_empty()
    }

    /// Begins serializing the head packet (any next-hop credit must
    /// already be held). Returns the serialization duration; the caller
    /// schedules TX-done.
    pub fn start_tx(&mut self, bytes_per_sec: u64) -> SimDuration {
        debug_assert!(self.in_flight.is_none(), "egress started while busy");
        let pkt = self
            .queue
            .pop_front()
            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
            .expect("start_tx on empty egress queue");
        let d = SimDuration::serialization(pkt.bytes, bytes_per_sec);
        self.in_flight = Some(pkt);
        d
    }

    /// Completes the in-flight transmission, returning the packet now on
    /// the wire.
    pub fn tx_done(&mut self) -> Packet {
        self.in_flight
            .take()
            // anp-lint: allow(D003) — internal engine ledger invariant; breakage means corrupted simulator state, which must halt rather than emit plausible-but-wrong results
            .expect("egress tx_done fired with no packet in flight")
    }

    /// Packets queued or in flight on this port.
    pub fn depth(&self) -> usize {
        self.queue.len() + usize::from(self.in_flight.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{MessageId, NodeId};
    use rand::SeedableRng;

    fn pkt(id: u64) -> Packet {
        Packet {
            msg: MessageId(id),
            index: 0,
            last: true,
            src: NodeId(0),
            dst: NodeId(1),
            bytes: 1024,
            created: SimTime::ZERO,
        }
    }

    fn det(servers: usize) -> CentralStage {
        CentralStage::new(ServiceDistribution::Deterministic { ns: 100 }, servers)
    }

    #[test]
    fn credit_pool_caps_and_releases() {
        let mut pool = CreditPool::new(2);
        assert!(pool.try_acquire());
        assert!(pool.try_acquire());
        assert!(!pool.try_acquire(), "third credit must be refused");
        pool.release();
        assert!(pool.try_acquire(), "released credit is reusable");
        assert_eq!(pool.in_use(), 2);
    }

    #[test]
    #[should_panic(expected = "needs capacity")]
    fn empty_credit_pool_rejected() {
        CreditPool::new(0);
    }

    #[test]
    fn single_server_serves_fifo() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut st = det(1);
        let t0 = SimTime::from_nanos(0);
        let s = st.arrive(pkt(1), t0, &mut rng).expect("server free");
        assert_eq!(s.packet.msg, MessageId(1));
        assert_eq!(s.service, SimDuration::from_nanos(100));
        assert!(st.arrive(pkt(2), t0, &mut rng).is_none(), "server busy");
        assert_eq!(st.depth(), 2);

        let next = st
            .service_done(s.arrived, SimTime::from_nanos(100), &mut rng)
            .expect("queued packet starts");
        assert_eq!(next.packet.msg, MessageId(2));
        assert!(st
            .service_done(next.arrived, SimTime::from_nanos(200), &mut rng)
            .is_none());
        assert_eq!(st.depth(), 0);
    }

    #[test]
    fn parallel_servers_run_concurrently() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut st = det(3);
        for i in 0..3 {
            assert!(
                st.arrive(pkt(i), SimTime::ZERO, &mut rng).is_some(),
                "server {i} must be free"
            );
        }
        assert_eq!(st.busy_servers(), 3);
        assert!(
            st.arrive(pkt(9), SimTime::ZERO, &mut rng).is_none(),
            "fourth packet must queue"
        );
        assert_eq!(st.depth(), 4);
    }

    #[test]
    fn wait_accounting_measures_queueing() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut st = det(1);
        let s1 = st.arrive(pkt(1), SimTime::from_nanos(0), &mut rng).unwrap();
        st.arrive(pkt(2), SimTime::from_nanos(10), &mut rng);
        let s2 = st
            .service_done(s1.arrived, SimTime::from_nanos(100), &mut rng)
            .unwrap();
        st.service_done(s2.arrived, SimTime::from_nanos(200), &mut rng);
        // Packet 2 arrived at 10, started service at 100 → waited 90.
        assert_eq!(st.stats().total_wait_ns, 90);
        // Sojourns: 100 (pkt 1) + 190 (pkt 2).
        assert_eq!(st.stats().total_sojourn_ns, 290);
        assert_eq!(st.stats().busy_ns, 200);
        assert_eq!(st.stats().served, 2);
    }

    #[test]
    fn egress_port_serializes_back_to_back() {
        let mut port = EgressPort::default();
        let bw = 1_000_000_000; // 1 GB/s → 1024 B = 1024 ns
        port.accept(pkt(1));
        port.accept(pkt(2));
        assert_eq!(port.depth(), 2);
        assert!(port.can_start());
        assert_eq!(port.start_tx(bw), SimDuration::from_nanos(1024));
        assert!(!port.can_start(), "busy port cannot start another tx");
        assert_eq!(port.tx_done().msg, MessageId(1));
        assert!(port.can_start());
        assert_eq!(port.start_tx(bw), SimDuration::from_nanos(1024));
        assert_eq!(port.tx_done().msg, MessageId(2));
        assert_eq!(port.depth(), 0);
        assert!(!port.can_start(), "drained port has nothing to send");
    }

    #[test]
    fn parked_egress_port_cannot_start() {
        let mut port = EgressPort::default();
        port.accept(pkt(1));
        port.waiting_for_credit = true;
        assert!(!port.can_start());
        port.waiting_for_credit = false;
        assert!(port.can_start());
    }

    #[test]
    #[should_panic(expected = "at least one routing server")]
    fn zero_servers_rejected() {
        det(0);
    }
}
