//! # anp-simnet — single-switch network simulator
//!
//! A deterministic discrete-event model of the network substrate the paper
//! measures: multiple compute nodes attached to one switch whose routing
//! stage behaves like an M/G/1 queue observed through packet latencies
//! (Casas & Bronevetsky, IPDPS 2014, §III–IV).
//!
//! The simulator replaces the LLNL Cab cluster's QLogic 12300 leaf switch,
//! which is not available in this environment. It reproduces the
//! *observables* the paper's methodology depends on:
//!
//! * packets experience NIC serialization, wire latency, a shared central
//!   routing queue with a general service-time distribution, and per-port
//!   egress serialization;
//! * probe latency distributions shift right (and grow tails) as offered
//!   load rises;
//! * the switch back-pressures sources when its internal queue fills, as
//!   link-level flow control does on InfiniBand.
//!
//! The crate is deliberately single-threaded: determinism (same seed, same
//! run) is a hard requirement for reproducible experiments, and one event
//! loop is faster than any locked alternative at this scale.
//!
//! ## Quick example
//!
//! ```
//! use anp_simnet::{Fabric, SwitchConfig, NodeId, NetEvent, EventQueue, SimTime, drain};
//!
//! let mut fabric = Fabric::new(SwitchConfig::tiny_deterministic());
//! let mut queue: EventQueue<NetEvent> = EventQueue::new();
//! fabric.send_message(&mut queue, 0, NodeId(0), NodeId(1), 4096);
//! let notices = drain(&mut fabric, &mut queue, SimTime::from_nanos(1_000_000));
//! assert!(notices.iter().any(|n| matches!(n, anp_simnet::Notice::MessageDelivered { .. })));
//! ```

#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod event;
pub mod fabric;
pub mod fault;
pub mod nic;
pub mod packet;
pub mod service;
pub mod stats;
pub mod switch;
pub mod time;
pub mod util;

pub use audit::{audit_compiled, AuditReport, AuditViolation, InvariantKind};
pub use config::{ConfigError, SwitchConfig, Topology};
pub use event::EventQueue;
pub use fabric::{drain, Fabric, NetEvent, Notice};
pub use fault::{FaultPlan, FaultWindow, LinkFault, LinkId, LinkSelector, ServerFault};
pub use packet::{Message, MessageId, NodeId, Packet};
pub use service::ServiceDistribution;
pub use stats::{FabricStats, SwitchStats};
pub use time::{SimDuration, SimTime};
