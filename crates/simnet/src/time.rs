//! Simulated-time primitives.
//!
//! All simulation time is kept in integer nanoseconds. Integer time makes the
//! event queue totally ordered and reproducible across platforms — there is
//! no floating-point accumulation drift between runs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The instant at which every simulation starts.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds since start.
    ///
    /// # Panics
    /// Panics if the instant overflows u64 nanoseconds (instead of
    /// silently wrapping in release builds).
    pub const fn from_micros(us: u64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_micros overflows u64 nanoseconds"),
        }
    }

    /// Builds an instant from milliseconds since start.
    ///
    /// # Panics
    /// Panics if the instant overflows u64 nanoseconds.
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_millis overflows u64 nanoseconds"),
        }
    }

    /// Builds an instant from whole seconds since start.
    ///
    /// # Panics
    /// Panics if the instant overflows u64 nanoseconds.
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimTime(ns),
            None => panic!("SimTime::from_secs overflows u64 nanoseconds"),
        }
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Microseconds since simulation start, as a float (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics if `earlier` is after `self`; elapsed time is never negative
    /// in a discrete-event run, so this always indicates a logic error.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                // anp-lint: allow(D003) — this IS the checked constructor D004 mandates; running past the representable range corrupts event ordering, so it halts loudly
                .expect("SimTime::since: `earlier` is after `self`"),
        )
    }

    /// Saturating version of [`SimTime::since`]: returns zero if `earlier`
    /// is after `self`.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a span from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a span from microseconds.
    ///
    /// # Panics
    /// Panics if the span overflows u64 nanoseconds (instead of silently
    /// wrapping in release builds, which the checked `Add`/`Mul`
    /// operators never allowed either).
    pub const fn from_micros(us: u64) -> Self {
        match us.checked_mul(1_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_micros overflows u64 nanoseconds"),
        }
    }

    /// Builds a span from milliseconds.
    ///
    /// # Panics
    /// Panics if the span overflows u64 nanoseconds.
    pub const fn from_millis(ms: u64) -> Self {
        match ms.checked_mul(1_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_millis overflows u64 nanoseconds"),
        }
    }

    /// Builds a span from whole seconds.
    ///
    /// # Panics
    /// Panics if the span overflows u64 nanoseconds.
    pub const fn from_secs(s: u64) -> Self {
        match s.checked_mul(1_000_000_000) {
            Some(ns) => SimDuration(ns),
            None => panic!("SimDuration::from_secs overflows u64 nanoseconds"),
        }
    }

    /// Builds a span from fractional seconds, rounding to the nearest
    /// nanosecond. Negative and non-finite inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((s * 1e9).round() as u64)
    }

    /// Builds a span from a number of CPU cycles at the given clock rate.
    ///
    /// The paper expresses CompressionB's "bubble" parameter `B` in cycles
    /// of Cab's 2.6 GHz Xeons; this is the conversion used throughout.
    pub fn from_cycles(cycles: u64, hz: u64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(hz > 0, "clock rate must be positive");
        // cycles / hz seconds == cycles * 1e9 / hz nanoseconds. Use u128 to
        // avoid overflow for large cycle counts.
        SimDuration(((cycles as u128 * 1_000_000_000u128) / hz as u128) as u64)
    }

    /// The time to serialize `bytes` onto a link of `bytes_per_sec`
    /// bandwidth, rounded up to the next nanosecond (never zero for a
    /// non-empty payload).
    pub fn serialization(bytes: u64, bytes_per_sec: u64) -> Self {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span in fractional microseconds (for reporting only).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Scales the span by a non-negative float factor, rounding to the
    /// nearest nanosecond — the checked constructor for derating and
    /// jitter factors (anp-lint D004). Saturates at the representable
    /// maximum; negative and non-finite factors clamp to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        // `as u64` on a float saturates at the integer bounds, so an
        // overflowing product pins at u64::MAX instead of wrapping.
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // anp-lint: allow(D003) — this IS the checked constructor D004 mandates; running past the representable range corrupts event ordering, so it halts loudly
                .expect("SimTime overflow: simulation ran past u64 nanoseconds"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        // anp-lint: allow(D003) — this IS the checked constructor D004 mandates; running past the representable range corrupts event ordering, so it halts loudly
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                // anp-lint: allow(D003) — this IS the checked constructor D004 mandates; running past the representable range corrupts event ordering, so it halts loudly
                .expect("SimDuration underflow: negative spans are not representable"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        // anp-lint: allow(D003) — this IS the checked constructor D004 mandates; running past the representable range corrupts event ordering, so it halts loudly
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(1_000);
        let d = SimDuration::from_nanos(250);
        assert_eq!((t + d).as_nanos(), 1_250);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_negative_span() {
        let t = SimTime::from_nanos(10);
        let u = SimTime::from_nanos(20);
        let _ = t.since(u);
    }

    #[test]
    fn saturating_since_clamps() {
        let t = SimTime::from_nanos(10);
        let u = SimTime::from_nanos(20);
        assert_eq!(t.saturating_since(u), SimDuration::ZERO);
        assert_eq!(u.saturating_since(t), SimDuration::from_nanos(10));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn constructors_accept_extreme_in_range_values() {
        // The largest representable spans must still construct.
        assert_eq!(
            SimDuration::from_secs(u64::MAX / 1_000_000_000).as_nanos(),
            (u64::MAX / 1_000_000_000) * 1_000_000_000
        );
        assert_eq!(
            SimTime::from_micros(u64::MAX / 1_000).as_nanos(),
            (u64::MAX / 1_000) * 1_000
        );
    }

    #[test]
    #[should_panic(expected = "from_secs overflows")]
    fn duration_from_secs_overflow_panics() {
        // Pre-fix this silently wrapped in release builds (u64::MAX
        // seconds "fit" into a tiny wrapped nanosecond count).
        let _ = SimDuration::from_secs(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "from_millis overflows")]
    fn duration_from_millis_overflow_panics() {
        let _ = SimDuration::from_millis(u64::MAX / 1_000);
    }

    #[test]
    #[should_panic(expected = "from_micros overflows")]
    fn duration_from_micros_overflow_panics() {
        let _ = SimDuration::from_micros(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "from_secs overflows")]
    fn time_from_secs_overflow_panics() {
        let _ = SimTime::from_secs(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "from_millis overflows")]
    fn time_from_millis_overflow_panics() {
        let _ = SimTime::from_millis(u64::MAX);
    }

    #[test]
    #[should_panic(expected = "from_micros overflows")]
    fn time_from_micros_overflow_panics() {
        let _ = SimTime::from_micros(u64::MAX);
    }

    #[test]
    fn cycles_at_cab_clock() {
        // 2.6e9 cycles at 2.6 GHz is exactly one second.
        let d = SimDuration::from_cycles(2_600_000_000, 2_600_000_000);
        assert_eq!(d, SimDuration::from_secs(1));
        // The paper's smallest bubble: 2.5e4 cycles at 2.6 GHz ≈ 9.615 µs.
        let b = SimDuration::from_cycles(25_000, 2_600_000_000);
        assert_eq!(b.as_nanos(), 9_615);
    }

    #[test]
    fn serialization_rounds_up_and_handles_zero() {
        // 1 KiB at 5 GB/s = 204.8 ns, rounded up to 205.
        let d = SimDuration::serialization(1024, 5_000_000_000);
        assert_eq!(d.as_nanos(), 205);
        assert_eq!(
            SimDuration::serialization(0, 5_000_000_000),
            SimDuration::ZERO
        );
        // A single byte still takes a nonzero time.
        assert!(SimDuration::serialization(1, u64::MAX / 2).as_nanos() >= 1);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_nanos(100);
        assert_eq!((d * 3).as_nanos(), 300);
        assert_eq!((d / 4).as_nanos(), 25);
        let total: SimDuration = (0..5).map(|_| d).sum();
        assert_eq!(total.as_nanos(), 500);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
