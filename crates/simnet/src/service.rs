//! Service-time distributions for the switch's central routing stage.
//!
//! The paper models the switch as an M/G/1 queue: a single server with a
//! *general* service-time distribution `S`. Its queue-theoretic metric needs
//! both the mean service rate `µ = 1/E[S]` and the variance `Var(S)`
//! (Pollaczek–Khinchine, paper eq. 1–3). The distributions here provide the
//! "G": the hyperexponential in particular reproduces the heavy idle-switch
//! tail visible in the paper's Fig. 3 (a few packets take far longer than
//! the 1.25 µs mode even with no application running).

use rand::rngs::StdRng;
use rand::Rng;

use crate::time::SimDuration;

/// A service-time distribution with analytically known moments.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceDistribution {
    /// Every packet takes exactly `ns` nanoseconds (M/D/1 behaviour).
    Deterministic {
        /// The constant service time in nanoseconds.
        ns: u64,
    },
    /// Exponential service with the given mean (M/M/1 behaviour).
    Exponential {
        /// Mean service time in nanoseconds.
        mean_ns: f64,
    },
    /// Two-phase hyperexponential: with probability `p_slow` the packet is
    /// serviced from the slow phase. High coefficient of variation; heavy
    /// tail.
    HyperExponential {
        /// Mean of the common (fast) exponential phase, in ns.
        fast_mean_ns: f64,
        /// Mean of the rare (slow) exponential phase, in ns.
        slow_mean_ns: f64,
        /// Probability of drawing from the slow phase.
        p_slow: f64,
    },
    /// Uniform service time over `[lo_ns, hi_ns]`.
    Uniform {
        /// Lower bound in nanoseconds.
        lo_ns: u64,
        /// Upper bound in nanoseconds.
        hi_ns: u64,
    },
    /// A constant base cost plus, with probability `p_tail`, an
    /// exponential excursion — a near-deterministic fast path with a rare
    /// slow tail. This matches the idle-switch behaviour in the paper's
    /// Fig. 3 (a sharp mode with a few far-out packets) while keeping the
    /// gap between the minimum and mean latency small, so the
    /// Pollaczek–Khinchine inversion does not misread service dispersion
    /// as queueing on an idle switch.
    BaseWithTail {
        /// Constant base service time in nanoseconds.
        base_ns: u64,
        /// Mean of the exponential tail excursion, in ns.
        tail_mean_ns: f64,
        /// Probability of a tail excursion.
        p_tail: f64,
    },
}

impl ServiceDistribution {
    /// Draws one service time.
    pub fn sample(&self, rng: &mut StdRng) -> SimDuration {
        let ns = match *self {
            ServiceDistribution::Deterministic { ns } => ns as f64,
            ServiceDistribution::Exponential { mean_ns } => sample_exp(rng, mean_ns),
            ServiceDistribution::HyperExponential {
                fast_mean_ns,
                slow_mean_ns,
                p_slow,
            } => {
                if rng.gen::<f64>() < p_slow {
                    sample_exp(rng, slow_mean_ns)
                } else {
                    sample_exp(rng, fast_mean_ns)
                }
            }
            ServiceDistribution::Uniform { lo_ns, hi_ns } => {
                debug_assert!(lo_ns <= hi_ns);
                rng.gen_range(lo_ns..=hi_ns) as f64
            }
            ServiceDistribution::BaseWithTail {
                base_ns,
                tail_mean_ns,
                p_tail,
            } => {
                let mut t = base_ns as f64;
                if rng.gen::<f64>() < p_tail {
                    t += sample_exp(rng, tail_mean_ns);
                }
                t
            }
        };
        // Service never takes less than a nanosecond: a zero service time
        // would let the server process unbounded work in zero simulated time.
        SimDuration::from_nanos(ns.max(1.0).round() as u64)
    }

    /// Analytic mean `E[S]` in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        match *self {
            ServiceDistribution::Deterministic { ns } => ns as f64,
            ServiceDistribution::Exponential { mean_ns } => mean_ns,
            ServiceDistribution::HyperExponential {
                fast_mean_ns,
                slow_mean_ns,
                p_slow,
            } => (1.0 - p_slow) * fast_mean_ns + p_slow * slow_mean_ns,
            ServiceDistribution::Uniform { lo_ns, hi_ns } => (lo_ns + hi_ns) as f64 / 2.0,
            ServiceDistribution::BaseWithTail {
                base_ns,
                tail_mean_ns,
                p_tail,
            } => base_ns as f64 + p_tail * tail_mean_ns,
        }
    }

    /// Analytic variance `Var(S)` in ns².
    pub fn variance_ns2(&self) -> f64 {
        match *self {
            ServiceDistribution::Deterministic { .. } => 0.0,
            ServiceDistribution::Exponential { mean_ns } => mean_ns * mean_ns,
            ServiceDistribution::HyperExponential {
                fast_mean_ns,
                slow_mean_ns,
                p_slow,
            } => {
                // E[S^2] for a mixture of exponentials: sum p_i * 2 m_i^2.
                let e2 = (1.0 - p_slow) * 2.0 * fast_mean_ns * fast_mean_ns
                    + p_slow * 2.0 * slow_mean_ns * slow_mean_ns;
                let m = self.mean_ns();
                e2 - m * m
            }
            ServiceDistribution::Uniform { lo_ns, hi_ns } => {
                let w = (hi_ns - lo_ns) as f64;
                w * w / 12.0
            }
            ServiceDistribution::BaseWithTail {
                tail_mean_ns,
                p_tail,
                ..
            } => {
                // Var(base + T) = Var(T); T is 0 w.p. 1−p and Exp(m) w.p.
                // p, so E[T²] = p·2m² and E[T] = p·m.
                let e2 = p_tail * 2.0 * tail_mean_ns * tail_mean_ns;
                let e1 = p_tail * tail_mean_ns;
                e2 - e1 * e1
            }
        }
    }

    /// Mean service *rate* `µ` in packets per nanosecond.
    pub fn mu_per_ns(&self) -> f64 {
        1.0 / self.mean_ns()
    }

    /// Squared coefficient of variation `Var(S)/E[S]²` — the term that
    /// scales queueing delay in the P-K formula.
    pub fn scv(&self) -> f64 {
        let m = self.mean_ns();
        self.variance_ns2() / (m * m)
    }
}

fn sample_exp(rng: &mut StdRng, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    // Inverse-CDF sampling; 1-U avoids ln(0).
    let u: f64 = rng.gen();
    -mean * (1.0 - u).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical_moments(dist: &ServiceDistribution, n: usize) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(42);
        let samples: Vec<f64> = (0..n)
            .map(|_| dist.sample(&mut rng).as_nanos() as f64)
            .collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        (mean, var)
    }

    #[test]
    fn deterministic_is_constant() {
        let d = ServiceDistribution::Deterministic { ns: 500 };
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng).as_nanos(), 500);
        }
        assert_eq!(d.mean_ns(), 500.0);
        assert_eq!(d.variance_ns2(), 0.0);
        assert_eq!(d.scv(), 0.0);
    }

    #[test]
    fn exponential_moments_match() {
        let d = ServiceDistribution::Exponential { mean_ns: 400.0 };
        let (m, v) = empirical_moments(&d, 200_000);
        assert!((m - 400.0).abs() / 400.0 < 0.02, "mean {m}");
        assert!((v - 160_000.0).abs() / 160_000.0 < 0.05, "var {v}");
        assert!((d.scv() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hyperexponential_moments_match() {
        let d = ServiceDistribution::HyperExponential {
            fast_mean_ns: 300.0,
            slow_mean_ns: 2_000.0,
            p_slow: 0.1,
        };
        let expect_mean = 0.9 * 300.0 + 0.1 * 2_000.0;
        let (m, v) = empirical_moments(&d, 400_000);
        assert!((m - expect_mean).abs() / expect_mean < 0.02, "mean {m}");
        assert!(
            (v - d.variance_ns2()).abs() / d.variance_ns2() < 0.06,
            "var {v} expect {}",
            d.variance_ns2()
        );
        // The hyperexponential must be over-dispersed relative to the
        // exponential — that is why we use it for the heavy idle tail.
        assert!(d.scv() > 1.0);
    }

    #[test]
    fn uniform_moments_match() {
        let d = ServiceDistribution::Uniform {
            lo_ns: 100,
            hi_ns: 300,
        };
        let (m, v) = empirical_moments(&d, 200_000);
        assert!((m - 200.0).abs() < 2.0);
        assert!((v - d.variance_ns2()).abs() / d.variance_ns2() < 0.05);
    }

    #[test]
    fn base_with_tail_moments_match() {
        let d = ServiceDistribution::BaseWithTail {
            base_ns: 300,
            tail_mean_ns: 1_500.0,
            p_tail: 0.05,
        };
        assert!((d.mean_ns() - 375.0).abs() < 1e-9);
        let (m, v) = empirical_moments(&d, 400_000);
        assert!((m - d.mean_ns()).abs() / d.mean_ns() < 0.02, "mean {m}");
        assert!(
            (v - d.variance_ns2()).abs() / d.variance_ns2() < 0.08,
            "var {v} expect {}",
            d.variance_ns2()
        );
        // The defining property: the minimum hugs the base.
        let mut rng = StdRng::seed_from_u64(3);
        let min = (0..10_000)
            .map(|_| d.sample(&mut rng).as_nanos())
            .min()
            .unwrap();
        assert_eq!(min, 300);
    }

    #[test]
    fn samples_are_never_zero() {
        let d = ServiceDistribution::Exponential { mean_ns: 0.5 };
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            assert!(d.sample(&mut rng).as_nanos() >= 1);
        }
    }

    #[test]
    fn seeded_sampling_is_deterministic() {
        let d = ServiceDistribution::HyperExponential {
            fast_mean_ns: 300.0,
            slow_mean_ns: 2_000.0,
            p_slow: 0.05,
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(99);
            (0..64).map(|_| d.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
