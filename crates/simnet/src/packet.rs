//! Packets and messages.
//!
//! The fabric deals in *messages* (what a rank sends) and *packets* (what
//! the switch routes). A message is segmented into MTU-sized packets at the
//! source NIC — the property the paper's Fig. 1 builds on: "application
//! messages are broken up into multiple small (few KB) packets and sent to
//! the network switch".

use crate::time::SimTime;

/// Identifies a compute node attached to the switch (also its port index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node index as a usize, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Unique identifier of a message within one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MessageId(pub u64);

/// A message handed to the fabric by the upper layer.
///
/// The fabric is deliberately payload-free: only sizes and identifiers move
/// through the simulation, never data bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Message {
    /// Fabric-assigned identifier, returned by `Fabric::send_message`.
    pub id: MessageId,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// One MTU-or-smaller unit routed by the switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// The message this packet belongs to.
    pub msg: MessageId,
    /// Index of this packet within its message (0-based).
    pub index: u32,
    /// True for the final packet of the message.
    pub last: bool,
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Bytes carried by this packet (≤ MTU; the last packet may be short).
    pub bytes: u64,
    /// When the packet was enqueued at the source NIC (message send time).
    pub created: SimTime,
}

/// Splits `bytes` into MTU-sized chunks; the final chunk carries the
/// remainder. A zero-byte message still produces one (empty) packet so that
/// zero-payload control messages (barrier tokens, eager headers) transit the
/// switch like any other traffic.
pub fn segment_sizes(bytes: u64, mtu: u64) -> Vec<u64> {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(mtu > 0, "MTU must be positive");
    if bytes == 0 {
        return vec![0];
    }
    let full = (bytes / mtu) as usize;
    let rem = bytes % mtu;
    let mut out = Vec::with_capacity(full + usize::from(rem > 0));
    out.extend(std::iter::repeat_n(mtu, full));
    if rem > 0 {
        out.push(rem);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn segmentation_exact_multiple() {
        assert_eq!(segment_sizes(8192, 4096), vec![4096, 4096]);
    }

    #[test]
    fn segmentation_with_remainder() {
        assert_eq!(segment_sizes(5000, 4096), vec![4096, 904]);
    }

    #[test]
    fn segmentation_small_message_is_single_packet() {
        // The paper's ImpactB probes are 1 KB "to ensure that they are
        // communicated via a single network packet".
        assert_eq!(segment_sizes(1024, 4096), vec![1024]);
    }

    #[test]
    fn zero_byte_message_is_one_empty_packet() {
        assert_eq!(segment_sizes(0, 4096), vec![0]);
    }

    proptest! {
        /// Segmentation conserves bytes and respects the MTU.
        #[test]
        fn prop_segmentation_conserves_bytes(bytes in 0u64..1_000_000, mtu in 1u64..10_000) {
            let segs = segment_sizes(bytes, mtu);
            prop_assert_eq!(segs.iter().sum::<u64>(), bytes);
            prop_assert!(segs.iter().all(|&s| s <= mtu));
            // Only the last packet may be short.
            for s in &segs[..segs.len().saturating_sub(1)] {
                prop_assert_eq!(*s, mtu);
            }
        }
    }
}
