//! Deterministic fault injection: lossy links, down windows, degraded
//! links, and misbehaving routing servers.
//!
//! A [`FaultPlan`] rides on [`SwitchConfig`](crate::SwitchConfig) and is
//! strictly opt-in: the default [`FaultPlan::none`] adds no events, draws
//! no random numbers, and leaves every run byte-identical to a fabric
//! built without the fault layer. When a plan is present, all loss draws
//! come from a **dedicated** RNG seeded from [`FaultPlan::seed`], so the
//! service-time stream of the main fabric RNG is untouched and two runs
//! with the same seeds and the same plan are bit-identical.
//!
//! Faults are described against [`LinkSelector`]s and resolved at fabric
//! construction into per-[`LinkId`] state. A link is one direction of one
//! cable:
//!
//! * [`LinkId::NodeUp`] — node → its leaf switch,
//! * [`LinkId::NodeDown`] — leaf switch → node,
//! * [`LinkId::Trunk`] — switch → switch (fat-tree only).
//!
//! The fault layer models four link pathologies and two server
//! pathologies:
//!
//! * **loss** — each packet crossing the link is dropped independently
//!   with probability `loss`;
//! * **down windows** — every packet crossing during `[from, until)` is
//!   dropped (and the fabric emits
//!   [`Notice::LinkDown`](crate::Notice::LinkDown) /
//!   [`Notice::LinkUp`](crate::Notice::LinkUp) at the edges);
//! * **extra latency** — a fixed addition to the link's propagation
//!   delay;
//! * **bandwidth derating** — the link serializes at
//!   `bandwidth_factor × nominal`;
//! * **server slowdown** — service times at a switch's routing stage are
//!   multiplied by a factor during a window;
//! * **server blackout** — the routing stage freezes during a window:
//!   service started inside it completes only after the window ends.
//!
//! Drops happen *at the wire*, after any credit held for the packet has
//! been released by the sender side, so loss never leaks switch credits.

use crate::config::ConfigError;
use crate::packet::NodeId;
use crate::time::{SimDuration, SimTime};

/// One direction of one physical cable, the unit faults attach to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkId {
    /// Node → leaf-switch direction of a node's cable.
    NodeUp(NodeId),
    /// Leaf-switch → node direction of a node's cable.
    NodeDown(NodeId),
    /// A switch-to-switch wire, identified by its endpoints' switch
    /// indices (leaves first, then spines — see the fabric docs).
    Trunk {
        /// Transmitting switch index.
        from: u32,
        /// Receiving switch index.
        to: u32,
    },
}

/// Which links a [`LinkFault`] applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkSelector {
    /// Every link in the fabric (both node directions and all trunks).
    All,
    /// Both directions of one node's cable.
    Node(NodeId),
    /// Exactly one link.
    Link(LinkId),
}

impl LinkSelector {
    /// True if this selector covers `link`.
    pub fn matches(&self, link: LinkId) -> bool {
        match *self {
            LinkSelector::All => true,
            LinkSelector::Node(n) => {
                matches!(link, LinkId::NodeUp(m) | LinkId::NodeDown(m) if m == n)
            }
            LinkSelector::Link(l) => l == link,
        }
    }
}

/// A half-open interval of simulated time, `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub from: SimTime,
    /// First instant the fault is no longer active.
    pub until: SimTime,
}

impl FaultWindow {
    /// Builds a window; `until` must be after `from` (checked by
    /// [`FaultPlan::validate`]).
    pub fn new(from: SimTime, until: SimTime) -> Self {
        FaultWindow { from, until }
    }

    /// True while the fault is active.
    pub fn contains(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// Degradation of a set of links.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkFault {
    /// Which links this fault covers.
    pub links: LinkSelector,
    /// Independent per-packet drop probability in `[0, 1]`.
    pub loss: f64,
    /// Fixed addition to the link's propagation latency.
    pub extra_latency: SimDuration,
    /// Multiplier on the link's serialization bandwidth, in `(0, 1]`
    /// (1.0 = nominal).
    pub bandwidth_factor: f64,
    /// Windows during which the link drops everything.
    pub down: Vec<FaultWindow>,
}

impl LinkFault {
    /// A no-op fault on `links`; compose with the builder methods.
    pub fn on(links: LinkSelector) -> Self {
        LinkFault {
            links,
            loss: 0.0,
            extra_latency: SimDuration::ZERO,
            bandwidth_factor: 1.0,
            down: Vec::new(),
        }
    }

    /// Sets the per-packet loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Sets the added propagation latency.
    pub fn with_extra_latency(mut self, extra: SimDuration) -> Self {
        self.extra_latency = extra;
        self
    }

    /// Sets the bandwidth derating factor.
    pub fn with_bandwidth_factor(mut self, factor: f64) -> Self {
        self.bandwidth_factor = factor;
        self
    }

    /// Adds a link-down window.
    pub fn with_down(mut self, window: FaultWindow) -> Self {
        self.down.push(window);
        self
    }
}

/// Degradation of one switch's routing stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerFault {
    /// The afflicted switch index.
    pub sw: u32,
    /// Service times drawn while a window is active are multiplied by its
    /// factor (factors stack if windows overlap).
    pub slowdown: Vec<(FaultWindow, f64)>,
    /// Windows during which the routing stage is frozen: service started
    /// inside a blackout completes only after it ends.
    pub blackout: Vec<FaultWindow>,
}

impl ServerFault {
    /// A no-op fault on switch `sw`; compose with the builder methods.
    pub fn on(sw: u32) -> Self {
        ServerFault {
            sw,
            slowdown: Vec::new(),
            blackout: Vec::new(),
        }
    }

    /// Adds a slowdown window multiplying service times by `factor`.
    pub fn with_slowdown(mut self, window: FaultWindow, factor: f64) -> Self {
        self.slowdown.push((window, factor));
        self
    }

    /// Adds a blackout window.
    pub fn with_blackout(mut self, window: FaultWindow) -> Self {
        self.blackout.push(window);
        self
    }
}

/// The complete fault schedule of a run. Default: no faults.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Link-level faults; multiple faults covering one link compose
    /// (losses combine independently, latencies add, factors multiply,
    /// down windows union).
    pub link_faults: Vec<LinkFault>,
    /// Per-switch routing-server faults.
    pub server_faults: Vec<ServerFault>,
    /// Seed of the dedicated fault RNG (loss draws only).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: injects nothing, perturbs nothing.
    pub fn none() -> Self {
        FaultPlan {
            link_faults: Vec::new(),
            server_faults: Vec::new(),
            seed: 0xFA_17,
        }
    }

    /// True when the plan carries no faults at all (the fabric then skips
    /// the fault layer entirely).
    pub fn is_none(&self) -> bool {
        self.link_faults.is_empty() && self.server_faults.is_empty()
    }

    /// Uniform packet loss with probability `loss` on every link.
    pub fn uniform_loss(loss: f64) -> Self {
        FaultPlan::none().with_link_fault(LinkFault::on(LinkSelector::All).with_loss(loss))
    }

    /// Adds a link fault (builder style).
    pub fn with_link_fault(mut self, fault: LinkFault) -> Self {
        self.link_faults.push(fault);
        self
    }

    /// Adds a server fault (builder style).
    pub fn with_server_fault(mut self, fault: ServerFault) -> Self {
        self.server_faults.push(fault);
        self
    }

    /// Replaces the fault-RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Checks the plan against a fabric of `nodes` nodes and
    /// `switch_count` switches.
    pub fn validate(&self, nodes: u32, switch_count: u32) -> Result<(), ConfigError> {
        for lf in &self.link_faults {
            if !(0.0..=1.0).contains(&lf.loss) {
                return Err(ConfigError::InvalidLossProbability { loss: lf.loss });
            }
            if !(lf.bandwidth_factor > 0.0 && lf.bandwidth_factor <= 1.0) {
                return Err(ConfigError::InvalidBandwidthFactor {
                    factor: lf.bandwidth_factor,
                });
            }
            for w in &lf.down {
                check_window(w)?;
            }
            match lf.links {
                LinkSelector::All => {}
                LinkSelector::Node(n)
                | LinkSelector::Link(LinkId::NodeUp(n))
                | LinkSelector::Link(LinkId::NodeDown(n)) => {
                    if n.0 >= nodes {
                        return Err(ConfigError::FaultNodeOutOfRange { node: n.0, nodes });
                    }
                }
                LinkSelector::Link(LinkId::Trunk { from, to }) => {
                    let bad = from.max(to);
                    if bad >= switch_count {
                        return Err(ConfigError::FaultSwitchOutOfRange {
                            sw: bad,
                            switches: switch_count,
                        });
                    }
                }
            }
        }
        for sf in &self.server_faults {
            if sf.sw >= switch_count {
                return Err(ConfigError::FaultSwitchOutOfRange {
                    sw: sf.sw,
                    switches: switch_count,
                });
            }
            for (w, factor) in &sf.slowdown {
                check_window(w)?;
                if !(factor.is_finite() && *factor > 0.0) {
                    return Err(ConfigError::InvalidSlowdownFactor { factor: *factor });
                }
            }
            for w in &sf.blackout {
                check_window(w)?;
            }
        }
        Ok(())
    }
}

fn check_window(w: &FaultWindow) -> Result<(), ConfigError> {
    if w.until <= w.from {
        return Err(ConfigError::EmptyFaultWindow {
            from: w.from,
            until: w.until,
        });
    }
    Ok(())
}

/// Resolved fault state of one concrete link (built by the fabric).
#[derive(Debug, Clone, Default)]
pub(crate) struct LinkState {
    pub(crate) loss: f64,
    pub(crate) extra_latency: SimDuration,
    pub(crate) bandwidth_factor: f64,
    pub(crate) down: Vec<FaultWindow>,
    /// Packets dropped on this link so far.
    pub(crate) drops: u64,
}

impl LinkState {
    pub(crate) fn nominal() -> Self {
        LinkState {
            loss: 0.0,
            extra_latency: SimDuration::ZERO,
            bandwidth_factor: 1.0,
            down: Vec::new(),
            drops: 0,
        }
    }

    /// Folds `fault` into this link's state.
    pub(crate) fn apply(&mut self, fault: &LinkFault) {
        // Independent loss processes compose: survive all to survive.
        self.loss = 1.0 - (1.0 - self.loss) * (1.0 - fault.loss);
        self.extra_latency += fault.extra_latency;
        self.bandwidth_factor *= fault.bandwidth_factor;
        self.down.extend_from_slice(&fault.down);
    }

    pub(crate) fn down_at(&self, t: SimTime) -> bool {
        self.down.iter().any(|w| w.contains(t))
    }

    /// True when this link needs no per-packet attention (it may still
    /// carry derating/latency, checked separately).
    pub(crate) fn never_drops(&self) -> bool {
        self.loss == 0.0 && self.down.is_empty()
    }
}

/// Resolved fault state of one switch's routing stage.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ServerFaultState {
    pub(crate) slowdown: Vec<(FaultWindow, f64)>,
    pub(crate) blackout: Vec<FaultWindow>,
}

impl ServerFaultState {
    pub(crate) fn from_fault(f: &ServerFault) -> Self {
        ServerFaultState {
            slowdown: f.slowdown.clone(),
            blackout: f.blackout.clone(),
        }
    }

    /// Adjusts a freshly drawn service duration for faults active at
    /// `now` (the instant service starts).
    pub(crate) fn adjust(&self, now: SimTime, service: SimDuration) -> SimDuration {
        let mut out = service;
        for (w, factor) in &self.slowdown {
            if w.contains(now) {
                out = out.mul_f64(*factor);
            }
        }
        for w in &self.blackout {
            if w.contains(now) {
                // Frozen until the window ends, then the work happens.
                out += w.until.saturating_since(now);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert!(!FaultPlan::uniform_loss(0.01).is_none());
    }

    #[test]
    fn selectors_match_expected_links() {
        let up = LinkId::NodeUp(NodeId(3));
        let down = LinkId::NodeDown(NodeId(3));
        let trunk = LinkId::Trunk { from: 0, to: 2 };
        assert!(LinkSelector::All.matches(up));
        assert!(LinkSelector::All.matches(trunk));
        assert!(LinkSelector::Node(NodeId(3)).matches(up));
        assert!(LinkSelector::Node(NodeId(3)).matches(down));
        assert!(!LinkSelector::Node(NodeId(2)).matches(up));
        assert!(!LinkSelector::Node(NodeId(3)).matches(trunk));
        assert!(LinkSelector::Link(up).matches(up));
        assert!(!LinkSelector::Link(up).matches(down));
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(SimTime::from_nanos(10), SimTime::from_nanos(20));
        assert!(!w.contains(SimTime::from_nanos(9)));
        assert!(w.contains(SimTime::from_nanos(10)));
        assert!(w.contains(SimTime::from_nanos(19)));
        assert!(!w.contains(SimTime::from_nanos(20)));
    }

    #[test]
    fn link_state_composes_faults() {
        let mut s = LinkState::nominal();
        s.apply(&LinkFault::on(LinkSelector::All).with_loss(0.5));
        s.apply(
            &LinkFault::on(LinkSelector::All)
                .with_loss(0.5)
                .with_bandwidth_factor(0.25)
                .with_extra_latency(SimDuration::from_nanos(100)),
        );
        assert!((s.loss - 0.75).abs() < 1e-12, "independent losses compose");
        assert_eq!(s.extra_latency, SimDuration::from_nanos(100));
        assert!((s.bandwidth_factor - 0.25).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_bad_plans() {
        let nodes = 4;
        let switches = 1;
        let bad_loss = FaultPlan::uniform_loss(1.5);
        assert!(bad_loss.validate(nodes, switches).is_err());

        let bad_factor = FaultPlan::none()
            .with_link_fault(LinkFault::on(LinkSelector::All).with_bandwidth_factor(0.0));
        assert!(bad_factor.validate(nodes, switches).is_err());

        let bad_node = FaultPlan::none()
            .with_link_fault(LinkFault::on(LinkSelector::Node(NodeId(9))).with_loss(0.1));
        assert!(bad_node.validate(nodes, switches).is_err());

        let bad_window =
            FaultPlan::none().with_link_fault(LinkFault::on(LinkSelector::All).with_down(
                FaultWindow::new(SimTime::from_nanos(5), SimTime::from_nanos(5)),
            ));
        assert!(bad_window.validate(nodes, switches).is_err());

        let bad_switch = FaultPlan::none().with_server_fault(
            ServerFault::on(3)
                .with_blackout(FaultWindow::new(SimTime::ZERO, SimTime::from_nanos(1))),
        );
        assert!(bad_switch.validate(nodes, switches).is_err());

        assert!(FaultPlan::uniform_loss(0.01)
            .validate(nodes, switches)
            .is_ok());
    }

    #[test]
    fn server_fault_adjusts_service() {
        let f = ServerFaultState::from_fault(
            &ServerFault::on(0)
                .with_slowdown(
                    FaultWindow::new(SimTime::from_nanos(100), SimTime::from_nanos(200)),
                    3.0,
                )
                .with_blackout(FaultWindow::new(
                    SimTime::from_nanos(500),
                    SimTime::from_nanos(700),
                )),
        );
        let svc = SimDuration::from_nanos(40);
        // Outside every window: unchanged.
        assert_eq!(f.adjust(SimTime::from_nanos(50), svc), svc);
        // Inside the slowdown: tripled.
        assert_eq!(
            f.adjust(SimTime::from_nanos(150), svc),
            SimDuration::from_nanos(120)
        );
        // Inside the blackout starting at 600: frozen 100 ns, then 40 ns.
        assert_eq!(
            f.adjust(SimTime::from_nanos(600), svc),
            SimDuration::from_nanos(140)
        );
    }
}
