//! The monitoring acceptance gates as a test: on the quick study's
//! default seed, every gate of `monitor_study --quick` must hold — the
//! live streaming estimate lands within tolerance of the offline truth
//! on every ladder rung, the CUSUM flags each job arrival and departure
//! within the window budget, and the probe train's overhead on real
//! jobs stays under budget. A second gate pins the closed loop: placing
//! jobs from *probed* latency profiles must realize lower mean stretch
//! than first-fit. Pinned here so `cargo test` catches a pipeline
//! regression without the binary.

use anp_core::{DesBackend, ModelKind, Supervisor};
use anp_monitor::{gate_violations, monitor_records, run_monitor_study, MonitorOpts};
use anp_sched::{measure_truth_supervised, records, run_suite, PolicySpec, StudyOpts};

#[test]
fn quick_monitor_study_passes_every_gate() {
    let opts = MonitorOpts::quick(0xA11CE, 1);
    let report = run_monitor_study(&opts, |_| {}).expect("monitor study must not error");

    let violations = gate_violations(&opts, &report);
    assert!(
        violations.is_empty(),
        "quick monitor gates must all hold:\n{}",
        violations.join("\n")
    );

    assert_eq!(
        report.utilization.len(),
        opts.ladder.len(),
        "one utilization row per ladder rung"
    );
    assert_eq!(
        report.detection.len(),
        opts.detect_apps.len(),
        "one detection row per change-point app"
    );
    assert_eq!(
        report.overhead.len(),
        opts.apps.len(),
        "one overhead row per app"
    );

    // Per-window telemetry must cover every utilization and detection
    // cell, and every record must carry a physical reading.
    let recs = monitor_records(&report);
    assert!(!recs.is_empty(), "v5 monitor records must not be empty");
    for row in &report.utilization {
        assert!(
            recs.iter().any(|r| r.cell == format!("util:{}", row.rung)),
            "missing window records for rung {}",
            row.rung
        );
    }
    for row in &report.detection {
        assert!(
            recs.iter()
                .any(|r| r.cell == format!("detect:{}", row.app.name())),
            "missing window records for app {}",
            row.app.name()
        );
    }
    for r in &recs {
        assert!(r.smooth_mean_us.is_finite() && r.smooth_mean_us > 0.0);
        assert!(r.utilization.is_finite() && (0.0..=1.0).contains(&r.utilization));
    }
}

#[test]
fn probed_placement_beats_first_fit_on_mean_stretch() {
    let mut opts = StudyOpts::quick(0xA11CE, 1);
    opts.cfg.jobs = anp_core::Parallelism::Auto;

    let campaign = measure_truth_supervised(
        &DesBackend,
        &opts.cfg,
        &opts.apps,
        &opts.ladder,
        &Supervisor::none(),
        None,
        |_| {},
    )
    .expect("truth measurement must not error");
    assert!(campaign.is_complete(), "quick truth must complete");
    let truth = campaign.truth.as_ref().expect("complete campaign");

    let specs = [
        PolicySpec::FirstFit,
        PolicySpec::Probed(ModelKind::Queue),
        PolicySpec::Oracle,
    ];
    let outcomes = run_suite(&opts, truth, &specs, |_| {}).unwrap();
    let recs = records(&outcomes);
    let by = |label: &str| {
        recs.iter()
            .find(|r| r.policy == label)
            .unwrap_or_else(|| panic!("no record for {label}"))
    };

    let probed = by("probed:Queue");
    assert!(probed.decisions > 0, "probed policy must decide");
    assert!(
        probed.mean_slowdown_pct < by("first-fit").mean_slowdown_pct,
        "probed Queue placement ({:.2}%) must beat first-fit ({:.2}%)",
        probed.mean_slowdown_pct,
        by("first-fit").mean_slowdown_pct
    );
    assert!(
        probed.regret_pct.is_finite(),
        "probed regret must be finite"
    );
}
