//! The cross-validation acceptance gates as a test: on the Cab-like
//! preset's gated ladder, the flow backend must stay inside its
//! documented error envelope (probe means within 10%, runtime ratios
//! within 15%) and beat the DES by at least the documented speedup
//! floor. This is the same check `backend_xval --quick` runs, pinned
//! here so `cargo test` catches a model regression without the binary.

use anp_bench::xval::{run_xval, MIN_SPEEDUP, PROBE_TOLERANCE, SLOWDOWN_TOLERANCE};
use anp_core::{DesBackend, ExperimentConfig};
use anp_flowsim::FlowBackend;
use anp_workloads::{AppKind, CompressionConfig};

#[test]
fn flow_backend_stays_inside_its_error_envelope_on_the_cab_ladder() {
    let cfg = ExperimentConfig::cab().with_seed(0xA11CE);
    let comps = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(14, 250_000, 1),
        CompressionConfig::new(17, 25_000, 10),
    ];
    let apps = [AppKind::Fftw, AppKind::Milc];
    let report = run_xval(&cfg, &apps, &comps, &DesBackend, &FlowBackend).unwrap();

    assert!(
        report.max_probe_err() <= PROBE_TOLERANCE,
        "probe-mean error {:.1}% exceeds {:.0}% tolerance",
        report.max_probe_err() * 100.0,
        PROBE_TOLERANCE * 100.0
    );
    assert!(
        report.max_slowdown_err() <= SLOWDOWN_TOLERANCE,
        "runtime-ratio error {:.1}% exceeds {:.0}% tolerance",
        report.max_slowdown_err() * 100.0,
        SLOWDOWN_TOLERANCE * 100.0
    );
    assert!(report.within_tolerance());
    assert!(
        report.speedup() >= MIN_SPEEDUP,
        "flow speedup {:.1}x below the {MIN_SPEEDUP:.0}x floor \
         (des {:.2}s vs flow {:.2}s)",
        report.speedup(),
        report.des_telemetry.wall_secs,
        report.flow_telemetry.wall_secs
    );
}
