//! The scheduling acceptance gates as a test: on the quick study's
//! default seed set, the Queue-model predictive policy must realize
//! strictly lower mean stretch than the Random and FirstFit baselines,
//! every policy must carry a finite regret anchored at zero on the
//! oracle, and a flow-backed decision must be at least 10x cheaper than
//! a DES-backed one. This is the same story `sched_study --quick`
//! prints, pinned here so `cargo test` catches a policy or engine
//! regression without the binary.

use anp_core::{Backend, DesBackend, ModelKind, Supervisor, WorkloadSpec};
use anp_flowsim::FlowBackend;
use anp_sched::{
    measure_truth_supervised, records, run_suite, DecisionEngine, PolicySpec, StudyOpts,
};

#[test]
fn predictive_scheduling_beats_naive_baselines_with_cheap_decisions() {
    let mut opts = StudyOpts::quick(0xA11CE, 1);
    opts.cfg.jobs = anp_core::Parallelism::Auto;

    let campaign = measure_truth_supervised(
        &DesBackend,
        &opts.cfg,
        &opts.apps,
        &opts.ladder,
        &Supervisor::none(),
        None,
        |_| {},
    )
    .expect("truth measurement must not error");
    assert!(
        campaign.is_complete(),
        "unsupervised quick truth must complete ({}/{} cells)",
        campaign.completed,
        campaign.total
    );
    let truth = campaign.truth.as_ref().expect("complete campaign");

    // Precompute the flow engine's app descriptors, as a deployment
    // would: the first-ever extraction per app is a one-time cost, not
    // part of a placement decision.
    for &app in &opts.apps {
        FlowBackend
            .measure_impact_profile(&opts.cfg, WorkloadSpec::App(app))
            .expect("flow profile");
    }

    let specs = [
        PolicySpec::FirstFit,
        PolicySpec::Random,
        PolicySpec::Predictive(ModelKind::Queue, DecisionEngine::Flow),
        PolicySpec::Predictive(ModelKind::Queue, DecisionEngine::Des),
        PolicySpec::Oracle,
    ];
    let outcomes = run_suite(&opts, truth, &specs, |_| {}).unwrap();
    let recs = records(&outcomes);
    assert_eq!(recs.len(), specs.len(), "one record per policy");

    let by = |label: &str| {
        recs.iter()
            .find(|r| r.policy == label)
            .unwrap_or_else(|| panic!("no record for {label}"))
    };
    for r in &recs {
        assert!(
            r.regret_pct.is_finite(),
            "{} must carry a finite regret",
            r.policy
        );
    }
    assert_eq!(by("oracle").regret_pct, 0.0, "the oracle anchors regret");

    let q_flow = by("predictive:Queue:flow");
    assert!(
        q_flow.mean_slowdown_pct < by("random").mean_slowdown_pct,
        "Queue-model placement ({:.2}%) must beat random ({:.2}%)",
        q_flow.mean_slowdown_pct,
        by("random").mean_slowdown_pct
    );
    assert!(
        q_flow.mean_slowdown_pct < by("first-fit").mean_slowdown_pct,
        "Queue-model placement ({:.2}%) must beat first-fit ({:.2}%)",
        q_flow.mean_slowdown_pct,
        by("first-fit").mean_slowdown_pct
    );

    let q_des = by("predictive:Queue:des");
    assert!(q_flow.decisions > 0 && q_des.decisions > 0);
    let flow_per = q_flow.decision_wall_secs / q_flow.decisions as f64;
    let des_per = q_des.decision_wall_secs / q_des.decisions as f64;
    assert!(
        flow_per * 10.0 <= des_per,
        "flow-backed decisions ({:.3}ms) must be at least 10x cheaper \
         than DES-backed ones ({:.3}ms)",
        flow_per * 1e3,
        des_per * 1e3
    );
}
