//! Criterion benchmarks of the discrete-event core: event-queue
//! scheduling/popping and the full packet path through the fabric.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use anp_simnet::{drain, EventQueue, Fabric, NetEvent, NodeId, SimTime, SwitchConfig};

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    for n in [1_000u64, 100_000] {
        g.throughput(Throughput::Elements(n));
        g.bench_function(format!("schedule_pop_{n}"), |b| {
            b.iter_batched(
                EventQueue::<u64>::new,
                |mut q| {
                    // Interleaved times exercise heap reordering.
                    for i in 0..n {
                        q.schedule_at(SimTime::from_nanos((i * 7919) % (n * 4)), i);
                    }
                    let mut acc = 0u64;
                    while let Some((_, e)) = q.pop() {
                        acc = acc.wrapping_add(e);
                    }
                    acc
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_fabric_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    g.bench_function("single_packet_end_to_end", |b| {
        b.iter_batched(
            || {
                (
                    Fabric::new(SwitchConfig::tiny_deterministic()),
                    EventQueue::<NetEvent>::new(),
                )
            },
            |(mut fab, mut q)| {
                fab.send_message(&mut q, 0, NodeId(0), NodeId(1), 512);
                drain(&mut fab, &mut q, SimTime::from_secs(1)).len()
            },
            BatchSize::SmallInput,
        );
    });

    // Sustained many-sender load at Cab scale: measures events/sec of the
    // whole switch model under contention.
    let msgs = 2_000u64;
    g.throughput(Throughput::Elements(msgs));
    g.bench_function("cab_contended_2000_msgs", |b| {
        b.iter_batched(
            || {
                (
                    Fabric::new(SwitchConfig::cab().with_seed(1)),
                    EventQueue::<NetEvent>::new(),
                )
            },
            |(mut fab, mut q)| {
                for i in 0..msgs {
                    fab.send_message(
                        &mut q,
                        i % 36,
                        NodeId((i % 18) as u32),
                        NodeId(((i + 7) % 18) as u32),
                        4096 * 3,
                    );
                }
                drain(&mut fab, &mut q, SimTime::from_secs(10)).len()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_event_queue, bench_fabric_path);
criterion_main!(benches);
