//! Criterion benchmarks of the statistics and model kernels: histogram
//! construction, the PDFLT overlap integral, quantiles, the P-K inversion,
//! and full model prediction against a realistic look-up table.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use anp_core::{all_models, Calibration, LatencyProfile, MuPolicy};
use anp_metrics::{linear_fit, quantile, Histogram, OnlineStats};

fn synthetic_samples(n: usize, shift: f64) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 + shift + ((i * 2_654_435_761) % 1000) as f64 / 400.0)
        .collect()
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    let samples = synthetic_samples(100_000, 0.0);
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("histogram_fill_100k", |b| {
        b.iter(|| {
            let mut h = Histogram::latency_us();
            h.extend(samples.iter().copied());
            h.total()
        });
    });
    g.bench_function("welford_100k", |b| {
        b.iter(|| OnlineStats::from_slice(&samples).variance());
    });

    let ha = Histogram::of(&synthetic_samples(10_000, 0.0), 0.0, 10.0, 20);
    let hb = Histogram::of(&synthetic_samples(10_000, 0.8), 0.0, 10.0, 20);
    g.bench_function("pdf_product_integral", |b| {
        b.iter(|| ha.pdf_product_integral(&hb));
    });

    let small = synthetic_samples(10_000, 0.0);
    g.bench_function("quantile_10k", |b| {
        b.iter(|| quantile(&small, 0.75).unwrap());
    });

    let xs: Vec<f64> = (0..1_000).map(f64::from).collect();
    let ys: Vec<f64> = xs.iter().map(|x| 2.0 * x + 3.0).collect();
    g.bench_function("linear_fit_1k", |b| {
        b.iter(|| linear_fit(&xs, &ys).unwrap().slope);
    });
    g.finish();
}

fn bench_queue_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("queue_model");
    let calib = Calibration {
        mu: 0.83,
        var_s: 0.12,
        idle_mean: 1.28,
        policy: MuPolicy::MinLatency,
    };
    g.bench_function("pk_inversion", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 1..1_000 {
                acc += calib.utilization_from_sojourn(1.0 + i as f64 * 0.01);
            }
            acc
        });
    });
    g.bench_function("profile_build_2k", |b| {
        let samples = synthetic_samples(2_000, 0.5);
        b.iter(|| LatencyProfile::from_samples(&samples).mean());
    });
    g.finish();
}

fn bench_model_prediction(c: &mut Criterion) {
    use anp_core::{CompressionEntry, LookupTable};
    use anp_workloads::{AppKind, CompressionConfig};
    use std::collections::BTreeMap;

    let calib = Calibration {
        mu: 0.83,
        var_s: 0.12,
        idle_mean: 1.28,
        policy: MuPolicy::MinLatency,
    };
    // A 40-entry table like the real study's.
    let entries: Vec<CompressionEntry> = (0..40)
        .map(|i| {
            let profile = LatencyProfile::from_samples(&synthetic_samples(2_000, i as f64 * 0.2));
            let utilization = calib.utilization(&profile);
            let slowdown: BTreeMap<AppKind, f64> = AppKind::ALL
                .iter()
                .map(|&a| (a, utilization * 100.0 * (a as usize + 1) as f64 / 6.0))
                .collect();
            CompressionEntry {
                config: CompressionConfig::new(1, 25_000 * (i + 1), 1),
                profile,
                utilization,
                slowdown,
            }
        })
        .collect();
    let solo = AppKind::ALL
        .iter()
        .map(|&a| (a, anp_simnet::SimDuration::from_millis(100)))
        .collect();
    let table = LookupTable::from_parts(calib, entries, solo);
    let probe = LatencyProfile::from_samples(&synthetic_samples(2_000, 1.7));

    let mut g = c.benchmark_group("models");
    for model in all_models() {
        g.bench_function(format!("predict_{}", model.name()), |b| {
            b.iter_batched(
                || (),
                |()| model.predict(&table, AppKind::Fftw, &probe),
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_metrics,
    bench_queue_model,
    bench_model_prediction
);
criterion_main!(benches);
