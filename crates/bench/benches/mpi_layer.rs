//! Criterion benchmarks of the message-passing layer: point-to-point
//! matching, collective lowering, and world throughput on a representative
//! exchange.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use anp_simmpi::coll::{expand_allreduce, expand_alltoall};
use anp_simmpi::p2p::{Envelope, Mailbox};
use anp_simmpi::{Op, Program, Scripted, Src, World};
use anp_simnet::{NodeId, SimTime, SwitchConfig};

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("p2p_matching");
    let n = 10_000u32;
    g.throughput(Throughput::Elements(u64::from(n)));
    g.bench_function("post_then_deliver_in_order", |b| {
        b.iter_batched(
            Mailbox::default,
            |mut mb| {
                for i in 0..n {
                    mb.post(Src::Rank(i % 64), i % 8);
                }
                let mut matched = 0u32;
                for i in 0..n {
                    if mb.deliver(Envelope {
                        src: i % 64,
                        tag: i % 8,
                        bytes: 64,
                        rendezvous: None,
                    }) {
                        matched += 1;
                    }
                }
                matched
            },
            BatchSize::SmallInput,
        );
    });
    g.bench_function("unexpected_queue_scan", |b| {
        b.iter_batched(
            || {
                let mut mb = Mailbox::default();
                for i in 0..1_000u32 {
                    mb.deliver(Envelope {
                        src: i % 64,
                        tag: 0,
                        bytes: 64,
                        rendezvous: None,
                    });
                }
                mb
            },
            |mut mb| {
                let mut hits = 0u32;
                for i in 0..1_000u32 {
                    if mb.post(Src::Rank(i % 64), 0).is_some() {
                        hits += 1;
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

fn bench_collective_lowering(c: &mut Criterion) {
    let mut g = c.benchmark_group("collective_lowering");
    g.bench_function("allreduce_expansion_144", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for local in 0..144 {
                total += expand_allreduce(local, 144, 1024, 0).len();
            }
            total
        });
    });
    g.bench_function("alltoall_expansion_144", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for local in 0..144 {
                total += expand_alltoall(local, 144, 1024, 0).len();
            }
            total
        });
    });
    g.finish();
}

fn bench_world_exchange(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    // A 36-rank allreduce on the Cab fabric: the cost of one collective
    // through the whole stack (lowering + matching + network).
    g.bench_function("allreduce_36_ranks_cab", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(SwitchConfig::cab().with_seed(2));
                let members: Vec<(Box<dyn Program>, NodeId)> = (0..36u32)
                    .map(|i| {
                        (
                            Box::new(Scripted::new(vec![Op::Allreduce { bytes: 1024 }, Op::Stop]))
                                as Box<dyn Program>,
                            NodeId(i / 2),
                        )
                    })
                    .collect();
                let job = w.add_job("allreduce", members);
                (w, job)
            },
            |(mut w, job)| {
                assert!(w.run_until_job_done(job, SimTime::from_secs(5)).completed());
                w.events_processed()
            },
            BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_matching,
    bench_collective_lowering,
    bench_world_exchange
);
criterion_main!(benches);
