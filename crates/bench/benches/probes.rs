//! Criterion benchmark of a complete small impact experiment: the
//! end-to-end cost of probing the switch, the unit of work every harness
//! repeats dozens of times.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use anp_simmpi::World;
use anp_simnet::{SimDuration, SimTime, SwitchConfig};
use anp_workloads::{build_compressionb, build_impactb, CompressionConfig, ImpactConfig};

fn bench_impact_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);

    g.bench_function("impact_idle_20ms", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(SwitchConfig::cab().with_seed(3));
                let cfg = ImpactConfig {
                    period: SimDuration::from_micros(500),
                    ..ImpactConfig::default()
                };
                let (members, sink) = build_impactb(&cfg, 18);
                w.add_job("impactb", members);
                (w, sink)
            },
            |(mut w, sink)| {
                w.run_until(SimTime::from_millis(20));
                sink.borrow().len()
            },
            BatchSize::SmallInput,
        );
    });

    g.bench_function("impact_under_compression_10ms", |b| {
        b.iter_batched(
            || {
                let mut w = World::new(SwitchConfig::cab().with_seed(3));
                let cfg = ImpactConfig {
                    period: SimDuration::from_micros(500),
                    ..ImpactConfig::default()
                };
                let (members, sink) = build_impactb(&cfg, 18);
                w.add_job("impactb", members);
                let comp = CompressionConfig::new(7, 2_500_000, 1);
                w.add_job(
                    "compressionb",
                    build_compressionb(&comp, 18, 2, 2_600_000_000),
                );
                (w, sink)
            },
            |(mut w, sink)| {
                w.run_until(SimTime::from_millis(10));
                sink.borrow().len()
            },
            BatchSize::SmallInput,
        );
    });

    g.finish();
}

criterion_group!(benches, bench_impact_experiment);
criterion_main!(benches);
