//! Predictive co-scheduling study (not a paper artefact): a seeded
//! stream of application jobs arrives at a pool of switches, and every
//! placement policy — the three baselines, the four prediction models on
//! the flow engine, the Queue model on the DES engine, and the
//! exhaustive oracle — schedules the *same* streams over the same
//! DES-measured ground truth. Reports mean realized stretch, regret vs
//! the oracle, makespan, SLO violations, and (to stderr / telemetry
//! only) decision latency per engine.
//!
//! The ground truth runs through the supervised sweep engine: failing
//! cells leave typed holes (reported as MISSING lines),
//! `--max-retries` / `--run-budget` / `--event-budget` bound each cell,
//! and `--resume <journal>` makes the campaign crash-safe. Scheduling
//! itself only runs on a complete truth — placing jobs against a grid
//! with holes would silently bias the regret table.
//!
//! ```text
//! cargo run --release -p anp-bench --bin sched_study \
//!     [--quick] [--seed N] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```
//!
//! Exit follows the supervision convention: 0 when every truth cell
//! completed (and the regret table printed), 3 on a partial truth, 1
//! when nothing completed.

use anp_bench::{banner, HarnessOpts};
use anp_core::{ModelKind, Parallelism, SweepTelemetry};
use anp_sched::{
    measure_truth_supervised, records, render_summary, run_suite, DecisionEngine, PolicySpec,
    StudyOpts,
};

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Sched study",
        "predictive co-scheduling regret vs oracle",
        &opts,
    );

    let mut sopts = if opts.quick {
        StudyOpts::quick(opts.seed, opts.jobs.unwrap_or(1))
    } else {
        StudyOpts::full(opts.seed, opts.jobs.unwrap_or(1))
    };
    if opts.jobs.is_none() {
        sopts.cfg.jobs = Parallelism::Auto;
    }

    let backend = match anp_flowsim::backend_from_name(&opts.backend) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = backend.validate(&sopts.cfg) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }

    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let campaign = measure_truth_supervised(
        backend.as_ref(),
        &sopts.cfg,
        &sopts.apps,
        &sopts.ladder,
        &supervisor,
        journal.as_ref(),
        |line| println!("  [truth] {line}"),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let sweeps: Vec<&SweepTelemetry> = campaign.telemetry.iter().collect();

    if !campaign.is_complete() {
        campaign.report(|line| eprintln!("{line}"));
        eprintln!("truth incomplete: scheduling skipped (a holed pair grid would bias regret)");
        opts.emit_bench_json("sched_study", &sweeps);
        std::process::exit(campaign.exit_code());
    }
    let truth = campaign
        .truth
        .as_ref()
        .expect("complete campaign has truth");

    // The default suite plus the Queue model on the DES engine, so the
    // telemetry carries a flow-vs-DES decision-latency comparison.
    let mut specs = anp_sched::default_specs();
    specs.push(PolicySpec::Predictive(
        ModelKind::Queue,
        DecisionEngine::Des,
    ));

    let outcomes = run_suite(&sopts, truth, &specs, |line| println!("  [sched] {line}"))
        .unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    println!();
    print!("{}", render_summary(&outcomes));

    // Wall-clock comparison goes to stderr only: stdout stays
    // byte-identical across machines and worker counts.
    let per_decision = |spec: PolicySpec| {
        outcomes
            .iter()
            .find(|o| o.spec == spec)
            .filter(|o| o.decisions > 0)
            .map(|o| o.decision_wall.as_secs_f64() / o.decisions as f64)
    };
    if let (Some(flow), Some(des)) = (
        per_decision(PolicySpec::Predictive(
            ModelKind::Queue,
            DecisionEngine::Flow,
        )),
        per_decision(PolicySpec::Predictive(
            ModelKind::Queue,
            DecisionEngine::Des,
        )),
    ) {
        eprintln!(
            "decision latency (Queue model): flow {:.3}ms vs des {:.3}ms per decision ({:.0}x)",
            flow * 1e3,
            des * 1e3,
            des / flow
        );
    }

    opts.emit_bench_json_sched("sched_study", &sweeps, &records(&outcomes));
    std::process::exit(campaign.exit_code());
}
