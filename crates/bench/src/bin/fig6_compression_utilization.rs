//! Reproduces **Fig. 6**: switch utilization achieved by every
//! CompressionB configuration (P ∈ {1,4,7,14,17}, B ∈ {2.5e4..2.5e7}
//! cycles, M ∈ {1,10}) on the simulated Cab switch.
//!
//! The per-configuration impact runs are independent simulations, so
//! they fan out across the sweep engine (`--jobs N`) under the
//! supervision envelope: failing cells print `-` rows while every
//! sibling completes, `--max-retries` / `--run-budget` /
//! `--event-budget` bound each cell, and `--resume <journal>` makes the
//! sweep crash-safe (exit code 0 complete, 3 partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig6_compression_utilization \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, impact_profile_of_compression,
    sweep_supervised, JournalError, MuPolicy,
};

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Fig. 6", "switch usage of the CompressionB sweep", &opts);
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    println!(
        "calibration: mu={:.4}/us  Var(S)={:.4}us^2  idle mean={:.3}us",
        calib.mu, calib.var_s, calib.idle_mean
    );
    println!();

    let sweep = opts.compression_sweep();
    let tasks: Vec<(String, _)> = sweep
        .iter()
        .map(|comp| {
            let cfg = &cfg;
            (format!("impact:{}", comp.label()), move || {
                impact_profile_of_compression(cfg, comp)
            })
        })
        .collect();
    let (profiles, telemetry) = sweep_supervised(
        "fig6-impacts",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        tasks,
    )
    .unwrap_or_else(|e| die(e));
    let mut supervision = Supervision::default();
    supervision.absorb(
        profiles
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&profiles),
        profiles.len(),
    );

    println!(
        "{:<7} {:<12} {:<5} {:>10} {:>8}  bar",
        "P", "B (cycles)", "M", "mean (us)", "util"
    );
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (comp, cell) in sweep.iter().zip(&profiles) {
        match cell {
            Ok(p) => {
                let u = calib.utilization(p);
                lo = lo.min(u);
                hi = hi.max(u);
                println!(
                    "{:<7} {:<12} {:<5} {:>10.3} {:>7.1}%  {}",
                    comp.partners,
                    format!("{:.1e}", comp.bubble_cycles as f64),
                    comp.messages,
                    p.mean(),
                    u * 100.0,
                    "=".repeat((u * 40.0).round() as usize)
                );
            }
            Err(_) => println!(
                "{:<7} {:<12} {:<5} {:>10} {:>8}  -",
                comp.partners,
                format!("{:.1e}", comp.bubble_cycles as f64),
                comp.messages,
                "-",
                "-"
            ),
        }
    }
    println!();
    if lo.is_finite() {
        println!(
            "covered utilization range: {:.1}% .. {:.1}%  (paper: 26% .. 92%)",
            lo * 100.0,
            hi * 100.0
        );
    } else {
        println!("covered utilization range: unavailable (no cell completed)");
    }
    println!("Paper shape check: utilization is driven primarily by the bubble");
    println!("size B (smaller bubbles -> higher utilization), secondarily by");
    println!("partner count P and message count M.");
    opts.emit_bench_json("fig6_compression_utilization", &[&telemetry]);
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
