//! Reproduces **Fig. 6**: switch utilization achieved by every
//! CompressionB configuration (P ∈ {1,4,7,14,17}, B ∈ {2.5e4..2.5e7}
//! cycles, M ∈ {1,10}) on the simulated Cab switch.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig6_compression_utilization [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{calibrate, impact_profile_of_compression, MuPolicy};

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Fig. 6", "switch usage of the CompressionB sweep", &opts);
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    println!(
        "calibration: mu={:.4}/us  Var(S)={:.4}us^2  idle mean={:.3}us",
        calib.mu, calib.var_s, calib.idle_mean
    );
    println!();
    println!(
        "{:<7} {:<12} {:<5} {:>10} {:>8}  bar",
        "P", "B (cycles)", "M", "mean (us)", "util"
    );

    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for comp in opts.compression_sweep() {
        let p = impact_profile_of_compression(&cfg, &comp).expect("impact of compression");
        let u = calib.utilization(&p);
        lo = lo.min(u);
        hi = hi.max(u);
        println!(
            "{:<7} {:<12} {:<5} {:>10.3} {:>7.1}%  {}",
            comp.partners,
            format!("{:.1e}", comp.bubble_cycles as f64),
            comp.messages,
            p.mean(),
            u * 100.0,
            "=".repeat((u * 40.0).round() as usize)
        );
    }
    println!();
    println!(
        "covered utilization range: {:.1}% .. {:.1}%  (paper: 26% .. 92%)",
        lo * 100.0,
        hi * 100.0
    );
    println!("Paper shape check: utilization is driven primarily by the bubble");
    println!("size B (smaller bubbles -> higher utilization), secondarily by");
    println!("partner count P and message count M.");
}
