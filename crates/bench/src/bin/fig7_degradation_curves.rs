//! Reproduces **Fig. 7**: per-application % performance degradation as a
//! function of the % switch utilization removed by CompressionB, with the
//! paper's linear trend fit per application.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig7_degradation_curves [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, degradation_percent, impact_profile_of_compression, runtime_under_compression,
    solo_runtime, MuPolicy,
};
use anp_metrics::linear_fit;

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Fig. 7",
        "performance degradation vs switch utilization",
        &opts,
    );
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");

    // Measure each configuration's utilization once.
    let sweep = opts.compression_sweep();
    let mut utils = Vec::with_capacity(sweep.len());
    for comp in &sweep {
        let p = impact_profile_of_compression(&cfg, comp).expect("impact of compression");
        utils.push(calib.utilization(&p) * 100.0);
    }

    for app in opts.apps() {
        let solo = solo_runtime(&cfg, app).expect("solo runtime");
        println!("{} (solo {}):", app.name(), solo);
        println!("  {:>6}  {:>8}  {:<16}", "util", "degr", "config");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (comp, util) in sweep.iter().zip(&utils) {
            let t = runtime_under_compression(&cfg, app, comp).expect("compression runtime");
            let d = degradation_percent(solo, t);
            xs.push(*util);
            ys.push(d);
            println!("  {:>5.1}%  {:>+7.1}%  {}", util, d, comp.label());
        }
        match linear_fit(&xs, &ys) {
            Some(fit) => println!(
                "  trend: degr% = {:.3} * util% {:+.1}   (R^2 = {:.2})",
                fit.slope, fit.intercept, fit.r2
            ),
            None => println!("  trend: (not enough spread to fit)"),
        }
        println!();
    }

    println!("Paper shape check: FFTW and VPFFT degrade steepest (>100% at the");
    println!("top of the range), MILC is intermediate, Lulesh mild (~10-15%),");
    println!("MCB and AMG nearly flat (<5%).");
}
