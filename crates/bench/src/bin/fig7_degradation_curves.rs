//! Reproduces **Fig. 7**: per-application % performance degradation as a
//! function of the % switch utilization removed by CompressionB, with the
//! paper's linear trend fit per application.
//!
//! The per-configuration impact runs and the app × config runtime grid
//! are independent simulations; both fan out across the sweep engine
//! (`--jobs N`, default all cores) with index-ordered collection, so the
//! curves are byte-identical for any worker count. Sweep telemetry lands
//! in `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig7_degradation_curves [--quick] [--jobs N]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, degradation_percent, impact_profile_of_compression, runtime_under_compression,
    solo_runtime, sweep_recorded, MuPolicy,
};
use anp_metrics::linear_fit;

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Fig. 7",
        "performance degradation vs switch utilization",
        &opts,
    );
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");

    // Measure each configuration's utilization once — one independent
    // impact run per configuration.
    let sweep = opts.compression_sweep();
    let impact_tasks: Vec<(String, _)> = sweep
        .iter()
        .map(|comp| {
            let cfg = &cfg;
            (format!("impact:{}", comp.label()), move || {
                impact_profile_of_compression(cfg, comp).expect("impact of compression")
            })
        })
        .collect();
    let (profiles, impact_telemetry) = sweep_recorded("fig7-impacts", cfg.jobs, impact_tasks);
    let utils: Vec<f64> = profiles
        .iter()
        .map(|p| calib.utilization(p) * 100.0)
        .collect();

    // Solo baselines plus the full app × config runtime grid, app-major.
    let apps = opts.apps();
    let solo_tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&app| {
            let cfg = &cfg;
            (format!("solo:{}", app.name()), move || {
                solo_runtime(cfg, app).expect("solo runtime")
            })
        })
        .collect();
    let (solos, solo_telemetry) = sweep_recorded("fig7-solos", cfg.jobs, solo_tasks);
    let grid_tasks: Vec<(String, _)> = apps
        .iter()
        .flat_map(|&app| {
            let cfg = &cfg;
            sweep.iter().map(move |comp| {
                (
                    format!("grid:{}:{}", app.name(), comp.label()),
                    move || runtime_under_compression(cfg, app, comp).expect("compression runtime"),
                )
            })
        })
        .collect();
    let (grid, grid_telemetry) = sweep_recorded("fig7-grid", cfg.jobs, grid_tasks);

    let mut grid = grid.into_iter();
    for (app, solo) in apps.iter().zip(&solos) {
        println!("{} (solo {}):", app.name(), solo);
        println!("  {:>6}  {:>8}  {:<16}", "util", "degr", "config");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (comp, util) in sweep.iter().zip(&utils) {
            let t = grid.next().expect("grid cell");
            let d = degradation_percent(*solo, t);
            xs.push(*util);
            ys.push(d);
            println!("  {:>5.1}%  {:>+7.1}%  {}", util, d, comp.label());
        }
        match linear_fit(&xs, &ys) {
            Some(fit) => println!(
                "  trend: degr% = {:.3} * util% {:+.1}   (R^2 = {:.2})",
                fit.slope, fit.intercept, fit.r2
            ),
            None => println!("  trend: (not enough spread to fit)"),
        }
        println!();
    }

    println!("Paper shape check: FFTW and VPFFT degrade steepest (>100% at the");
    println!("top of the range), MILC is intermediate, Lulesh mild (~10-15%),");
    println!("MCB and AMG nearly flat (<5%).");
    opts.emit_bench_json(
        "fig7_degradation_curves",
        &[&impact_telemetry, &solo_telemetry, &grid_telemetry],
    );
}
