//! Reproduces **Fig. 7**: per-application % performance degradation as a
//! function of the % switch utilization removed by CompressionB, with the
//! paper's linear trend fit per application.
//!
//! The per-configuration impact runs and the app × config runtime grid
//! are independent simulations; both fan out across the sweep engine
//! (`--jobs N`, default all cores) with index-ordered collection, so the
//! curves are byte-identical for any worker count. Every cell runs under
//! the supervision envelope: failing cells print `-` rows while every
//! sibling completes, `--max-retries` / `--run-budget` / `--event-budget`
//! bound each cell, and `--resume <journal>` makes the sweep crash-safe
//! (exit code 0 complete, 3 partial, 1 nothing). Sweep telemetry lands
//! in `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig7_degradation_curves \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, degradation_percent,
    impact_profile_of_compression, runtime_under_compression, solo_runtime, sweep_supervised,
    JournalError, MuPolicy,
};
use anp_metrics::linear_fit;

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Fig. 7",
        "performance degradation vs switch utilization",
        &opts,
    );
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let mut supervision = Supervision::default();

    // Measure each configuration's utilization once — one independent
    // impact run per configuration.
    let sweep = opts.compression_sweep();
    let impact_tasks: Vec<(String, _)> = sweep
        .iter()
        .map(|comp| {
            let cfg = &cfg;
            (format!("impact:{}", comp.label()), move || {
                impact_profile_of_compression(cfg, comp)
            })
        })
        .collect();
    let (profiles, impact_telemetry) = sweep_supervised(
        "fig7-impacts",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        impact_tasks,
    )
    .unwrap_or_else(|e| die(e));
    let utils: Vec<Option<f64>> = profiles
        .iter()
        .map(|r| r.as_ref().ok().map(|p| calib.utilization(p) * 100.0))
        .collect();
    supervision.absorb(
        profiles
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&profiles),
        profiles.len(),
    );

    // Solo baselines plus the full app × config runtime grid, app-major.
    let apps = opts.apps();
    let solo_tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&app| {
            let cfg = &cfg;
            (format!("solo:{}", app.name()), move || {
                solo_runtime(cfg, app)
            })
        })
        .collect();
    let (solos, solo_telemetry) = sweep_supervised(
        "fig7-solos",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        solo_tasks,
    )
    .unwrap_or_else(|e| die(e));
    supervision.absorb(
        solos
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&solos),
        solos.len(),
    );
    let grid_tasks: Vec<(String, _)> = apps
        .iter()
        .flat_map(|&app| {
            let cfg = &cfg;
            sweep.iter().map(move |comp| {
                (format!("grid:{}:{}", app.name(), comp.label()), move || {
                    runtime_under_compression(cfg, app, comp)
                })
            })
        })
        .collect();
    let (grid, grid_telemetry) = sweep_supervised(
        "fig7-grid",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        grid_tasks,
    )
    .unwrap_or_else(|e| die(e));
    supervision.absorb(
        grid.iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&grid),
        grid.len(),
    );

    let mut cells = grid.iter();
    for (app, solo) in apps.iter().zip(&solos) {
        match solo {
            Ok(t) => println!("{} (solo {}):", app.name(), t),
            Err(e) => println!("{} (solo failed: {e}):", app.name()),
        }
        println!("  {:>6}  {:>8}  {:<16}", "util", "degr", "config");
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for (comp, util) in sweep.iter().zip(&utils) {
            let cell = cells.next().expect("grid cell");
            match (solo, util, cell) {
                (Ok(solo), Some(util), Ok(t)) => {
                    let d = degradation_percent(*solo, *t);
                    xs.push(*util);
                    ys.push(d);
                    println!("  {:>5.1}%  {:>+7.1}%  {}", util, d, comp.label());
                }
                _ => println!("  {:>6}  {:>8}  {}", "-", "-", comp.label()),
            }
        }
        match linear_fit(&xs, &ys) {
            Some(fit) => println!(
                "  trend: degr% = {:.3} * util% {:+.1}   (R^2 = {:.2})",
                fit.slope, fit.intercept, fit.r2
            ),
            None => println!("  trend: (not enough spread to fit)"),
        }
        println!();
    }

    println!("Paper shape check: FFTW and VPFFT degrade steepest (>100% at the");
    println!("top of the range), MILC is intermediate, Lulesh mild (~10-15%),");
    println!("MCB and AMG nearly flat (<5%).");
    opts.emit_bench_json(
        "fig7_degradation_curves",
        &[&impact_telemetry, &solo_telemetry, &grid_telemetry],
    );
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
