//! Reproduces **Table I**: the measured % performance slowdown of every
//! application when co-run with every application (including itself) on
//! the same switch — 36 directed pairings for the 6 applications.
//!
//! ```text
//! cargo run --release -p anp-bench --bin table1_pair_slowdowns [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{degradation_percent, runtime_under_corun, solo_runtime};

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Table I",
        "measured slowdowns for all combined workloads (%)",
        &opts,
    );
    let cfg = opts.experiment_config();
    let apps = opts.apps();

    let solos: Vec<_> = apps
        .iter()
        .map(|&a| {
            let t = solo_runtime(&cfg, a).expect("solo runtime");
            println!("solo {:<7} {}", a.name(), t);
            t
        })
        .collect();
    println!();

    // Header row: co-runner names.
    print!("{:<8}", "victim\\w");
    for other in &apps {
        print!(" {:>7}", other.name());
    }
    println!();
    for (i, &victim) in apps.iter().enumerate() {
        print!("{:<8}", victim.name());
        for &other in &apps {
            let t = runtime_under_corun(&cfg, victim, other).expect("co-run runtime");
            let d = degradation_percent(solos[i], t);
            print!(" {:>7.0}", d);
        }
        println!();
    }
    println!();
    println!("Rows: the measured application; columns: the co-running one.");
    println!("Paper shape check: the FFT row dominates (45% with itself in the");
    println!("paper), MILC+FFT is the next largest, and rows for Lulesh, MCB");
    println!("and AMG stay in the low single digits.");
}
