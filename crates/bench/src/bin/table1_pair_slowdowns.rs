//! Reproduces **Table I**: the measured % performance slowdown of every
//! application when co-run with every application (including itself) on
//! the same switch — 36 directed pairings for the 6 applications.
//!
//! The solo runtimes and the quadratic pairing grid are independent
//! simulations, so they fan out across the sweep engine's workers
//! (`--jobs N`, default all cores); collection is index-ordered, so the
//! table is byte-identical for any worker count. Every cell runs under
//! the supervision envelope: a panicking or failing cell prints `-` in
//! its table slot while every sibling completes, `--max-retries` /
//! `--run-budget` / `--event-budget` bound each cell, and `--resume
//! <journal>` makes the grid crash-safe (exit code 0 complete, 3
//! partial, 1 nothing). Sweep telemetry lands in `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin table1_pair_slowdowns \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    completed_count, config_fingerprint, degradation_percent, runtime_under_corun, solo_runtime,
    sweep_supervised, JournalError,
};

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Table I",
        "measured slowdowns for all combined workloads (%)",
        &opts,
    );
    let cfg = opts.experiment_config();
    let apps = opts.apps();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };

    // Solo baselines: one independent run per application.
    let solo_tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&a| {
            let cfg = &cfg;
            (format!("solo:{}", a.name()), move || solo_runtime(cfg, a))
        })
        .collect();
    let (solos, solo_telemetry) = sweep_supervised(
        "table1-solos",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        solo_tasks,
    )
    .unwrap_or_else(|e| die(e));
    for (a, r) in apps.iter().zip(&solos) {
        match r {
            Ok(t) => println!("solo {:<7} {}", a.name(), t),
            Err(e) => println!("solo {:<7} (failed: {e})", a.name()),
        }
    }
    println!();

    // The quadratic grid, victim-major — the expensive part of Table I.
    let grid_tasks: Vec<(String, _)> = apps
        .iter()
        .flat_map(|&victim| {
            let cfg = &cfg;
            apps.iter().map(move |&other| {
                (
                    format!("corun:{}+{}", victim.name(), other.name()),
                    move || runtime_under_corun(cfg, victim, other),
                )
            })
        })
        .collect();
    let (grid, grid_telemetry) = sweep_supervised(
        "table1-grid",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        grid_tasks,
    )
    .unwrap_or_else(|e| die(e));

    // Header row: co-runner names. Holes (failed cells, or cells whose
    // solo baseline is missing) render as `-`.
    print!("{:<8}", "victim\\w");
    for other in &apps {
        print!(" {:>7}", other.name());
    }
    println!();
    let mut cells = grid.iter();
    for (i, &victim) in apps.iter().enumerate() {
        print!("{:<8}", victim.name());
        for _ in &apps {
            match (&solos[i], cells.next().expect("grid cell")) {
                (Ok(solo), Ok(t)) => print!(" {:>7.0}", degradation_percent(*solo, *t)),
                _ => print!(" {:>7}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("Rows: the measured application; columns: the co-running one.");
    println!("Paper shape check: the FFT row dominates (45% with itself in the");
    println!("paper), MILC+FFT is the next largest, and rows for Lulesh, MCB");
    println!("and AMG stay in the low single digits.");
    println!();
    println!(
        "grid: {} runs on {} workers in {:.2}s (serial-equivalent {:.2}s, {:.2}x speedup, {:.0} events/s)",
        grid_telemetry.runs.len(),
        grid_telemetry.workers,
        grid_telemetry.wall_secs,
        grid_telemetry.serial_secs(),
        grid_telemetry.speedup(),
        grid_telemetry.events_per_sec(),
    );
    opts.emit_bench_json("table1_pair_slowdowns", &[&solo_telemetry, &grid_telemetry]);

    let mut supervision = Supervision::default();
    supervision.absorb(
        solos
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&solos),
        solos.len(),
    );
    supervision.absorb(
        grid.iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&grid),
        grid.len(),
    );
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
