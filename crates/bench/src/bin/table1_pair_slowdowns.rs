//! Reproduces **Table I**: the measured % performance slowdown of every
//! application when co-run with every application (including itself) on
//! the same switch — 36 directed pairings for the 6 applications.
//!
//! The solo runtimes and the quadratic pairing grid are independent
//! simulations, so they fan out across the sweep engine's workers
//! (`--jobs N`, default all cores); collection is index-ordered, so the
//! table is byte-identical for any worker count. Sweep telemetry lands in
//! `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin table1_pair_slowdowns [--quick] [--jobs N]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{degradation_percent, runtime_under_corun, solo_runtime, sweep_recorded};

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Table I",
        "measured slowdowns for all combined workloads (%)",
        &opts,
    );
    let cfg = opts.experiment_config();
    let apps = opts.apps();

    // Solo baselines: one independent run per application.
    let solo_tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&a| {
            let cfg = &cfg;
            (format!("solo:{}", a.name()), move || {
                solo_runtime(cfg, a).expect("solo runtime")
            })
        })
        .collect();
    let (solos, solo_telemetry) = sweep_recorded("table1-solos", cfg.jobs, solo_tasks);
    for (a, t) in apps.iter().zip(&solos) {
        println!("solo {:<7} {}", a.name(), t);
    }
    println!();

    // The quadratic grid, victim-major — the expensive part of Table I.
    let grid_tasks: Vec<(String, _)> = apps
        .iter()
        .flat_map(|&victim| {
            let cfg = &cfg;
            apps.iter().map(move |&other| {
                (
                    format!("corun:{}+{}", victim.name(), other.name()),
                    move || runtime_under_corun(cfg, victim, other).expect("co-run runtime"),
                )
            })
        })
        .collect();
    let (grid, grid_telemetry) = sweep_recorded("table1-grid", cfg.jobs, grid_tasks);

    // Header row: co-runner names.
    print!("{:<8}", "victim\\w");
    for other in &apps {
        print!(" {:>7}", other.name());
    }
    println!();
    let mut grid = grid.into_iter();
    for (i, &victim) in apps.iter().enumerate() {
        print!("{:<8}", victim.name());
        for _ in &apps {
            let t = grid.next().expect("grid cell");
            let d = degradation_percent(solos[i], t);
            print!(" {:>7.0}", d);
        }
        println!();
    }
    println!();
    println!("Rows: the measured application; columns: the co-running one.");
    println!("Paper shape check: the FFT row dominates (45% with itself in the");
    println!("paper), MILC+FFT is the next largest, and rows for Lulesh, MCB");
    println!("and AMG stay in the low single digits.");
    println!();
    println!(
        "grid: {} runs on {} workers in {:.2}s (serial-equivalent {:.2}s, {:.2}x speedup, {:.0} events/s)",
        grid_telemetry.runs.len(),
        grid_telemetry.workers,
        grid_telemetry.wall_secs,
        grid_telemetry.serial_secs(),
        grid_telemetry.speedup(),
        grid_telemetry.events_per_sec(),
    );
    opts.emit_bench_json("table1_pair_slowdowns", &[&solo_telemetry, &grid_telemetry]);
}
