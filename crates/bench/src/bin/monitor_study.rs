//! Online monitoring study (not a paper artefact): the live probe-train
//! pipeline — streaming EWMA/quantile estimation, P-K inversion, and
//! CUSUM change-point detection — gated against DES ground truth on
//! three axes:
//!
//! * utilization accuracy on the CompressionB gated ladder,
//! * change-point detection latency (in probe windows) around job
//!   arrival/departure episodes,
//! * probe-train overhead on co-running applications.
//!
//! ```text
//! cargo run --release -p anp-bench --bin monitor_study \
//!     [--quick] [--seed N] [--jobs N] [--no-bench-json]
//! ```
//!
//! Exit 0 when every gate holds, 1 on any violation (each printed to
//! stderr). Stdout is wall-clock-free and byte-identical across
//! `--jobs`, like every other harness.

use anp_bench::{banner, HarnessOpts};
use anp_core::Parallelism;
use anp_monitor::{
    gate_violations, monitor_records, render_report, run_monitor_study, MonitorOpts,
};

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Monitor study",
        "online utilization estimation and interference detection",
        &opts,
    );

    let mut mopts = if opts.quick {
        MonitorOpts::quick(opts.seed, opts.jobs.unwrap_or(1))
    } else {
        MonitorOpts::full(opts.seed, opts.jobs.unwrap_or(1))
    };
    if opts.jobs.is_none() {
        mopts.cfg.jobs = Parallelism::Auto;
    }

    let report =
        run_monitor_study(&mopts, |line| println!("  [monitor] {line}")).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(1);
        });

    println!();
    print!("{}", render_report(&mopts, &report));

    let sweeps = [&report.telemetry];
    opts.emit_bench_json_monitor("monitor_study", &sweeps, &monitor_records(&report));

    let violations = gate_violations(&mopts, &report);
    for v in &violations {
        eprintln!("gate violation: {v}");
    }
    if !violations.is_empty() {
        std::process::exit(1);
    }
}
