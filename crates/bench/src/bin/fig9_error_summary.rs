//! Reproduces **Fig. 9**: the quartile summary (min / Q1 / median / Q3 /
//! max box data) of each model's absolute prediction errors across all
//! pairings.
//!
//! Pass the same `--cache <path>` used with `fig8_prediction_errors` to
//! reuse its measurements instead of re-running the whole study.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig9_error_summary [--quick] [--cache study.tsv]
//! ```

use anp_bench::{banner, full_outcomes_supervised, print_error_summary, HarnessOpts};

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Fig. 9", "summary of prediction errors per model", &opts);
    let campaign = full_outcomes_supervised(&opts);
    println!();
    print_error_summary(&campaign.outcomes);
    println!();
    println!("Paper shape check: AverageStDevLT improves on AverageLT; PDFLT");
    println!("matches AverageStDevLT (mean+sd already summarize the PDF); the");
    println!("queue model wins overall, with >75% of its predictions under 10%");
    println!("absolute error in the paper.");
    campaign.supervision.report(opts.resume.as_deref());
    std::process::exit(campaign.supervision.exit_code());
}
