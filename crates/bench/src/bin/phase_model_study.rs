//! Extension study: the **phase-aware queue model** on the pairing the
//! paper could not predict.
//!
//! §V-B identifies the queue model's only significant error: predicting
//! FFTW's slowdown next to AMG. "As AMG executions go through phases that
//! do not significantly use the network, the switch capacity available to
//! FFTW is close to 100 % during a significant portion of its co-run …
//! the queue model has not considered \[this\] as it assumes a constant
//! utilization." This harness implements the fix that discussion implies:
//! evaluate the utilization per time window of the probe series and
//! average the victim's degradation curve over the *distribution* of
//! utilizations instead of its mean.
//!
//! The study measures phased co-runners (AMG and bursty MCB) against
//! network-sensitive victims and compares three predictors: the plain
//! queue model, the phase-aware model, and the measured truth.
//!
//! Every measurement (look-up table, probe series, solo and co-run
//! runtimes) runs as a supervised sweep cell: failing cells print `-`
//! rows while every sibling completes, `--max-retries` / `--run-budget`
//! / `--event-budget` bound each cell, and `--resume <journal>` makes
//! the study crash-safe (exit code 0 complete, 3 partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin phase_model_study \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, degradation_percent, impact_series_of_app,
    runtime_under_corun, solo_runtime, sweep_supervised, CellResult, DesBackend, ExperimentError,
    JournalError, LookupTable, MuPolicy, QueueModel, QueuePhaseModel, SlowdownModel,
};
use anp_simnet::SimDuration;
use anp_workloads::AppKind;

type RuntimeTask<'a> = Box<dyn Fn() -> Result<SimDuration, ExperimentError> + Send + Sync + 'a>;

/// Folds one sweep's holes and counts into the campaign totals.
fn absorb<T>(supervision: &mut Supervision, cells: &[CellResult<T>]) {
    supervision.absorb(
        cells
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(cells),
        cells.len(),
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Phase model",
        "time-aware utilization vs constant-utilization prediction",
        &opts,
    );
    let cfg = opts.experiment_config();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let mut supervision = Supervision::default();

    // Victims: the network-sensitive applications; co-runners: the phased
    // ones whose average footprint misrepresents their instantaneous one.
    let victims = if opts.quick {
        vec![AppKind::Fftw]
    } else {
        vec![AppKind::Fftw, AppKind::Vpfft, AppKind::Milc]
    };
    let phased = [AppKind::Amg, AppKind::Mcb];

    // Look-up table over a reduced sweep (the degradation curves only
    // need enough points to interpolate), measured under supervision:
    // failed cells leave holes; the table interpolates the survivors.
    println!("[measuring look-up table]");
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let sweep = {
        let opts_sweep = HarnessOpts {
            quick: true,
            ..opts.clone()
        };
        opts_sweep.compression_sweep()
    };
    let (lut, lut_telemetry) = LookupTable::measure_supervised_with(
        &DesBackend,
        &cfg,
        calib,
        &victims,
        &sweep,
        &supervisor,
        journal.as_ref(),
        |line| println!("  {line}"),
    )
    .unwrap_or_else(|e| die(e));
    supervision.absorb(lut.failures, lut.completed, lut.total);
    let table = lut.table;

    // One timed impact series per phased co-runner.
    let series_tasks: Vec<(String, _)> = phased
        .iter()
        .map(|&other| {
            let cfg = &cfg;
            (format!("series:{}", other.name()), move || {
                impact_series_of_app(cfg, other)
            })
        })
        .collect();
    let (series_cells, series_telemetry) = sweep_supervised(
        "phase-series",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        series_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &series_cells);

    // Solo baselines plus the victim × co-runner ground-truth grid.
    let mut runtime_tasks: Vec<(String, RuntimeTask<'_>)> = Vec::new();
    for &victim in &victims {
        let cfg = &cfg;
        runtime_tasks.push((
            format!("solo:{}", victim.name()),
            Box::new(move || solo_runtime(cfg, victim)),
        ));
    }
    for &other in &phased {
        for &victim in &victims {
            let cfg = &cfg;
            runtime_tasks.push((
                format!("corun:{}:{}", victim.name(), other.name()),
                Box::new(move || runtime_under_corun(cfg, victim, other)),
            ));
        }
    }
    let (runtimes, runtime_telemetry) = sweep_supervised(
        "phase-runtimes",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        runtime_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &runtimes);

    let phase_model = QueuePhaseModel {
        window: SimDuration::from_millis(10),
        min_samples: 4,
    };

    println!();
    if table.is_none() {
        println!("(no look-up table cell completed: predictions unavailable)");
    }
    println!(
        "{:<8} {:<8} {:>9} {:>9} {:>11} | {:>8} {:>10}",
        "victim", "with", "measured", "Queue", "QueuePhase", "err(Q)", "err(QP)"
    );
    let mut q_errors = Vec::new();
    let mut qp_errors = Vec::new();
    for (oi, &other) in phased.iter().enumerate() {
        let series = series_cells[oi].as_ref().ok();
        match (series, table.as_ref()) {
            (Some(series), Some(table)) => {
                let dist = series.utilization_distribution(
                    &table.calibration,
                    phase_model.window,
                    phase_model.min_samples,
                );
                let u_lo = dist.iter().map(|(u, _)| *u).fold(1.0, f64::min);
                let u_hi = dist.iter().map(|(u, _)| *u).fold(0.0, f64::max);
                println!(
                    "-- {} windows: {} usable, utilization spread {:.0}%..{:.0}% (mean-based reading {:.0}%)",
                    other.name(),
                    dist.len(),
                    u_lo * 100.0,
                    u_hi * 100.0,
                    table.calibration.utilization(&series.profile()) * 100.0
                );
            }
            _ => println!("-- {} windows: -  (series cell failed)", other.name()),
        }
        for (vi, &victim) in victims.iter().enumerate() {
            let solo = runtimes[vi].as_ref().ok();
            let corun = runtimes[victims.len() + oi * victims.len() + vi]
                .as_ref()
                .ok();
            let measured = match (solo, corun) {
                (Some(s), Some(l)) => Some(degradation_percent(*s, *l)),
                _ => None,
            };
            let predictions = match (series, table.as_ref()) {
                (Some(series), Some(table)) => {
                    let q = QueueModel.predict(table, victim, &series.profile());
                    let qp = phase_model.predict_series(table, victim, series);
                    q.zip(qp)
                }
                _ => None,
            };
            match (measured, predictions) {
                (Some(measured), Some((q, qp))) => {
                    q_errors.push((measured - q).abs());
                    qp_errors.push((measured - qp).abs());
                    println!(
                        "{:<8} {:<8} {:>+8.1}% {:>+8.1}% {:>+10.1}% | {:>8.1} {:>10.1}",
                        victim.name(),
                        other.name(),
                        measured,
                        q,
                        qp,
                        (measured - q).abs(),
                        (measured - qp).abs()
                    );
                }
                _ => println!(
                    "{:<8} {:<8} {:>9} {:>9} {:>11} | {:>8} {:>10}",
                    victim.name(),
                    other.name(),
                    measured.map_or("-".to_owned(), |m| format!("{m:+.1}%")),
                    "-",
                    "-",
                    "-",
                    "-"
                ),
            }
        }
    }
    println!();
    if q_errors.is_empty() {
        println!("mean |error|: unavailable (no fully measured pairing)");
    } else {
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "mean |error|: Queue {:.1} pts, QueuePhase {:.1} pts over {} pairings",
            mean(&q_errors),
            mean(&qp_errors),
            q_errors.len()
        );
    }
    println!();
    println!("Expected: for phased co-runners the time-blind queue model");
    println!("over-predicts (it charges the victim for the co-runner's burst");
    println!("utilization all the time); the phase-aware average is closer to");
    println!("the measured slowdown.");
    opts.emit_bench_json(
        "phase_model_study",
        &[&lut_telemetry, &series_telemetry, &runtime_telemetry],
    );
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
