//! Extension study: the **phase-aware queue model** on the pairing the
//! paper could not predict.
//!
//! §V-B identifies the queue model's only significant error: predicting
//! FFTW's slowdown next to AMG. "As AMG executions go through phases that
//! do not significantly use the network, the switch capacity available to
//! FFTW is close to 100 % during a significant portion of its co-run …
//! the queue model has not considered \[this\] as it assumes a constant
//! utilization." This harness implements the fix that discussion implies:
//! evaluate the utilization per time window of the probe series and
//! average the victim's degradation curve over the *distribution* of
//! utilizations instead of its mean.
//!
//! The study measures phased co-runners (AMG and bursty MCB) against
//! network-sensitive victims and compares three predictors: the plain
//! queue model, the phase-aware model, and the measured truth.
//!
//! ```text
//! cargo run --release -p anp-bench --bin phase_model_study [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, degradation_percent, impact_series_of_app, runtime_under_corun, solo_runtime,
    LookupTable, MuPolicy, QueueModel, QueuePhaseModel, SlowdownModel,
};
use anp_simnet::SimDuration;
use anp_workloads::AppKind;

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Phase model",
        "time-aware utilization vs constant-utilization prediction",
        &opts,
    );
    let cfg = opts.experiment_config();

    // Victims: the network-sensitive applications; co-runners: the phased
    // ones whose average footprint misrepresents their instantaneous one.
    let victims = if opts.quick {
        vec![AppKind::Fftw]
    } else {
        vec![AppKind::Fftw, AppKind::Vpfft, AppKind::Milc]
    };
    let phased = [AppKind::Amg, AppKind::Mcb];

    // Look-up table over a reduced sweep (the degradation curves only
    // need enough points to interpolate).
    println!("[measuring look-up table]");
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let sweep = {
        let opts_sweep = HarnessOpts {
            quick: true,
            ..opts.clone()
        };
        opts_sweep.compression_sweep()
    };
    let table = LookupTable::measure(&cfg, calib, &victims, &sweep, |line| {
        println!("  {line}");
    })
    .expect("table");

    let phase_model = QueuePhaseModel {
        window: SimDuration::from_millis(10),
        min_samples: 4,
    };

    println!();
    println!(
        "{:<8} {:<8} {:>9} {:>9} {:>11} | {:>8} {:>10}",
        "victim", "with", "measured", "Queue", "QueuePhase", "err(Q)", "err(QP)"
    );
    let mut q_errors = Vec::new();
    let mut qp_errors = Vec::new();
    for &other in &phased {
        // One timed impact series per phased co-runner.
        let series = impact_series_of_app(&cfg, other).expect("impact series");
        let dist = series.utilization_distribution(
            &table.calibration,
            phase_model.window,
            phase_model.min_samples,
        );
        let u_lo = dist.iter().map(|(u, _)| *u).fold(1.0, f64::min);
        let u_hi = dist.iter().map(|(u, _)| *u).fold(0.0, f64::max);
        println!(
            "-- {} windows: {} usable, utilization spread {:.0}%..{:.0}% (mean-based reading {:.0}%)",
            other.name(),
            dist.len(),
            u_lo * 100.0,
            u_hi * 100.0,
            table.calibration.utilization(&series.profile()) * 100.0
        );
        for &victim in &victims {
            let solo = solo_runtime(&cfg, victim).expect("solo");
            let loaded = runtime_under_corun(&cfg, victim, other).expect("corun");
            let measured = degradation_percent(solo, loaded);
            let q = QueueModel
                .predict(&table, victim, &series.profile())
                .expect("queue prediction");
            let qp = phase_model
                .predict_series(&table, victim, &series)
                .expect("phase prediction");
            q_errors.push((measured - q).abs());
            qp_errors.push((measured - qp).abs());
            println!(
                "{:<8} {:<8} {:>+8.1}% {:>+8.1}% {:>+10.1}% | {:>8.1} {:>10.1}",
                victim.name(),
                other.name(),
                measured,
                q,
                qp,
                (measured - q).abs(),
                (measured - qp).abs()
            );
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!();
    println!(
        "mean |error|: Queue {:.1} pts, QueuePhase {:.1} pts over {} pairings",
        mean(&q_errors),
        mean(&qp_errors),
        q_errors.len()
    );
    println!();
    println!("Expected: for phased co-runners the time-blind queue model");
    println!("over-predicts (it charges the victim for the co-runner's burst");
    println!("utilization all the time); the phase-aware average is closer to");
    println!("the measured slowdown.");
}
