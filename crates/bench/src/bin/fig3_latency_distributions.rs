//! Reproduces **Fig. 3**: distributions of probe packet latencies on an
//! idle switch and while each of the six applications runs.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig3_latency_distributions [--quick]
//! ```

use anp_bench::{banner, render_histogram, HarnessOpts};
use anp_core::{idle_profile, impact_profile_of_app};

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Fig. 3", "distributions of packet latencies on Cab", &opts);
    let cfg = opts.experiment_config();

    let idle = idle_profile(&cfg).expect("idle profile");
    println!(
        "No App  (n={}, mean={:.2}us, sd={:.2}us)",
        idle.count(),
        idle.mean(),
        idle.std_dev()
    );
    println!("{}", render_histogram(&idle));

    for app in opts.apps() {
        let p = impact_profile_of_app(&cfg, app).expect("app impact profile");
        println!(
            "{}  (n={}, mean={:.2}us, sd={:.2}us)",
            app.name(),
            p.count(),
            p.mean(),
            p.std_dev()
        );
        println!("{}", render_histogram(&p));
    }

    println!("Paper shape check: the idle distribution has a sharp mode near");
    println!("1.25us with a small far tail; applications shift mass right by");
    println!("app-specific amounts (all-to-all codes most, MCB via a tail).");
}
