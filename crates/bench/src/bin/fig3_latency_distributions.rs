//! Reproduces **Fig. 3**: distributions of probe packet latencies on an
//! idle switch and while each of the six applications runs.
//!
//! Each distribution is an independent simulation, so the cells fan out
//! across the sweep engine (`--jobs N`) under the supervision envelope:
//! failing cells print `-` rows while every sibling completes,
//! `--max-retries` / `--run-budget` / `--event-budget` bound each cell,
//! and `--resume <journal>` makes the sweep crash-safe (exit code 0
//! complete, 3 partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig3_latency_distributions \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, render_histogram, HarnessOpts, Supervision};
use anp_core::{
    completed_count, config_fingerprint, idle_profile, impact_profile_of_app, sweep_supervised,
    ExperimentError, JournalError, LatencyProfile,
};

type Task<'a> = Box<dyn Fn() -> Result<LatencyProfile, ExperimentError> + Send + Sync + 'a>;

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Fig. 3", "distributions of packet latencies on Cab", &opts);
    let cfg = opts.experiment_config();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };

    // One cell per distribution: the idle baseline plus one per app.
    let apps = opts.apps();
    let mut tasks: Vec<(String, Task<'_>)> =
        vec![("idle".to_owned(), Box::new(|| idle_profile(&cfg)))];
    for &app in &apps {
        let cfg = &cfg;
        tasks.push((
            format!("app:{}", app.name()),
            Box::new(move || impact_profile_of_app(cfg, app)),
        ));
    }
    let (profiles, telemetry) = sweep_supervised(
        "fig3-distributions",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        tasks,
    )
    .unwrap_or_else(|e| die(e));
    let mut supervision = Supervision::default();
    supervision.absorb(
        profiles
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&profiles),
        profiles.len(),
    );

    let names: Vec<String> = std::iter::once("No App".to_owned())
        .chain(apps.iter().map(|a| a.name().to_owned()))
        .collect();
    for (name, cell) in names.iter().zip(&profiles) {
        match cell {
            Ok(p) => {
                println!(
                    "{}  (n={}, mean={:.2}us, sd={:.2}us)",
                    name,
                    p.count(),
                    p.mean(),
                    p.std_dev()
                );
                println!("{}", render_histogram(p));
            }
            Err(e) => {
                println!("{name}  -  (cell failed: {e})");
                println!();
            }
        }
    }

    println!("Paper shape check: the idle distribution has a sharp mode near");
    println!("1.25us with a small far tail; applications shift mass right by");
    println!("app-specific amounts (all-to-all codes most, MCB via a tail).");
    opts.emit_bench_json("fig3_latency_distributions", &[&telemetry]);
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
