//! Substrate calibration report (not a paper artefact): the simulated
//! switch's idle behaviour, the queue-model calibration, and each
//! workload's one-line footprint. Useful when re-tuning `SwitchConfig` or
//! application parameters.
//!
//! The probe, runtime, and phase-tracing cells are independent
//! simulations that fan out across the sweep engine (`--jobs N`) under
//! the supervision envelope: failing cells print `-` entries while every
//! sibling completes, `--max-retries` / `--run-budget` /
//! `--event-budget` bound each cell, and `--resume <journal>` makes the
//! report crash-safe (exit code 0 complete, 3 partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin calibration_report \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, degradation_percent, idle_profile,
    impact_profile_of_app, impact_profile_of_compression, runtime_under_compression, solo_runtime,
    sweep_supervised, ExperimentConfig, ExperimentError, JournalError, LatencyProfile, MuPolicy,
};
use anp_simmpi::World;
use anp_simnet::{SimDuration, SimTime};
use anp_workloads::{AppKind, CompressionConfig, RunMode};

/// Measures the fraction of an app's solo runtime spent blocked on the
/// network (via the world's phase accounting) — the ceiling on how much
/// interference can hurt it.
fn solo_wait_fraction(cfg: &ExperimentConfig, app: AppKind) -> f64 {
    let mut world = World::new(cfg.switch.clone());
    let job = world.add_job(app.name(), app.build(RunMode::Iterations(0), 17));
    world.enable_tracing();
    let outcome = world.run_until_job_done(job, SimTime::ZERO + cfg.run_cap);
    assert!(
        outcome.completed(),
        "solo calibration run did not converge: {outcome:?}"
    );
    world.job_phase_totals(job).waiting_fraction()
}

type ProfileTask<'a> = Box<dyn Fn() -> Result<LatencyProfile, ExperimentError> + Send + Sync + 'a>;
type RuntimeTask<'a> = Box<dyn Fn() -> Result<SimDuration, ExperimentError> + Send + Sync + 'a>;

/// Folds one sweep's holes and counts into the campaign totals.
fn absorb<T>(supervision: &mut Supervision, cells: &[anp_core::CellResult<T>]) {
    supervision.absorb(
        cells
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(cells),
        cells.len(),
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Calibration", "substrate sanity report", &opts);
    let cfg = opts.experiment_config();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let mut supervision = Supervision::default();
    let apps = opts.apps();
    let heavy = CompressionConfig::new(17, 25_000, 10);

    // Probe distributions: the idle baseline, the heaviest CompressionB
    // footprint, and one impact profile per app.
    let mut profile_tasks: Vec<(String, ProfileTask<'_>)> =
        vec![("idle".to_owned(), Box::new(|| idle_profile(&cfg)))];
    {
        let cfg = &cfg;
        let heavy = &heavy;
        profile_tasks.push((
            "impact:heavy".to_owned(),
            Box::new(move || impact_profile_of_compression(cfg, heavy)),
        ));
    }
    for &app in &apps {
        let cfg = &cfg;
        profile_tasks.push((
            format!("profile:{}", app.name()),
            Box::new(move || impact_profile_of_app(cfg, app)),
        ));
    }
    let (profiles, profile_telemetry) = sweep_supervised(
        "calibration-profiles",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        profile_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &profiles);

    // Runtimes: each app solo and under the heavy configuration.
    let mut runtime_tasks: Vec<(String, RuntimeTask<'_>)> = Vec::new();
    for &app in &apps {
        let cfg = &cfg;
        let heavy = &heavy;
        runtime_tasks.push((
            format!("solo:{}", app.name()),
            Box::new(move || solo_runtime(cfg, app)),
        ));
        runtime_tasks.push((
            format!("loaded:{}", app.name()),
            Box::new(move || runtime_under_compression(cfg, app, heavy)),
        ));
    }
    let (runtimes, runtime_telemetry) = sweep_supervised(
        "calibration-runtimes",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        runtime_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &runtimes);

    // Network-wait fractions from phase tracing (a panicking cell —
    // e.g. a non-converging run — is isolated into a typed hole).
    let wait_tasks: Vec<(String, _)> = apps
        .iter()
        .map(|&app| {
            let cfg = &cfg;
            (format!("wait:{}", app.name()), move || {
                Ok(solo_wait_fraction(cfg, app))
            })
        })
        .collect();
    let (waits, wait_telemetry) = sweep_supervised(
        "calibration-waits",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        wait_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &waits);

    let idle = profiles[0].as_ref().ok();
    let heavy_profile = profiles[1].as_ref().ok();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    match idle {
        Some(idle) => {
            println!(
                "idle switch: mean={:.3}us sd={:.3}us min={:.3}us max={:.3}us (n={})",
                idle.mean(),
                idle.std_dev(),
                idle.min(),
                idle.max(),
                idle.count()
            );
            println!(
                "queue calibration: mu={:.4}/us Var(S)={:.4}us^2 idle-reading={:.1}%",
                calib.mu,
                calib.var_s,
                calib.utilization(idle) * 100.0
            );
        }
        None => println!("idle switch: -  (cell failed)"),
    }
    println!();

    match heavy_profile {
        Some(p) => println!(
            "heaviest CompressionB ({}): probe mean={:.2}us -> util={:.1}%",
            heavy.label(),
            p.mean(),
            calib.utilization(p) * 100.0
        ),
        None => println!(
            "heaviest CompressionB ({}): -  (cell failed)",
            heavy.label()
        ),
    }
    println!();

    println!(
        "{:<8} {:>7} {:>11} {:>10} {:>14}",
        "app", "util", "solo", "net-wait", "degr@heavy"
    );
    for (i, &app) in apps.iter().enumerate() {
        let p = profiles[2 + i].as_ref().ok();
        let solo = runtimes[2 * i].as_ref().ok();
        let loaded = runtimes[2 * i + 1].as_ref().ok();
        let wait = waits[i].as_ref().ok();
        let util = p.map_or("-".to_owned(), |p| {
            format!("{:.1}%", calib.utilization(p) * 100.0)
        });
        let solo_txt = solo.map_or("-".to_owned(), |t| format!("{t}"));
        let wait_txt = wait.map_or("-".to_owned(), |w| format!("{:.0}%", w * 100.0));
        let degr = match (solo, loaded) {
            (Some(s), Some(l)) => format!("{:+.1}%", degradation_percent(*s, *l)),
            _ => "-".to_owned(),
        };
        println!(
            "{:<8} {:>7} {:>11} {:>10} {:>14}",
            app.name(),
            util,
            solo_txt,
            wait_txt,
            degr
        );
    }
    println!();
    println!("net-wait is the solo run's network-blocked time fraction (phase");
    println!("tracing): the ceiling on how much switch contention can hurt.");
    opts.emit_bench_json(
        "calibration_report",
        &[&profile_telemetry, &runtime_telemetry, &wait_telemetry],
    );
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
