//! Substrate calibration report (not a paper artefact): the simulated
//! switch's idle behaviour, the queue-model calibration, and each
//! workload's one-line footprint. Useful when re-tuning `SwitchConfig` or
//! application parameters.
//!
//! ```text
//! cargo run --release -p anp-bench --bin calibration_report [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, degradation_percent, idle_profile, impact_profile_of_app,
    impact_profile_of_compression, runtime_under_compression, solo_runtime, MuPolicy,
};
use anp_simmpi::World;
use anp_simnet::SimTime;
use anp_workloads::{AppKind, CompressionConfig, RunMode};

/// Measures the fraction of an app's solo runtime spent blocked on the
/// network (via the world's phase accounting) — the ceiling on how much
/// interference can hurt it.
fn solo_wait_fraction(opts: &HarnessOpts, app: AppKind) -> f64 {
    let cfg = opts.experiment_config();
    let mut world = World::new(cfg.switch.clone());
    let job = world.add_job(app.name(), app.build(RunMode::Iterations(0), 17));
    world.enable_tracing();
    let outcome = world.run_until_job_done(job, SimTime::ZERO + cfg.run_cap);
    assert!(
        outcome.completed(),
        "solo calibration run did not converge: {outcome:?}"
    );
    world.job_phase_totals(job).waiting_fraction()
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Calibration", "substrate sanity report", &opts);
    let cfg = opts.experiment_config();

    let idle = idle_profile(&cfg).expect("idle profile");
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    println!(
        "idle switch: mean={:.3}us sd={:.3}us min={:.3}us max={:.3}us (n={})",
        idle.mean(),
        idle.std_dev(),
        idle.min(),
        idle.max(),
        idle.count()
    );
    println!(
        "queue calibration: mu={:.4}/us Var(S)={:.4}us^2 idle-reading={:.1}%",
        calib.mu,
        calib.var_s,
        calib.utilization(&idle) * 100.0
    );
    println!();

    let heavy = CompressionConfig::new(17, 25_000, 10);
    let heavy_profile = impact_profile_of_compression(&cfg, &heavy).expect("heavy impact");
    println!(
        "heaviest CompressionB ({}): probe mean={:.2}us -> util={:.1}%",
        heavy.label(),
        heavy_profile.mean(),
        calib.utilization(&heavy_profile) * 100.0
    );
    println!();

    println!(
        "{:<8} {:>7} {:>11} {:>10} {:>14}",
        "app", "util", "solo", "net-wait", "degr@heavy"
    );
    for app in opts.apps() {
        let p = impact_profile_of_app(&cfg, app).expect("app impact");
        let solo = solo_runtime(&cfg, app).expect("solo runtime");
        let wait = solo_wait_fraction(&opts, app);
        let loaded = runtime_under_compression(&cfg, app, &heavy).expect("loaded runtime");
        println!(
            "{:<8} {:>6.1}% {:>11} {:>9.0}% {:>+13.1}%",
            app.name(),
            calib.utilization(&p) * 100.0,
            format!("{solo}"),
            wait * 100.0,
            degradation_percent(solo, loaded)
        );
    }
    println!();
    println!("net-wait is the solo run's network-blocked time fraction (phase");
    println!("tracing): the ceiling on how much switch contention can hurt.");
}
