//! Cross-validation of the analytic flow backend against the DES (not a
//! paper artefact): runs the same measurement grid on both engines and
//! reports per-cell relative error on mean probe latency, read-off
//! utilization, and loaded/solo runtime ratios, plus the wall-clock
//! speedup from the sweep telemetry.
//!
//! Both grids run through the supervised sweep engine: failing cells
//! leave `-` holes (reported as MISSING lines) while every sibling
//! completes and gets compared, `--max-retries` / `--run-budget` /
//! `--event-budget` bound each cell, and `--resume <journal>` makes the
//! grids crash-safe.
//!
//! ```text
//! cargo run --release -p anp-bench --bin backend_xval \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```
//!
//! Exit code 1 if the flow model leaves its documented error envelope
//! (probe means within [`PROBE_TOLERANCE`], runtime ratios within
//! [`SLOWDOWN_TOLERANCE`]) or misses the [`MIN_SPEEDUP`] floor on the
//! full grid; otherwise the supervision convention (0 complete, 3
//! partial, 1 nothing). The same gates run as a `cargo test` on the
//! quick grid.

use anp_bench::xval::{
    render_report, run_xval_supervised, MIN_SPEEDUP, PROBE_TOLERANCE, SLOWDOWN_TOLERANCE,
};
use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::DesBackend;
use anp_flowsim::FlowBackend;
use anp_workloads::{AppKind, CompressionConfig};

/// The gated ladder: the four corners of the CompressionB CLI ladder
/// (one per bubble-size decade, alternating partner count and message
/// multiplier), spanning idle-like through saturated interference.
fn quick_comps() -> Vec<CompressionConfig> {
    vec![
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(14, 250_000, 1),
        CompressionConfig::new(17, 25_000, 10),
    ]
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Backend x-val", "flow model vs DES ground truth", &opts);
    let cfg = opts.experiment_config();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();

    // The gated grid is always the ladder: the paper's full Fig. 6 sweep
    // adds only saturated interior cells whose DES values are dominated
    // by synchronization noise (run-to-run spread over 20%), which makes
    // a relative-error gate on them meaningless. Quick mode trims the
    // app axis to the communication- and compute-bound extremes.
    let apps = if opts.quick {
        vec![AppKind::Fftw, AppKind::Milc]
    } else {
        opts.apps()
    };
    let comps = quick_comps();

    let xval = run_xval_supervised(
        &cfg,
        &apps,
        &comps,
        &DesBackend,
        &FlowBackend,
        &supervisor,
        journal.as_ref(),
    )
    .unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    let report = &xval.report;
    let mut supervision = Supervision::default();
    supervision.absorb(xval.failures, xval.completed, xval.total);

    print!("{}", render_report(report));
    opts.emit_bench_json(
        "backend_xval",
        &[&report.des_telemetry, &report.flow_telemetry],
    );
    if !supervision.is_complete() {
        println!("(gates apply to the cells both backends completed)");
    }

    let mut failed = false;
    if report.max_probe_err() > PROBE_TOLERANCE {
        eprintln!(
            "FAIL: probe-mean error {:.1}% exceeds {:.0}% tolerance",
            report.max_probe_err() * 100.0,
            PROBE_TOLERANCE * 100.0
        );
        failed = true;
    }
    if report.max_slowdown_err() > SLOWDOWN_TOLERANCE {
        eprintln!(
            "FAIL: runtime-ratio error {:.1}% exceeds {:.0}% tolerance",
            report.max_slowdown_err() * 100.0,
            SLOWDOWN_TOLERANCE * 100.0
        );
        failed = true;
    }
    // The speedup floor is only meaningful on the full Cab-like grid: the
    // quick grid is small enough that fixed per-process costs dominate.
    if !opts.quick && report.speedup() < MIN_SPEEDUP {
        eprintln!(
            "FAIL: flow speedup {:.1}x below the {MIN_SPEEDUP:.0}x floor",
            report.speedup()
        );
        failed = true;
    }
    supervision.report(opts.resume.as_deref());
    if failed {
        std::process::exit(1);
    }
    println!(
        "PASS: within tolerance (probe <= {:.0}%, ratio <= {:.0}%)",
        PROBE_TOLERANCE * 100.0,
        SLOWDOWN_TOLERANCE * 100.0
    );
    std::process::exit(supervision.exit_code());
}
