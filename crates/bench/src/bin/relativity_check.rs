//! Validates the paper's **performance-relativity principle** directly —
//! something the original study could not do, because real switches cannot
//! be down-clocked: *"from the perspective of software components, less
//! capable networks behave very similarly to networks that are partially
//! utilized by other software components"* (§I).
//!
//! In simulation we can build literally degraded switches. For each
//! application and each degradation level this harness measures:
//!
//! 1. the runtime on a *literally* less capable switch (link bandwidth and
//!    routing parallelism scaled down);
//! 2. the probe utilization `U` that the degraded switch exhibits relative
//!    to the intact one (how much capability "went missing");
//! 3. the runtime on the intact switch next to the CompressionB
//!    configuration whose utilization is closest to `U` — the paper's
//!    software emulation of (1).
//!
//! If the relativity principle holds in this model, columns (1) and (3)
//! should tell similar stories. This also doubles as the §I motivation
//! use-case: predicting performance on future systems with poorer
//! network-to-node ratios.
//!
//! Every measurement runs as a supervised sweep cell (`--jobs N` fans
//! them out): failing cells print `-` entries while every sibling
//! completes, `--max-retries` / `--run-budget` / `--event-budget` bound
//! each cell, and `--resume <journal>` makes the check crash-safe (exit
//! code 0 complete, 3 partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin relativity_check \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, degradation_percent,
    impact_profile_of_compression, runtime_under_compression, solo_runtime, sweep_supervised,
    CellResult, ExperimentConfig, ExperimentError, JournalError, MuPolicy,
};
use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

/// A literally degraded Cab: ports and routing scaled by `num/den`.
fn degraded(cfg: &ExperimentConfig, num: u64, den: u64) -> ExperimentConfig {
    let mut out = cfg.clone();
    out.switch.link_bandwidth = cfg.switch.link_bandwidth * num / den;
    out.switch.local_bandwidth = cfg.switch.local_bandwidth * num / den;
    out.switch.route_servers = ((u64::from(cfg.switch.route_servers) * num / den).max(1)) as u32;
    out
}

type RuntimeTask<'a> = Box<dyn Fn() -> Result<SimDuration, ExperimentError> + Send + Sync + 'a>;

/// Folds one sweep's holes and counts into the campaign totals.
fn absorb<T>(supervision: &mut Supervision, cells: &[CellResult<T>]) {
    supervision.absorb(
        cells
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(cells),
        cells.len(),
    );
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Relativity",
        "degraded switches vs CompressionB emulation",
        &opts,
    );
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let mut supervision = Supervision::default();

    // Utilization of each sweep configuration, measured once.
    let sweep = opts.compression_sweep();
    let impact_tasks: Vec<(String, _)> = sweep
        .iter()
        .map(|comp| {
            let cfg = &cfg;
            (format!("impact:{}", comp.label()), move || {
                impact_profile_of_compression(cfg, comp)
            })
        })
        .collect();
    let (profiles, impact_telemetry) = sweep_supervised(
        "relativity-impacts",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        impact_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &profiles);
    let sweep_utils: Vec<Option<f64>> = profiles
        .iter()
        .map(|r| r.as_ref().ok().map(|p| calib.utilization(p)))
        .collect();
    let nearest_config = |target: f64| -> Option<(&CompressionConfig, f64)> {
        sweep
            .iter()
            .zip(&sweep_utils)
            .filter_map(|(c, u)| u.map(|u| (c, u)))
            .min_by(|a, b| {
                (a.1 - target)
                    .abs()
                    .partial_cmp(&(b.1 - target).abs())
                    .unwrap()
            })
    };

    let apps = if opts.quick {
        vec![AppKind::Fftw, AppKind::Milc]
    } else {
        vec![
            AppKind::Fftw,
            AppKind::Vpfft,
            AppKind::Milc,
            AppKind::Lulesh,
        ]
    };
    let fractions: [(u64, u64); 3] = [(3, 4), (1, 2), (1, 4)];

    // The emulating configuration per fraction, from the measured sweep
    // utilizations (None when no impact cell completed).
    let choices: Vec<Option<(&CompressionConfig, f64)>> = fractions
        .iter()
        .map(|&(num, den)| {
            // The capability removed, expressed on the paper's utilization
            // scale: a switch at num/den capability behaves like the intact
            // one with (1 - num/den) consumed by someone else.
            let removed = 1.0 - num as f64 / den as f64;
            nearest_config(removed + calib.utilization_from_sojourn(calib.idle_mean))
        })
        .collect();

    // Solo, degraded-switch, and emulated runtimes, app-major.
    let mut runtime_tasks: Vec<(String, RuntimeTask<'_>)> = Vec::new();
    for &app in &apps {
        let cfg = &cfg;
        runtime_tasks.push((
            format!("solo:{}", app.name()),
            Box::new(move || solo_runtime(cfg, app)),
        ));
        for &(num, den) in &fractions {
            runtime_tasks.push((
                format!("weak:{}:{num}-{den}", app.name()),
                Box::new(move || solo_runtime(&degraded(cfg, num, den), app)),
            ));
        }
        for (&(num, den), choice) in fractions.iter().zip(&choices) {
            match choice {
                Some((comp, _)) => {
                    let comp = *comp;
                    runtime_tasks.push((
                        format!("emul:{}:{num}-{den}", app.name()),
                        Box::new(move || runtime_under_compression(cfg, app, comp)),
                    ));
                }
                None => runtime_tasks.push((
                    format!("emul:{}:{num}-{den}", app.name()),
                    Box::new(move || {
                        panic!("no emulating configuration: every impact cell failed")
                    }),
                )),
            }
        }
    }
    let per_app = 1 + 2 * fractions.len();
    let (runtimes, runtime_telemetry) = sweep_supervised(
        "relativity-runtimes",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        runtime_tasks,
    )
    .unwrap_or_else(|e| die(e));
    absorb(&mut supervision, &runtimes);

    for (ai, &app) in apps.iter().enumerate() {
        let base = ai * per_app;
        let solo = runtimes[base].as_ref().ok();
        match solo {
            Some(solo) => println!("{} (solo on intact switch: {})", app.name(), solo),
            None => println!("{} (solo on intact switch: -)", app.name()),
        }
        println!(
            "  {:>9} | {:>14} | {:>7} {:>16} {:>14}",
            "capability", "degraded switch", "~util", "emulating config", "emulated run"
        );
        for (fi, &(num, den)) in fractions.iter().enumerate() {
            let t_weak = runtimes[base + 1 + fi].as_ref().ok();
            let t_emul = runtimes[base + 1 + fractions.len() + fi].as_ref().ok();
            let d_weak = solo.zip(t_weak).map_or("-".to_owned(), |(s, t)| {
                format!("{:+.1}%", degradation_percent(*s, *t))
            });
            let (comp_txt, u_txt) = match choices[fi] {
                Some((comp, u)) => (comp.label(), format!("{:.1}%", u * 100.0)),
                None => ("-".to_owned(), "-".to_owned()),
            };
            let d_emul = solo.zip(t_emul).map_or("-".to_owned(), |(s, t)| {
                format!("{:+.1}%", degradation_percent(*s, *t))
            });
            println!(
                "  {:>6}/{:<2} | {:>14} | {:>7} {:>16} {:>14}",
                num, den, d_weak, u_txt, comp_txt, d_emul
            );
        }
        println!();
    }
    println!("Reading: for each capability fraction, the left column is the");
    println!("ground truth (a literally weaker switch) and the right column is");
    println!("the paper's software emulation at the matching utilization. The");
    println!("relativity principle predicts they agree in sign and order of");
    println!("magnitude for network-sensitive applications.");
    opts.emit_bench_json("relativity_check", &[&impact_telemetry, &runtime_telemetry]);
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
