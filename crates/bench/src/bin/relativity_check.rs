//! Validates the paper's **performance-relativity principle** directly —
//! something the original study could not do, because real switches cannot
//! be down-clocked: *"from the perspective of software components, less
//! capable networks behave very similarly to networks that are partially
//! utilized by other software components"* (§I).
//!
//! In simulation we can build literally degraded switches. For each
//! application and each degradation level this harness measures:
//!
//! 1. the runtime on a *literally* less capable switch (link bandwidth and
//!    routing parallelism scaled down);
//! 2. the probe utilization `U` that the degraded switch exhibits relative
//!    to the intact one (how much capability "went missing");
//! 3. the runtime on the intact switch next to the CompressionB
//!    configuration whose utilization is closest to `U` — the paper's
//!    software emulation of (1).
//!
//! If the relativity principle holds in this model, columns (1) and (3)
//! should tell similar stories. This also doubles as the §I motivation
//! use-case: predicting performance on future systems with poorer
//! network-to-node ratios.
//!
//! ```text
//! cargo run --release -p anp-bench --bin relativity_check [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, degradation_percent, impact_profile_of_compression, runtime_under_compression,
    solo_runtime, ExperimentConfig, MuPolicy,
};
use anp_workloads::{AppKind, CompressionConfig};

/// A literally degraded Cab: ports and routing scaled by `num/den`.
fn degraded(cfg: &ExperimentConfig, num: u64, den: u64) -> ExperimentConfig {
    let mut out = cfg.clone();
    out.switch.link_bandwidth = cfg.switch.link_bandwidth * num / den;
    out.switch.local_bandwidth = cfg.switch.local_bandwidth * num / den;
    out.switch.route_servers = ((u64::from(cfg.switch.route_servers) * num / den).max(1)) as u32;
    out
}

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Relativity",
        "degraded switches vs CompressionB emulation",
        &opts,
    );
    let cfg = opts.experiment_config();
    let calib = calibrate(&cfg, MuPolicy::MinLatency).expect("calibration");

    // Utilization of each sweep configuration, measured once.
    let sweep = opts.compression_sweep();
    let sweep_utils: Vec<f64> = sweep
        .iter()
        .map(|c| {
            let p = impact_profile_of_compression(&cfg, c).expect("impact");
            calib.utilization(&p)
        })
        .collect();
    let nearest_config = |target: f64| -> (&CompressionConfig, f64) {
        sweep
            .iter()
            .zip(&sweep_utils)
            .min_by(|a, b| {
                (a.1 - target)
                    .abs()
                    .partial_cmp(&(b.1 - target).abs())
                    .unwrap()
            })
            .map(|(c, u)| (c, *u))
            .expect("sweep is non-empty")
    };

    let apps = if opts.quick {
        vec![AppKind::Fftw, AppKind::Milc]
    } else {
        vec![AppKind::Fftw, AppKind::Vpfft, AppKind::Milc, AppKind::Lulesh]
    };
    let fractions: [(u64, u64); 3] = [(3, 4), (1, 2), (1, 4)];

    for app in apps {
        let solo = solo_runtime(&cfg, app).expect("solo");
        println!("{} (solo on intact switch: {})", app.name(), solo);
        println!(
            "  {:>9} | {:>14} | {:>7} {:>16} {:>14}",
            "capability", "degraded switch", "~util", "emulating config", "emulated run"
        );
        for (num, den) in fractions {
            let weak = degraded(&cfg, num, den);
            let t_weak = solo_runtime(&weak, app).expect("degraded runtime");
            let d_weak = degradation_percent(solo, t_weak);
            // The capability removed, expressed on the paper's utilization
            // scale: a switch at num/den capability behaves like the intact
            // one with (1 - num/den) consumed by someone else.
            let removed = 1.0 - num as f64 / den as f64;
            let (comp, u) = nearest_config(removed + calib.utilization_from_sojourn(calib.idle_mean));
            let t_emul = runtime_under_compression(&cfg, app, comp).expect("emulated runtime");
            let d_emul = degradation_percent(solo, t_emul);
            println!(
                "  {:>6}/{:<2} | {:>+13.1}% | {:>6.1}% {:>16} {:>+13.1}%",
                num,
                den,
                d_weak,
                u * 100.0,
                comp.label(),
                d_emul
            );
        }
        println!();
    }
    println!("Reading: for each capability fraction, the left column is the");
    println!("ground truth (a literally weaker switch) and the right column is");
    println!("the paper's software emulation at the matching utilization. The");
    println!("relativity principle predicts they agree in sign and order of");
    println!("magnitude for network-sensitive applications.");
}
