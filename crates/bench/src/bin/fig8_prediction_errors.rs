//! Reproduces **Fig. 8**: |measured − predicted| % slowdown for each of
//! the 36 pairings under all four models (AverageLT, AverageStDevLT,
//! PDFLT, Queue).
//!
//! This runs the full §V pipeline: isolated impact profiles for every
//! workload, the 40-configuration look-up table, co-run ground truth, and
//! the four predictors. Use `--cache <path>` to persist the measurements
//! for `fig9_error_summary`.
//!
//! The look-up table, the app impact profiles, and the co-run ground
//! truth grid all fan out across the sweep engine (`--jobs N`, default
//! all cores); sweep telemetry lands in `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin fig8_prediction_errors [--quick] [--cache study.tsv] [--jobs N]
//! ```

use anp_bench::{banner, full_outcomes_supervised, HarnessOpts};
use anp_core::ModelKind;

fn main() {
    let opts = HarnessOpts::from_args();
    banner(
        "Fig. 8",
        "performance predictions for combined workloads",
        &opts,
    );
    let campaign = full_outcomes_supervised(&opts);
    let (outcomes, telemetry) = (campaign.outcomes, campaign.telemetry);

    println!();
    println!(
        "{:<8} {:<8} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "victim", "with", "measured", "AvgLT", "AvgSdLT", "PDFLT", "Queue"
    );
    for o in &outcomes {
        print!("{:<8} {:<8}", o.victim.name(), o.other.name());
        match o.measured {
            Some(m) => print!(" {:>8.1}%", m),
            None => print!(" {:>9}", "-"),
        }
        for m in ModelKind::ALL {
            match o.abs_error(m) {
                Some(e) => print!(" {:>8.1} ", e),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }
    println!();
    println!("(model columns show the absolute error |real% - predicted%|)");
    println!("Paper shape check: the LUT models do well on Lulesh/AMG rows but");
    println!("miss on FFT/VPFFT; the queue model keeps most pairings under 10%");
    println!("with its worst case at FFTW predicted against AMG (phase-blind).");
    if !telemetry.is_empty() {
        let refs: Vec<_> = telemetry.iter().collect();
        opts.emit_bench_json("fig8_prediction_errors", &refs);
    }
    campaign.supervision.report(opts.resume.as_deref());
    std::process::exit(campaign.supervision.exit_code());
}
