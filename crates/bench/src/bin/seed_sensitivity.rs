//! Seed-sensitivity study (not a paper artefact): how much do the key
//! reproduction metrics move across independent random seeds?
//!
//! The simulator is deterministic per seed; this harness quantifies the
//! across-seed spread of the idle calibration, the heaviest CompressionB
//! utilization, and one sensitive and one insensitive application's
//! degradation — evidence that the reproduction's conclusions are not an
//! artifact of one lucky seed.
//!
//! The per-seed studies are fully independent, so they fan out across the
//! sweep engine (`--jobs N`, default all cores) under the supervision
//! envelope: a failing seed prints a `-` row while the others complete,
//! `--max-retries` / `--run-budget` / `--event-budget` bound each cell,
//! and `--resume <journal>` makes the study crash-safe (exit code 0
//! complete, 3 partial, 1 nothing). Sweep telemetry lands in
//! `BENCH_anp.json`.
//!
//! ```text
//! cargo run --release -p anp-bench --bin seed_sensitivity \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, degradation_percent, idle_profile,
    impact_profile_of_compression, runtime_under_compression, solo_runtime, sweep_supervised,
    JournalError, MuPolicy,
};
use anp_metrics::OnlineStats;
use anp_workloads::{AppKind, CompressionConfig};

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Seeds", "across-seed spread of key metrics", &opts);
    let seeds: Vec<u64> = if opts.quick {
        vec![1, 2, 3]
    } else {
        vec![1, 2, 3, 4, 5]
    };
    let heavy = CompressionConfig::new(17, 25_000, 10);
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&opts.experiment_config(), "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };

    // One task per seed: each re-derives its own config and runs the full
    // metric set. Seeds are independent studies, ideal fan-out cells.
    // The nested-pair return type is what the run journal can encode
    // bit-exactly: ((idle mean, heavy utilization), (FFTW, MCB degr)).
    let tasks: Vec<(String, _)> = seeds
        .iter()
        .map(|&seed| {
            let opts = &opts;
            let heavy = &heavy;
            (format!("seed:{seed}"), move || {
                let cfg = opts.experiment_config().with_seed(seed);
                let idle = idle_profile(&cfg)?;
                let calib = calibrate(&cfg, MuPolicy::MinLatency)?;
                let u = calib.utilization(&impact_profile_of_compression(&cfg, heavy)?);
                let fftw = degradation_percent(
                    solo_runtime(&cfg, AppKind::Fftw)?,
                    runtime_under_compression(&cfg, AppKind::Fftw, heavy)?,
                );
                let mcb = degradation_percent(
                    solo_runtime(&cfg, AppKind::Mcb)?,
                    runtime_under_compression(&cfg, AppKind::Mcb, heavy)?,
                );
                Ok(((idle.mean(), u), (fftw, mcb)))
            })
        })
        .collect();
    let jobs = opts.experiment_config().jobs;
    let (rows, telemetry) = sweep_supervised(
        "seed-sensitivity",
        jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        tasks,
    )
    .unwrap_or_else(|e| die(e));
    let mut supervision = Supervision::default();
    supervision.absorb(
        rows.iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&rows),
        rows.len(),
    );

    let mut idle_mean = OnlineStats::new();
    let mut heavy_util = OnlineStats::new();
    let mut fftw_degr = OnlineStats::new();
    let mut mcb_degr = OnlineStats::new();
    println!(
        "{:>6} {:>10} {:>10} {:>12} {:>12}",
        "seed", "idle (us)", "util@heavy", "FFTW degr", "MCB degr"
    );
    for (seed, row) in seeds.iter().zip(&rows) {
        match row {
            Ok(((idle, u), (fftw, mcb))) => {
                println!(
                    "{:>6} {:>10.3} {:>9.1}% {:>+11.1}% {:>+11.1}%",
                    seed,
                    idle,
                    u * 100.0,
                    fftw,
                    mcb
                );
                idle_mean.push(*idle);
                heavy_util.push(u * 100.0);
                fftw_degr.push(*fftw);
                mcb_degr.push(*mcb);
            }
            Err(_) => println!(
                "{:>6} {:>10} {:>10} {:>12} {:>12}",
                seed, "-", "-", "-", "-"
            ),
        }
    }
    println!();
    if idle_mean.count() == 0 {
        println!("(no seed completed: spread unavailable)");
    } else {
        let line = |name: &str, s: &OnlineStats| {
            println!(
                "{:<12} mean {:>8.2}  sd {:>6.2}  (cv {:>4.1}%)",
                name,
                s.mean(),
                s.std_dev(),
                s.std_dev() / s.mean().abs().max(1e-9) * 100.0
            );
        };
        line("idle (us)", &idle_mean);
        line("util@heavy", &heavy_util);
        line("FFTW degr", &fftw_degr);
        line("MCB degr", &mcb_degr);
    }
    println!();
    println!("Low coefficients of variation mean the reproduction's headline");
    println!("numbers are properties of the model, not of a particular seed.");
    opts.emit_bench_json("seed_sensitivity", &[&telemetry]);
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
