//! Ablation studies of the design choices DESIGN.md calls out (not a
//! paper artefact):
//!
//! 1. **µ policy** — calibrating the service rate from the *minimum* idle
//!    latency (the paper's procedure) vs. the mean.
//! 2. **Routing parallelism** — the k-server routing stage vs. a literal
//!    single-server M/G/1 switch (`route_servers = 1`).
//! 3. **Alltoall chaining** — how the latency-chained pairwise exchange
//!    responds to interference compared with a windowed variant
//!    (approximated by a bulk non-blocking exchange program).
//!
//! The probe cells are independent simulations that fan out across the
//! sweep engine (`--jobs N`) under the supervision envelope: failing
//! cells print `-` rows while every sibling completes, `--max-retries` /
//! `--run-budget` / `--event-budget` bound each cell, and `--resume
//! <journal>` makes the report crash-safe (exit code 0 complete, 3
//! partial, 1 nothing).
//!
//! ```text
//! cargo run --release -p anp-bench --bin ablation_report \
//!     [--quick] [--jobs N] [--max-retries N] [--resume run.jsonl]
//! ```

use anp_bench::{banner, HarnessOpts, Supervision};
use anp_core::{
    calibrate, completed_count, config_fingerprint, idle_profile, impact_profile,
    impact_profile_of_compression, sweep_supervised, ExperimentError, JournalError, LatencyProfile,
    MuPolicy,
};
use anp_simmpi::{Looping, Op, Program, Src};
use anp_simnet::NodeId;
use anp_workloads::CompressionConfig;

type Task<'a> = Box<dyn Fn() -> Result<LatencyProfile, ExperimentError> + Send + Sync + 'a>;

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Ablations", "design-choice sensitivity", &opts);
    let cfg = opts.experiment_config();
    let loads = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(17, 25_000, 10),
    ];
    let mut mg1 = cfg.clone();
    mg1.switch.route_servers = 1;

    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let fp = config_fingerprint(&cfg, "des");
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };

    // All probe distributions the three sections read, as one supervised
    // sweep: idle, the three loads on the default switch, the same loads
    // on the literal M/G/1 switch, and the two exchange variants.
    let mut tasks: Vec<(String, Task<'_>)> =
        vec![("idle".to_owned(), Box::new(|| idle_profile(&cfg)))];
    for comp in &loads {
        let cfg = &cfg;
        tasks.push((
            format!("impact:{}", comp.label()),
            Box::new(move || impact_profile_of_compression(cfg, comp)),
        ));
    }
    for comp in &loads {
        let mg1 = &mg1;
        tasks.push((
            format!("mg1:{}", comp.label()),
            Box::new(move || impact_profile_of_compression(mg1, comp)),
        ));
    }
    for &chained in &[true, false] {
        let cfg = &cfg;
        tasks.push((
            format!("exchange:{}", if chained { "chained" } else { "bulk" }),
            Box::new(move || {
                // Two synthetic 18-rank exchange workloads moving identical
                // volume: chained posts one message at a time; bulk posts
                // all eight first.
                let members: Vec<(Box<dyn Program>, NodeId)> = (0..18u32)
                    .map(|n| {
                        let peers: Vec<u32> = (1..=4)
                            .flat_map(|d| [(n + d) % 18, (n + 18 - d) % 18])
                            .collect();
                        let mut body = Vec::new();
                        if chained {
                            for &p in &peers {
                                body.push(Op::Irecv {
                                    src: Src::Rank(p),
                                    tag: 1,
                                });
                                body.push(Op::Isend {
                                    dst: p,
                                    bytes: 4096,
                                    tag: 1,
                                });
                                body.push(Op::WaitAll);
                            }
                        } else {
                            for &p in &peers {
                                body.push(Op::Irecv {
                                    src: Src::Rank(p),
                                    tag: 1,
                                });
                                body.push(Op::Isend {
                                    dst: p,
                                    bytes: 4096,
                                    tag: 1,
                                });
                            }
                            body.push(Op::WaitAll);
                        }
                        (Box::new(Looping::new(body)) as Box<dyn Program>, NodeId(n))
                    })
                    .collect();
                impact_profile(cfg, Some(members))
            }),
        ));
    }
    let (cells, telemetry) = sweep_supervised(
        "ablation-profiles",
        cfg.jobs,
        &supervisor,
        journal.as_ref(),
        fp,
        tasks,
    )
    .unwrap_or_else(|e| die(e));
    let mut supervision = Supervision::default();
    supervision.absorb(
        cells
            .iter()
            .filter_map(|r| r.as_ref().err().cloned())
            .collect(),
        completed_count(&cells),
        cells.len(),
    );
    let idle = cells[0].as_ref().ok();
    let impacts = &cells[1..1 + loads.len()];
    let mg1_impacts = &cells[1 + loads.len()..1 + 2 * loads.len()];
    let chained = cells[cells.len() - 2].as_ref().ok();
    let bulk = cells[cells.len() - 1].as_ref().ok();

    // ------------------------------------------------------------------
    println!("## 1. mu policy: MinLatency (paper) vs MeanLatency");
    let c_min = calibrate(&cfg, MuPolicy::MinLatency).expect("min calibration");
    let c_mean = calibrate(&cfg, MuPolicy::MeanLatency).expect("mean calibration");
    println!(
        "   mu(min)={:.4}/us  mu(mean)={:.4}/us",
        c_min.mu, c_mean.mu
    );
    println!("   {:<18} {:>10} {:>10}", "load", "util(min)", "util(mean)");
    let util_row = |label: &str, p: Option<&LatencyProfile>| match p {
        Some(p) => println!(
            "   {:<18} {:>9.1}% {:>9.1}%",
            label,
            c_min.utilization(p) * 100.0,
            c_mean.utilization(p) * 100.0
        ),
        None => println!("   {:<18} {:>10} {:>10}", label, "-", "-"),
    };
    util_row("idle", idle);
    for (comp, cell) in loads.iter().zip(impacts) {
        util_row(&comp.label(), cell.as_ref().ok());
    }
    println!("   (the mean policy zeroes the idle reading but compresses the");
    println!("   top of the scale; the paper's min policy is kept as default)");
    println!();

    // ------------------------------------------------------------------
    println!("## 2. routing parallelism: 18 servers (default) vs literal M/G/1");
    let c18 = c_min;
    let c1 = calibrate(&mg1, MuPolicy::MinLatency).expect("calib k=1");
    println!("   {:<18} {:>10} {:>10}", "load", "util(k=18)", "util(k=1)");
    for ((comp, cell18), cell1) in loads.iter().zip(impacts).zip(mg1_impacts) {
        match (cell18.as_ref().ok(), cell1.as_ref().ok()) {
            (Some(p18), Some(p1)) => println!(
                "   {:<18} {:>9.1}% {:>9.1}%",
                comp.label(),
                c18.utilization(p18) * 100.0,
                c1.utilization(p1) * 100.0
            ),
            _ => println!("   {:<18} {:>10} {:>10}", comp.label(), "-", "-"),
        }
    }
    println!("   (a literal single server saturates under loads a real crossbar");
    println!("   absorbs — every moderate config reads near 100%)");
    println!();

    // ------------------------------------------------------------------
    println!("## 3. exchange chaining: latency-chained vs bulk-posted neighbours");
    match (chained, bulk) {
        (Some(chained), Some(bulk)) => {
            println!(
                "   chained exchange: probe mean {:.2}us -> util {:.1}%",
                chained.mean(),
                c18.utilization(chained) * 100.0
            );
            println!(
                "   bulk exchange:    probe mean {:.2}us -> util {:.1}%",
                bulk.mean(),
                c18.utilization(bulk) * 100.0
            );
        }
        _ => println!("   -  (exchange cells failed)"),
    }
    println!("   (bulk posting overlaps rounds and loads the switch harder per");
    println!("   unit time; chaining is what makes small-message codes latency-");
    println!("   sensitive, motivating ALLTOALL_WINDOW = 1)");
    opts.emit_bench_json("ablation_report", &[&telemetry]);
    supervision.report(opts.resume.as_deref());
    std::process::exit(supervision.exit_code());
}
