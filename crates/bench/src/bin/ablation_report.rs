//! Ablation studies of the design choices DESIGN.md calls out (not a
//! paper artefact):
//!
//! 1. **µ policy** — calibrating the service rate from the *minimum* idle
//!    latency (the paper's procedure) vs. the mean.
//! 2. **Routing parallelism** — the k-server routing stage vs. a literal
//!    single-server M/G/1 switch (`route_servers = 1`).
//! 3. **Alltoall chaining** — how the latency-chained pairwise exchange
//!    responds to interference compared with a windowed variant
//!    (approximated by a bulk non-blocking exchange program).
//!
//! ```text
//! cargo run --release -p anp-bench --bin ablation_report [--quick]
//! ```

use anp_bench::{banner, HarnessOpts};
use anp_core::{
    calibrate, idle_profile, impact_profile, impact_profile_of_compression, MuPolicy,
};
use anp_simmpi::{Looping, Op, Program, Src};
use anp_simnet::NodeId;
use anp_workloads::CompressionConfig;

fn main() {
    let opts = HarnessOpts::from_args();
    banner("Ablations", "design-choice sensitivity", &opts);
    let cfg = opts.experiment_config();
    let loads = [
        CompressionConfig::new(1, 25_000_000, 1),
        CompressionConfig::new(7, 2_500_000, 10),
        CompressionConfig::new(17, 25_000, 10),
    ];

    // ------------------------------------------------------------------
    println!("## 1. mu policy: MinLatency (paper) vs MeanLatency");
    let c_min = calibrate(&cfg, MuPolicy::MinLatency).expect("min calibration");
    let c_mean = calibrate(&cfg, MuPolicy::MeanLatency).expect("mean calibration");
    println!(
        "   mu(min)={:.4}/us  mu(mean)={:.4}/us",
        c_min.mu, c_mean.mu
    );
    println!(
        "   {:<18} {:>10} {:>10}",
        "load", "util(min)", "util(mean)"
    );
    let idle = idle_profile(&cfg).expect("idle");
    println!(
        "   {:<18} {:>9.1}% {:>9.1}%",
        "idle",
        c_min.utilization(&idle) * 100.0,
        c_mean.utilization(&idle) * 100.0
    );
    for comp in &loads {
        let p = impact_profile_of_compression(&cfg, comp).expect("impact");
        println!(
            "   {:<18} {:>9.1}% {:>9.1}%",
            comp.label(),
            c_min.utilization(&p) * 100.0,
            c_mean.utilization(&p) * 100.0
        );
    }
    println!("   (the mean policy zeroes the idle reading but compresses the");
    println!("   top of the scale; the paper's min policy is kept as default)");
    println!();

    // ------------------------------------------------------------------
    println!("## 2. routing parallelism: 18 servers (default) vs literal M/G/1");
    let mut mg1 = cfg.clone();
    mg1.switch.route_servers = 1;
    let c18 = calibrate(&cfg, MuPolicy::MinLatency).expect("calib k=18");
    let c1 = calibrate(&mg1, MuPolicy::MinLatency).expect("calib k=1");
    println!("   {:<18} {:>10} {:>10}", "load", "util(k=18)", "util(k=1)");
    for comp in &loads {
        let p18 = impact_profile_of_compression(&cfg, comp).expect("impact k=18");
        let p1 = impact_profile_of_compression(&mg1, comp).expect("impact k=1");
        println!(
            "   {:<18} {:>9.1}% {:>9.1}%",
            comp.label(),
            c18.utilization(&p18) * 100.0,
            c1.utilization(&p1) * 100.0
        );
    }
    println!("   (a literal single server saturates under loads a real crossbar");
    println!("   absorbs — every moderate config reads near 100%)");
    println!();

    // ------------------------------------------------------------------
    println!("## 3. exchange chaining: latency-chained vs bulk-posted neighbours");
    // Two synthetic 18-rank exchange workloads moving identical volume:
    // chained posts one message at a time; bulk posts all eight first.
    let probe_under = |chained: bool| {
        let members: Vec<(Box<dyn Program>, NodeId)> = (0..18u32)
            .map(|n| {
                let peers: Vec<u32> = (1..=4).flat_map(|d| [(n + d) % 18, (n + 18 - d) % 18]).collect();
                let mut body = Vec::new();
                if chained {
                    for &p in &peers {
                        body.push(Op::Irecv {
                            src: Src::Rank(p),
                            tag: 1,
                        });
                        body.push(Op::Isend {
                            dst: p,
                            bytes: 4096,
                            tag: 1,
                        });
                        body.push(Op::WaitAll);
                    }
                } else {
                    for &p in &peers {
                        body.push(Op::Irecv {
                            src: Src::Rank(p),
                            tag: 1,
                        });
                        body.push(Op::Isend {
                            dst: p,
                            bytes: 4096,
                            tag: 1,
                        });
                    }
                    body.push(Op::WaitAll);
                }
                (
                    Box::new(Looping::new(body)) as Box<dyn Program>,
                    NodeId(n),
                )
            })
            .collect();
        impact_profile(&cfg, Some(members)).expect("exchange impact")
    };
    let chained = probe_under(true);
    let bulk = probe_under(false);
    println!(
        "   chained exchange: probe mean {:.2}us -> util {:.1}%",
        chained.mean(),
        c18.utilization(&chained) * 100.0
    );
    println!(
        "   bulk exchange:    probe mean {:.2}us -> util {:.1}%",
        bulk.mean(),
        c18.utilization(&bulk) * 100.0
    );
    println!("   (bulk posting overlaps rounds and loads the switch harder per");
    println!("   unit time; chaining is what makes small-message codes latency-");
    println!("   sensitive, motivating ALLTOALL_WINDOW = 1)");
}
