//! # anp-bench — experiment harnesses for every table and figure
//!
//! One binary per artefact of the paper's evaluation:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_latency_distributions` | Fig. 3 — probe-latency distributions (idle + 6 apps) |
//! | `fig6_compression_utilization` | Fig. 6 — switch utilization of the 40 CompressionB configs |
//! | `fig7_degradation_curves` | Fig. 7 — % degradation vs % utilization per app |
//! | `table1_pair_slowdowns` | Table I — measured slowdowns of all 36 app pairs |
//! | `fig8_prediction_errors` | Fig. 8 — per-pairing |real − predicted| for the 4 models |
//! | `fig9_error_summary` | Fig. 9 — quartile summary of model errors |
//!
//! Extension harnesses beyond the paper's artefacts:
//!
//! | Binary | What it studies |
//! |---|---|
//! | `calibration_report` | the substrate's calibration at a glance, incl. per-app network-wait fractions |
//! | `ablation_report` | µ policy, routing parallelism, exchange chaining |
//! | `relativity_check` | literally degraded switches vs CompressionB emulation |
//! | `phase_model_study` | the §V-B phase-aware queue model |
//! | `seed_sensitivity` | across-seed spread of headline metrics |
//! | `backend_xval` | flow-model vs DES cross-validation (error + speedup) |
//! | `sched_study` | predictive co-scheduling regret vs the oracle |
//! | `monitor_study` | online utilization estimation + change-point gates |
//!
//! Every binary accepts `--quick` (a scaled-down sweep for smoke runs),
//! `--seed <n>`, `--backend {des,flow}`, and prints plain-text tables.
//! `fig8`/`fig9` additionally accept `--cache <path>` to reuse the
//! expensive measurement study across invocations.
//!
//! The `benches/` directory holds Criterion micro-benchmarks of the
//! simulator and model kernels (event queue, switch path, matching,
//! collectives, histogram metrics, P-K inversion, end-to-end probes).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use std::time::Duration;

use anp_core::{
    calibrate_with, error_summaries, partial_exit_code, Backend, Calibration, DesBackend,
    ExperimentConfig, JournalError, LatencyProfile, LookupTable, ModelKind, MuPolicy, PairOutcome,
    Parallelism, RetryPolicy, RunBudget, RunJournal, Study, Supervisor, SweepTelemetry, TaskError,
};
use anp_monitor::MonitorRecord;
use anp_sched::SchedRecord;
use anp_workloads::{AppKind, CompressionConfig};

pub mod xval;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run a scaled-down sweep (fewer configurations / pairings).
    pub quick: bool,
    /// Base seed for the whole study.
    pub seed: u64,
    /// Optional path for caching study measurements (fig8/fig9).
    pub cache: Option<PathBuf>,
    /// Worker threads for the experiment sweeps (`None` = all cores).
    pub jobs: Option<usize>,
    /// Where sweep telemetry is written (default `BENCH_anp.json`;
    /// `--no-bench-json` disables the emitter).
    pub bench_json: Option<PathBuf>,
    /// Measurement backend name (`"des"` or `"flow"`); resolved by
    /// [`HarnessOpts::backend`].
    pub backend: String,
    /// Re-attempts per failed/panicked sweep cell (`--max-retries`).
    pub max_retries: u32,
    /// Per-cell wall-clock budget in seconds (`--run-budget`).
    pub run_budget_secs: Option<f64>,
    /// Per-cell simulator-event budget (`--event-budget`).
    pub event_budget: Option<u64>,
    /// Run journal for crash-safe resume (`--resume <path>`): created
    /// when absent, resumed when present.
    pub resume: Option<PathBuf>,
}

/// Reports a command-line usage error and exits with status 2, the
/// conventional "bad invocation" code. The bench harness is a binary
/// boundary: bad flags are operator errors, not states the library
/// should try to recover from.
fn usage_error(msg: &str) -> ! {
    eprintln!("anp-bench: {msg}");
    std::process::exit(2);
}

impl HarnessOpts {
    /// Parses `--quick`, `--seed <n>`, `--cache <path>`, `--jobs <n>`,
    /// `--bench-json <path>` / `--no-bench-json`, `--backend <name>`,
    /// `--max-retries <n>`, `--run-budget <secs>`, `--event-budget <n>`,
    /// and `--resume <path>` from `std::env`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            quick: false,
            seed: 0xA11CE,
            cache: None,
            jobs: None,
            bench_json: Some(PathBuf::from("BENCH_anp.json")),
            backend: "des".to_owned(),
            max_retries: 0,
            run_budget_secs: None,
            event_budget: None,
            resume: None,
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--seed needs a value"));
                    opts.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage_error("--seed needs an integer"));
                }
                "--cache" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--cache needs a path"));
                    opts.cache = Some(PathBuf::from(v));
                }
                "--jobs" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--jobs needs a value"));
                    opts.jobs = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage_error("--jobs needs an integer")),
                    );
                }
                "--bench-json" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--bench-json needs a path"));
                    opts.bench_json = Some(PathBuf::from(v));
                }
                "--no-bench-json" => opts.bench_json = None,
                "--backend" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--backend needs a value (des or flow)"));
                    opts.backend = v;
                }
                "--max-retries" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--max-retries needs a value"));
                    opts.max_retries = v
                        .parse()
                        .unwrap_or_else(|_| usage_error("--max-retries needs an integer"));
                }
                "--run-budget" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--run-budget needs seconds"));
                    let secs: f64 = v
                        .parse()
                        .unwrap_or_else(|_| usage_error("--run-budget needs a number of seconds"));
                    if secs <= 0.0 {
                        usage_error("--run-budget must be positive");
                    }
                    opts.run_budget_secs = Some(secs);
                }
                "--event-budget" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--event-budget needs a value"));
                    opts.event_budget = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage_error("--event-budget needs an integer")),
                    );
                }
                "--resume" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage_error("--resume needs a journal path"));
                    opts.resume = Some(PathBuf::from(v));
                }
                other => usage_error(&format!(
                    "unknown argument: {other} (try --quick / --seed N / --cache P / \
                     --jobs N / --bench-json P / --no-bench-json / --backend des|flow / \
                     --max-retries N / --run-budget SECS / --event-budget N / --resume P)"
                )),
            }
        }
        opts
    }

    /// The supervision envelope these options describe: per-cell budgets
    /// and retry policy (the backoff doubles from 100 ms).
    pub fn supervisor(&self) -> Supervisor {
        Supervisor {
            budget: RunBudget {
                wall: self.run_budget_secs.map(Duration::from_secs_f64),
                events: self.event_budget,
            },
            retry: RetryPolicy {
                max_retries: self.max_retries,
                backoff: if self.max_retries > 0 {
                    Duration::from_millis(100)
                } else {
                    Duration::ZERO
                },
            },
        }
    }

    /// Opens the `--resume` journal: resumed when the file exists,
    /// created otherwise; `None` without the flag. A journal that cannot
    /// be opened is a hard error (exit 1) — silently running without the
    /// requested crash net would be worse.
    pub fn open_journal(&self) -> Option<RunJournal> {
        let path = self.resume.as_ref()?;
        let journal = if path.exists() {
            RunJournal::resume(path)
        } else {
            RunJournal::create(path)
        };
        match journal {
            Ok(j) => {
                if j.completed_cells() > 0 {
                    println!(
                        "(resuming: {} completed cells journaled in {})",
                        j.completed_cells(),
                        path.display()
                    );
                }
                Some(j)
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Resolves `--backend` to a measurement engine, validated against
    /// the experiment configuration. Per the no-silent-fallback rule, an
    /// unknown name or an unsupported option prints the typed error to
    /// stderr and exits with code 1.
    pub fn resolve_backend(&self) -> Box<dyn Backend> {
        let backend = match anp_flowsim::backend_from_name(&self.backend) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = backend.validate(&self.experiment_config()) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        backend
    }

    /// The experiment configuration this harness run uses.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::cab().with_seed(self.seed);
        if let Some(n) = self.jobs {
            cfg.jobs = Parallelism::fixed(n);
        }
        cfg
    }

    /// Serializes sweep telemetry to the configured `BENCH_anp.json`
    /// (no-op under `--no-bench-json`).
    pub fn emit_bench_json(&self, harness: &str, sweeps: &[&SweepTelemetry]) {
        self.emit_bench_json_full(harness, sweeps, &[], &[]);
    }

    /// [`HarnessOpts::emit_bench_json`] with per-policy scheduling
    /// records for the `sched` array (the `sched_study` harness and
    /// the `anp sched` subcommand).
    pub fn emit_bench_json_sched(
        &self,
        harness: &str,
        sweeps: &[&SweepTelemetry],
        sched: &[SchedRecord],
    ) {
        self.emit_bench_json_full(harness, sweeps, sched, &[]);
    }

    /// [`HarnessOpts::emit_bench_json`] with per-window monitor records
    /// for the v5 `monitor` array (the `monitor_study` harness and the
    /// `anp monitor` subcommand).
    pub fn emit_bench_json_monitor(
        &self,
        harness: &str,
        sweeps: &[&SweepTelemetry],
        monitor: &[MonitorRecord],
    ) {
        self.emit_bench_json_full(harness, sweeps, &[], monitor);
    }

    /// The full emitter behind every `emit_bench_json*` front: writes the
    /// v5 document with whichever arrays the harness populated.
    pub fn emit_bench_json_full(
        &self,
        harness: &str,
        sweeps: &[&SweepTelemetry],
        sched: &[SchedRecord],
        monitor: &[MonitorRecord],
    ) {
        let Some(path) = &self.bench_json else { return };
        match write_bench_json_v5(
            path,
            harness,
            self.seed,
            self.resume.as_deref(),
            sweeps,
            sched,
            monitor,
        ) {
            Ok(()) => println!("(sweep telemetry written to {})", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// The CompressionB sweep: the paper's 40 configurations, or an
    /// 8-configuration subset in quick mode.
    pub fn compression_sweep(&self) -> Vec<CompressionConfig> {
        let all = CompressionConfig::paper_sweep();
        if self.quick {
            // Diagonal subset: one config per (B, M) group with a cycling
            // partner count, so the quick sweep still spans P, B and M.
            all.into_iter()
                .enumerate()
                .filter(|(i, _)| i % 5 == (i / 5) % 5)
                .map(|(_, c)| c)
                .collect()
        } else {
            all
        }
    }

    /// The applications under study: all six, or three in quick mode.
    pub fn apps(&self) -> Vec<AppKind> {
        if self.quick {
            vec![AppKind::Fftw, AppKind::Lulesh, AppKind::Milc]
        } else {
            AppKind::ALL.to_vec()
        }
    }
}

/// Prints the standard harness banner.
pub fn banner(artifact: &str, what: &str, opts: &HarnessOpts) {
    println!("=== {artifact} — {what} ===");
    println!(
        "(Casas & Bronevetsky, IPDPS 2014; simulated Cab switch, seed={}, {})",
        opts.seed,
        if opts.quick {
            "QUICK sweep"
        } else {
            "full sweep"
        }
    );
    println!();
}

/// Measures the queue calibration, look-up table, and app impact profiles
/// — everything the prediction study needs except co-run ground truth.
pub fn measure_study(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> Study {
    measure_study_recorded(cfg, apps, sweep, verbose).0
}

/// [`measure_study`], additionally returning the telemetry of the
/// look-up-table and app-profile sweeps. Runs on the reference DES
/// backend.
pub fn measure_study_recorded(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> (Study, Vec<SweepTelemetry>) {
    measure_study_recorded_with(&DesBackend, cfg, apps, sweep, verbose)
}

/// [`measure_study_recorded`] on an explicit measurement backend: the
/// calibration, the look-up table, and the app impact profiles all come
/// from the same engine, so a flow-model study is internally consistent
/// rather than mixing analytic profiles with DES calibration.
pub fn measure_study_recorded_with(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> (Study, Vec<SweepTelemetry>) {
    let progress = |line: &str| {
        if verbose {
            println!("  [measure] {line}");
        }
    };
    let calibration: Calibration =
        // anp-lint: allow(D003) — bench harness boundary: a failed measurement invalidates the whole benchmark run, so aborting with the error text is the contract
        calibrate_with(backend, cfg, MuPolicy::MinLatency).expect("idle calibration failed");
    let (table, lut_telemetry) =
        LookupTable::measure_recorded_with(backend, cfg, calibration, apps, sweep, progress)
            // anp-lint: allow(D003) — bench harness boundary: a failed measurement invalidates the whole benchmark run, so aborting with the error text is the contract
            .expect("look-up table measurement failed");
    let (study, profile_telemetry) =
        Study::measure_profiles_recorded_with(backend, cfg, table, apps, |line| {
            if verbose {
                println!("  [measure] {line}");
            }
        })
        // anp-lint: allow(D003) — bench harness boundary: a failed measurement invalidates the whole benchmark run, so aborting with the error text is the contract
        .expect("app impact profiles failed");
    (study, vec![lut_telemetry, profile_telemetry])
}

/// Typed holes and cell counts accumulated across the sweeps of one
/// supervised measurement campaign.
#[derive(Debug, Default)]
pub struct Supervision {
    /// Why each missing cell is missing.
    pub failures: Vec<TaskError>,
    /// Cells that produced a value.
    pub completed: usize,
    /// Total cells attempted.
    pub total: usize,
}

impl Supervision {
    /// Folds one sweep's holes and counts into the campaign totals.
    pub fn absorb(&mut self, failures: Vec<TaskError>, completed: usize, total: usize) {
        self.failures.extend(failures);
        self.completed += completed;
        self.total += total;
    }

    /// True when every cell completed.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// The campaign exit code: 0 complete, 3 partial, 1 nothing.
    pub fn exit_code(&self) -> i32 {
        partial_exit_code(self.completed, self.total)
    }

    /// Prints the holes (one stderr line per missing cell) and the
    /// standard partial-result hint naming the resume journal.
    pub fn report(&self, resume: Option<&Path>) {
        for f in &self.failures {
            eprintln!("MISSING {f}");
        }
        if !self.is_complete() {
            eprintln!(
                "{} of {} cells missing (exit code {}){}",
                self.total - self.completed,
                self.total,
                self.exit_code(),
                match resume {
                    Some(p) => format!("; re-run with --resume {} to complete", p.display()),
                    None => "; add --resume <journal> to make the campaign resumable".to_owned(),
                }
            );
        }
    }
}

/// [`measure_study_recorded_with`] under a supervision envelope: failing
/// cells leave typed holes instead of aborting the harness, and with a
/// journal every completed cell survives a crash. The study comes back
/// `None` when no look-up-table entry completed (nothing to predict
/// from); otherwise it is partial where cells failed and byte-identical
/// to the plain path where they did not.
pub fn measure_study_supervised_with(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    supervisor: &Supervisor,
    journal: Option<&RunJournal>,
    verbose: bool,
) -> Result<(Option<Study>, Supervision, Vec<SweepTelemetry>), JournalError> {
    let progress = |line: &str| {
        if verbose {
            println!("  [measure] {line}");
        }
    };
    let calibration: Calibration =
        // anp-lint: allow(D003) — bench harness boundary: a failed measurement invalidates the whole benchmark run, so aborting with the error text is the contract
        calibrate_with(backend, cfg, MuPolicy::MinLatency).expect("idle calibration failed");
    let mut supervision = Supervision::default();
    let (lut, lut_telemetry) = LookupTable::measure_supervised_with(
        backend,
        cfg,
        calibration,
        apps,
        sweep,
        supervisor,
        journal,
        progress,
    )?;
    let mut telemetry = vec![lut_telemetry];
    let (table, failures, completed, total) = (lut.table, lut.failures, lut.completed, lut.total);
    supervision.absorb(failures, completed, total);
    let Some(table) = table else {
        return Ok((None, supervision, telemetry));
    };
    let (study, profile_failures, profile_telemetry) = Study::measure_profiles_supervised_with(
        backend,
        cfg,
        table,
        apps,
        supervisor,
        journal,
        |line| {
            if verbose {
                println!("  [measure] {line}");
            }
        },
    )?;
    supervision.absorb(profile_failures, study.app_profiles.len(), apps.len());
    telemetry.push(profile_telemetry);
    Ok((Some(study), supervision, telemetry))
}

/// The result of a supervised end-to-end prediction campaign.
#[derive(Debug)]
pub struct SupervisedOutcomes {
    /// Pairing outcomes in victim-major order; unmeasured pairings (from
    /// failed cells or missing baselines) keep `measured: None`.
    pub outcomes: Vec<PairOutcome>,
    /// Holes and cell counts across every sweep that ran.
    pub supervision: Supervision,
    /// Telemetry of every sweep that ran (empty when served from cache).
    pub telemetry: Vec<SweepTelemetry>,
}

/// [`full_outcomes_recorded`] under the options' supervision envelope
/// (`--max-retries`, `--run-budget`, `--event-budget`, `--resume`):
/// failures leave typed holes, siblings complete, and the caller maps
/// [`Supervision::exit_code`] onto the 0/3/1 convention. The cache is
/// honored only when it holds a *complete* campaign, and written only
/// when this campaign completes — a partial cache would silently shadow
/// the missing cells on the next run.
pub fn full_outcomes_supervised(opts: &HarnessOpts) -> SupervisedOutcomes {
    if let Some(path) = &opts.cache {
        if let Some(outcomes) = load_outcomes(path) {
            if outcomes.iter().all(|o| o.measured.is_some()) {
                println!(
                    "(loaded {} cached pairings from {})",
                    outcomes.len(),
                    path.display()
                );
                return SupervisedOutcomes {
                    outcomes,
                    supervision: Supervision::default(),
                    telemetry: Vec::new(),
                };
            }
            println!(
                "(ignoring incomplete cache {} — re-measuring)",
                path.display()
            );
        }
    }
    let cfg = opts.experiment_config();
    let backend = opts.resolve_backend();
    let apps = opts.apps();
    let sweep = opts.compression_sweep();
    let supervisor = opts.supervisor();
    let journal = opts.open_journal();
    let die = |e: JournalError| -> ! {
        eprintln!("error: {e}");
        std::process::exit(1);
    };
    let (study, mut supervision, mut telemetry) = measure_study_supervised_with(
        backend.as_ref(),
        &cfg,
        &apps,
        &sweep,
        &supervisor,
        journal.as_ref(),
        true,
    )
    .unwrap_or_else(|e| die(e));
    let Some(study) = study else {
        return SupervisedOutcomes {
            outcomes: Vec::new(),
            supervision,
            telemetry,
        };
    };
    let models = anp_core::all_models();
    let mut outcomes = study.predict_all(&apps, &models);
    let total_pairs = outcomes.len();
    let (pair_failures, pair_telemetry) = study
        .measure_pairs_supervised_with(
            backend.as_ref(),
            &cfg,
            &mut outcomes,
            &supervisor,
            journal.as_ref(),
            |line| println!("  [corun] {line}"),
        )
        .unwrap_or_else(|e| die(e));
    let pair_completed = total_pairs - pair_failures.len();
    supervision.absorb(pair_failures, pair_completed, total_pairs);
    telemetry.push(pair_telemetry);
    if supervision.is_complete() {
        if let Some(path) = &opts.cache {
            if save_outcomes(path, &outcomes) {
                println!("(cached pairings to {})", path.display());
            }
        }
    }
    SupervisedOutcomes {
        outcomes,
        supervision,
        telemetry,
    }
}

/// Runs (or loads from cache) the complete prediction study: isolated
/// measurements, predictions for every ordered pair, and co-run ground
/// truth. Returns outcomes in victim-major order, plus the telemetry of
/// every sweep that actually ran (empty when served from cache).
pub fn full_outcomes_recorded(opts: &HarnessOpts) -> (Vec<PairOutcome>, Vec<SweepTelemetry>) {
    if let Some(path) = &opts.cache {
        if let Some(outcomes) = load_outcomes(path) {
            println!(
                "(loaded {} cached pairings from {})",
                outcomes.len(),
                path.display()
            );
            return (outcomes, Vec::new());
        }
    }
    let cfg = opts.experiment_config();
    let backend = opts.resolve_backend();
    let apps = opts.apps();
    let sweep = opts.compression_sweep();
    let (study, mut telemetry) =
        measure_study_recorded_with(backend.as_ref(), &cfg, &apps, &sweep, true);
    let models = anp_core::all_models();
    let mut outcomes = study.predict_all(&apps, &models);
    let pair_telemetry = study
        .measure_pairs_recorded_with(backend.as_ref(), &cfg, &mut outcomes, |line| {
            println!("  [corun] {line}")
        })
        // anp-lint: allow(D003) — bench harness boundary: a failed measurement invalidates the whole benchmark run, so aborting with the error text is the contract
        .expect("co-run measurement failed");
    telemetry.push(pair_telemetry);
    if let Some(path) = &opts.cache {
        if save_outcomes(path, &outcomes) {
            println!("(cached pairings to {})", path.display());
        }
    }
    (outcomes, telemetry)
}

/// [`full_outcomes_recorded`] without the telemetry.
pub fn full_outcomes(opts: &HarnessOpts) -> Vec<PairOutcome> {
    full_outcomes_recorded(opts).0
}

/// Writes `bytes` to `path` atomically: a unique temp file in the same
/// directory is written, flushed to disk, and renamed over the target,
/// so a crash (or kill) mid-write can never leave a torn artefact — the
/// old file survives intact until the rename lands.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("artefact");
    let tmp = dir.join(format!(".{name}.tmp-{}", std::process::id()));
    let result = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        std::fs::rename(&tmp, path)
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Writes sweep telemetry records to `path` as a single JSON document —
/// the `BENCH_anp.json` perf-trajectory artefact. Schema (one object):
///
/// ```text
/// { "schema": "anp-bench-v5", "harness": "<binary>", "seed": N,
///   "journal": "<path>" | null,
///   "sweeps": [ <SweepTelemetry::to_json() objects> ],
///   "sched": [ <SchedRecord::to_json() objects> ],
///   "monitor": [ <MonitorRecord::to_json() objects> ] }
/// ```
///
/// Each sweep object carries `backend` (`"des"`, `"flow"`, or `"mixed"`),
/// `workers`, end-to-end `wall_secs`, the serial-equivalent
/// `serial_secs`, the realized `speedup`, total simulation `events`,
/// aggregate `events_per_sec`, and a `per_run` array of
/// `{label, backend, wall_secs, events, outcome, retries}` cells. v2
/// added the sweep- and run-level `backend` fields; v3 added the
/// top-level `journal` path and the per-run `outcome`
/// (`ok`/`resumed`/`failed`/`panicked`/`budget`) and `retries` fields;
/// v4 added the top-level `sched` array of per-policy scheduling records
/// (`{policy, model, backend, mean_slowdown_pct, makespan_us,
/// regret_pct, slo_violations, decisions, decision_wall_secs}`), empty
/// for harnesses that do not schedule; v5 added the top-level `monitor`
/// array of per-window online-estimation records (`{cell, window,
/// end_us, samples, mean_us, smooth_mean_us, utilization, shift}`),
/// empty for harnesses that do not monitor (see DESIGN.md, "Telemetry
/// schema"). The file is written atomically ([`write_atomic`]).
pub fn write_bench_json(
    path: &Path,
    harness: &str,
    seed: u64,
    journal: Option<&Path>,
    sweeps: &[&SweepTelemetry],
) -> std::io::Result<()> {
    write_bench_json_v5(path, harness, seed, journal, sweeps, &[], &[])
}

/// [`write_bench_json`] with the `sched` array populated: one record
/// per placement policy of a scheduling study.
pub fn write_bench_json_v4(
    path: &Path,
    harness: &str,
    seed: u64,
    journal: Option<&Path>,
    sweeps: &[&SweepTelemetry],
    sched: &[SchedRecord],
) -> std::io::Result<()> {
    write_bench_json_v5(path, harness, seed, journal, sweeps, sched, &[])
}

/// [`write_bench_json`] with both optional arrays: per-policy `sched`
/// records and per-window `monitor` records.
pub fn write_bench_json_v5(
    path: &Path,
    harness: &str,
    seed: u64,
    journal: Option<&Path>,
    sweeps: &[&SweepTelemetry],
    sched: &[SchedRecord],
    monitor: &[MonitorRecord],
) -> std::io::Result<()> {
    let mut out = String::new();
    let journal = journal.map_or("null".to_owned(), |p| format!("\"{}\"", p.display()));
    out.push_str(&format!(
        "{{\n  \"schema\": \"anp-bench-v5\",\n  \"harness\": \"{harness}\",\n  \"seed\": {seed},\n  \"journal\": {journal},\n  \"sweeps\": [\n"
    ));
    for (i, t) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&t.to_json());
    }
    out.push_str("\n  ],\n  \"sched\": [\n");
    for (i, r) in sched.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&r.to_json());
    }
    out.push_str("\n  ],\n  \"monitor\": [\n");
    for (i, r) in monitor.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&r.to_json());
    }
    out.push_str("\n  ]\n}\n");
    write_atomic(path, out.as_bytes())
}

/// Serializes outcomes to a plain TSV file (no external dependencies).
/// The write is atomic ([`write_atomic`]); a failure warns on stderr and
/// returns `false` rather than aborting — the cache is an accelerator,
/// not a dependency of the campaign.
pub fn save_outcomes(path: &Path, outcomes: &[PairOutcome]) -> bool {
    let mut out = String::from("victim\tother\tmeasured\tmodel=prediction...\n");
    for o in outcomes {
        out.push_str(&format!(
            "{}\t{}\t{}",
            o.victim.name(),
            o.other.name(),
            o.measured.map_or("NA".to_owned(), |m| format!("{m:.6}"))
        ));
        for (name, p) in &o.predicted {
            out.push_str(&format!("\t{name}={p:.6}"));
        }
        out.push('\n');
    }
    match write_atomic(path, out.as_bytes()) {
        Ok(()) => true,
        Err(e) => {
            eprintln!(
                "warning: cannot write cache {}: {e}; continuing without a cache",
                path.display()
            );
            false
        }
    }
}

/// Loads outcomes from [`save_outcomes`]' format; `None` if absent or
/// malformed.
pub fn load_outcomes(path: &Path) -> Option<Vec<PairOutcome>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let mut cols = line.split('\t');
        let victim = AppKind::from_name(cols.next()?)?;
        let other = AppKind::from_name(cols.next()?)?;
        let measured = match cols.next()? {
            "NA" => None,
            v => Some(v.parse().ok()?),
        };
        let mut predicted = BTreeMap::new();
        for kv in cols {
            let (name, v) = kv.split_once('=')?;
            let kind: ModelKind = name.parse().ok()?;
            predicted.insert(kind, v.parse().ok()?);
        }
        out.push(PairOutcome {
            victim,
            other,
            measured,
            predicted,
        });
    }
    (!out.is_empty()).then_some(out)
}

/// Renders a latency histogram as rows of `bin-center  frequency%  bar`,
/// the textual equivalent of one Fig. 3 series.
pub fn render_histogram(profile: &LatencyProfile) -> String {
    let h = profile.histogram();
    let mut out = String::new();
    for i in 0..h.bins() {
        let f = h.frequency(i) * 100.0;
        let bar = "#".repeat((f / 2.0).round() as usize);
        out.push_str(&format!("{:>6.2}us {:>5.1}% {}\n", h.bin_center(i), f, bar));
    }
    let over = h.overflow() as f64 / h.total().max(1) as f64 * 100.0;
    if over > 0.0 {
        out.push_str(&format!("  >10us {over:>5.1}%\n"));
    }
    out
}

/// Prints the Fig. 9-style summary table from pairing outcomes. A
/// degenerate error sample (e.g. NaN from a poisoned cell) is reported as
/// a one-line hole instead of aborting the report.
pub fn print_error_summary(outcomes: &[PairOutcome]) {
    let summaries = match error_summaries(outcomes, &ModelKind::ALL) {
        Ok(s) => s,
        Err(e) => {
            println!("error summary unavailable: {e}");
            return;
        }
    };
    println!(
        "{:<15} {:>7} {:>7} {:>7} {:>7} {:>7}  {:>10}",
        "model", "min", "q1", "median", "q3", "max", "<10% err"
    );
    for kind in ModelKind::ALL {
        if let Some(s) = summaries.get(&kind) {
            let errors: Vec<f64> = outcomes.iter().filter_map(|o| o.abs_error(kind)).collect();
            let under10 =
                errors.iter().filter(|e| **e < 10.0).count() as f64 / errors.len() as f64 * 100.0;
            println!(
                "{:<15} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}  {:>9.0}%",
                kind.name(),
                s.min,
                s.q1,
                s.median,
                s.q3,
                s.max,
                under10
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_cache_roundtrips() {
        let dir = std::env::temp_dir().join("anp_bench_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("outcomes.tsv");
        let outcomes = vec![
            PairOutcome {
                victim: AppKind::Fftw,
                other: AppKind::Mcb,
                measured: Some(12.5),
                predicted: [(ModelKind::Queue, 11.0), (ModelKind::AverageLt, 30.0)]
                    .into_iter()
                    .collect(),
            },
            PairOutcome {
                victim: AppKind::Amg,
                other: AppKind::Amg,
                measured: None,
                predicted: BTreeMap::new(),
            },
        ];
        save_outcomes(&path, &outcomes);
        let loaded = load_outcomes(&path).expect("cache must load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].victim, AppKind::Fftw);
        assert_eq!(loaded[0].measured, Some(12.5));
        assert_eq!(loaded[0].predicted[&ModelKind::Queue], 11.0);
        assert_eq!(loaded[1].measured, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_cache_returns_none() {
        assert!(load_outcomes(Path::new("/nonexistent/anp.tsv")).is_none());
    }

    #[test]
    fn quick_sweep_is_a_subset() {
        let quick = HarnessOpts {
            quick: true,
            seed: 1,
            cache: None,
            jobs: None,
            bench_json: None,
            backend: "des".to_owned(),
            max_retries: 0,
            run_budget_secs: None,
            event_budget: None,
            resume: None,
        };
        let full = HarnessOpts {
            quick: false,
            seed: 1,
            cache: None,
            jobs: None,
            bench_json: None,
            backend: "des".to_owned(),
            max_retries: 0,
            run_budget_secs: None,
            event_budget: None,
            resume: None,
        };
        assert_eq!(full.compression_sweep().len(), 40);
        assert_eq!(quick.compression_sweep().len(), 8);
        let partners: std::collections::HashSet<u32> = quick
            .compression_sweep()
            .iter()
            .map(|c| c.partners)
            .collect();
        assert!(partners.len() >= 3, "quick sweep must vary P");
        assert_eq!(full.apps().len(), 6);
        assert_eq!(quick.apps().len(), 3);
    }

    #[test]
    fn atomic_write_replaces_without_leftovers() {
        let dir = std::env::temp_dir().join("anp_bench_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artefact.json");
        write_atomic(&path, b"one").unwrap();
        write_atomic(&path, b"two").unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "two");
        let leftovers = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp-")
            })
            .count();
        assert_eq!(leftovers, 0, "temp files must not survive");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bench_json_carries_v5_fields() {
        use anp_core::RunRecord;
        let dir = std::env::temp_dir().join("anp_bench_v5_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bench.json");
        let t = SweepTelemetry {
            name: "s".to_owned(),
            backend: "des".to_owned(),
            workers: 2,
            wall_secs: 1.0,
            runs: vec![RunRecord {
                label: "cell0".to_owned(),
                backend: "des".to_owned(),
                wall_secs: 0.5,
                events: 10,
                outcome: "resumed".to_owned(),
                retries: 1,
            }],
        };
        write_bench_json(&path, "h", 7, Some(Path::new("run.jsonl")), &[&t]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"schema\": \"anp-bench-v5\""));
        assert!(text.contains("\"journal\": \"run.jsonl\""));
        assert!(text.contains("\"outcome\":\"resumed\""));
        assert!(text.contains("\"retries\":1"));
        assert!(
            text.contains("\"sched\": ["),
            "v5 always carries a sched array"
        );
        assert!(
            text.contains("\"monitor\": ["),
            "v5 always carries a monitor array"
        );
        let rec = SchedRecord {
            policy: "predictive:Queue:flow".to_owned(),
            model: Some(ModelKind::Queue),
            backend: Some("flow".to_owned()),
            mean_slowdown_pct: 12.0,
            makespan_us: 50_000.0,
            regret_pct: 2.0,
            slo_violations: 1,
            decisions: 10,
            decision_wall_secs: 0.012,
        };
        let win = MonitorRecord {
            cell: "util:P5-B1.0e6-M10".to_owned(),
            window: 3,
            end_us: 1000.0,
            samples: 9,
            mean_us: Some(2.75),
            smooth_mean_us: 2.6,
            utilization: 0.42,
            shift: Some("up"),
        };
        let quiet = MonitorRecord {
            cell: "detect:FFTW".to_owned(),
            window: 0,
            end_us: 250.0,
            samples: 1,
            mean_us: None,
            smooth_mean_us: 2.45,
            utilization: 0.0,
            shift: None,
        };
        write_bench_json_v5(&path, "h", 7, None, &[&t], &[rec], &[win, quiet]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"journal\": null"));
        assert!(text.contains("\"policy\":\"predictive:Queue:flow\""));
        assert!(text.contains("\"regret_pct\":2"));
        assert!(text.contains("\"cell\":\"util:P5-B1.0e6-M10\""));
        assert!(text.contains("\"shift\":\"up\""));
        assert!(text.contains("\"mean_us\":null"));
        assert!(text.contains("\"shift\":null"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn supervisor_reflects_flags() {
        let mut opts = HarnessOpts {
            quick: false,
            seed: 1,
            cache: None,
            jobs: None,
            bench_json: None,
            backend: "des".to_owned(),
            max_retries: 2,
            run_budget_secs: Some(1.5),
            event_budget: Some(100),
            resume: None,
        };
        let sup = opts.supervisor();
        assert_eq!(sup.retry.max_retries, 2);
        assert!(!sup.retry.backoff.is_zero());
        assert_eq!(sup.budget.wall, Some(Duration::from_secs_f64(1.5)));
        assert_eq!(sup.budget.events, Some(100));
        opts.max_retries = 0;
        opts.run_budget_secs = None;
        opts.event_budget = None;
        let sup = opts.supervisor();
        assert!(sup.budget.is_unlimited());
        assert_eq!(sup.retry.max_retries, 0);
    }

    #[test]
    fn supervision_exit_codes_follow_convention() {
        let mut s = Supervision::default();
        assert!(s.is_complete());
        assert_eq!(s.exit_code(), 0, "empty campaign is vacuously complete");
        s.absorb(Vec::new(), 4, 4);
        assert_eq!(s.exit_code(), 0);
        s.absorb(Vec::new(), 1, 2); // one hole (failure list elided)
        assert_eq!(s.exit_code(), 3);
        let mut dead = Supervision::default();
        dead.absorb(Vec::new(), 0, 3);
        assert_eq!(dead.exit_code(), 1);
    }

    #[test]
    fn histogram_rendering_contains_all_bins() {
        let p = LatencyProfile::from_samples(&[1.1, 1.3, 2.4, 11.0]);
        let text = render_histogram(&p);
        assert_eq!(text.lines().count(), 21, "20 bins + overflow row");
        assert!(text.contains(">10us"));
    }
}
