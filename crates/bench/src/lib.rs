//! # anp-bench — experiment harnesses for every table and figure
//!
//! One binary per artefact of the paper's evaluation:
//!
//! | Binary | Reproduces |
//! |---|---|
//! | `fig3_latency_distributions` | Fig. 3 — probe-latency distributions (idle + 6 apps) |
//! | `fig6_compression_utilization` | Fig. 6 — switch utilization of the 40 CompressionB configs |
//! | `fig7_degradation_curves` | Fig. 7 — % degradation vs % utilization per app |
//! | `table1_pair_slowdowns` | Table I — measured slowdowns of all 36 app pairs |
//! | `fig8_prediction_errors` | Fig. 8 — per-pairing |real − predicted| for the 4 models |
//! | `fig9_error_summary` | Fig. 9 — quartile summary of model errors |
//!
//! Extension harnesses beyond the paper's artefacts:
//!
//! | Binary | What it studies |
//! |---|---|
//! | `calibration_report` | the substrate's calibration at a glance, incl. per-app network-wait fractions |
//! | `ablation_report` | µ policy, routing parallelism, exchange chaining |
//! | `relativity_check` | literally degraded switches vs CompressionB emulation |
//! | `phase_model_study` | the §V-B phase-aware queue model |
//! | `seed_sensitivity` | across-seed spread of headline metrics |
//! | `backend_xval` | flow-model vs DES cross-validation (error + speedup) |
//!
//! Every binary accepts `--quick` (a scaled-down sweep for smoke runs),
//! `--seed <n>`, `--backend {des,flow}`, and prints plain-text tables.
//! `fig8`/`fig9` additionally accept `--cache <path>` to reuse the
//! expensive measurement study across invocations.
//!
//! The `benches/` directory holds Criterion micro-benchmarks of the
//! simulator and model kernels (event queue, switch path, matching,
//! collectives, histogram metrics, P-K inversion, end-to-end probes).

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use anp_core::{
    calibrate_with, error_summaries, Backend, Calibration, DesBackend, ExperimentConfig,
    LatencyProfile, LookupTable, MuPolicy, PairOutcome, Parallelism, Study, SweepTelemetry,
};
use anp_workloads::{AppKind, CompressionConfig};

pub mod xval;

/// Command-line options shared by all harness binaries.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Run a scaled-down sweep (fewer configurations / pairings).
    pub quick: bool,
    /// Base seed for the whole study.
    pub seed: u64,
    /// Optional path for caching study measurements (fig8/fig9).
    pub cache: Option<PathBuf>,
    /// Worker threads for the experiment sweeps (`None` = all cores).
    pub jobs: Option<usize>,
    /// Where sweep telemetry is written (default `BENCH_anp.json`;
    /// `--no-bench-json` disables the emitter).
    pub bench_json: Option<PathBuf>,
    /// Measurement backend name (`"des"` or `"flow"`); resolved by
    /// [`HarnessOpts::backend`].
    pub backend: String,
}

impl HarnessOpts {
    /// Parses `--quick`, `--seed <n>`, `--cache <path>`, `--jobs <n>`,
    /// `--bench-json <path>` / `--no-bench-json`, `--backend <name>`
    /// from `std::env`.
    pub fn from_args() -> Self {
        let mut opts = HarnessOpts {
            quick: false,
            seed: 0xA11CE,
            cache: None,
            jobs: None,
            bench_json: Some(PathBuf::from("BENCH_anp.json")),
            backend: "des".to_owned(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => opts.quick = true,
                "--seed" => {
                    let v = args.next().expect("--seed needs a value");
                    opts.seed = v.parse().expect("--seed needs an integer");
                }
                "--cache" => {
                    let v = args.next().expect("--cache needs a path");
                    opts.cache = Some(PathBuf::from(v));
                }
                "--jobs" => {
                    let v = args.next().expect("--jobs needs a value");
                    opts.jobs = Some(v.parse().expect("--jobs needs an integer"));
                }
                "--bench-json" => {
                    let v = args.next().expect("--bench-json needs a path");
                    opts.bench_json = Some(PathBuf::from(v));
                }
                "--no-bench-json" => opts.bench_json = None,
                "--backend" => {
                    let v = args.next().expect("--backend needs a value (des or flow)");
                    opts.backend = v;
                }
                other => panic!(
                    "unknown argument: {other} (try --quick / --seed N / --cache P / \
                     --jobs N / --bench-json P / --no-bench-json / --backend des|flow)"
                ),
            }
        }
        opts
    }

    /// Resolves `--backend` to a measurement engine, validated against
    /// the experiment configuration. Per the no-silent-fallback rule, an
    /// unknown name or an unsupported option prints the typed error to
    /// stderr and exits with code 1.
    pub fn resolve_backend(&self) -> Box<dyn Backend> {
        let backend = match anp_flowsim::backend_from_name(&self.backend) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        };
        if let Err(e) = backend.validate(&self.experiment_config()) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        backend
    }

    /// The experiment configuration this harness run uses.
    pub fn experiment_config(&self) -> ExperimentConfig {
        let mut cfg = ExperimentConfig::cab().with_seed(self.seed);
        if let Some(n) = self.jobs {
            cfg.jobs = Parallelism::fixed(n);
        }
        cfg
    }

    /// Serializes sweep telemetry to the configured `BENCH_anp.json`
    /// (no-op under `--no-bench-json`).
    pub fn emit_bench_json(&self, harness: &str, sweeps: &[&SweepTelemetry]) {
        let Some(path) = &self.bench_json else { return };
        match write_bench_json(path, harness, self.seed, sweeps) {
            Ok(()) => println!("(sweep telemetry written to {})", path.display()),
            Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
        }
    }

    /// The CompressionB sweep: the paper's 40 configurations, or an
    /// 8-configuration subset in quick mode.
    pub fn compression_sweep(&self) -> Vec<CompressionConfig> {
        let all = CompressionConfig::paper_sweep();
        if self.quick {
            // Diagonal subset: one config per (B, M) group with a cycling
            // partner count, so the quick sweep still spans P, B and M.
            all.into_iter()
                .enumerate()
                .filter(|(i, _)| i % 5 == (i / 5) % 5)
                .map(|(_, c)| c)
                .collect()
        } else {
            all
        }
    }

    /// The applications under study: all six, or three in quick mode.
    pub fn apps(&self) -> Vec<AppKind> {
        if self.quick {
            vec![AppKind::Fftw, AppKind::Lulesh, AppKind::Milc]
        } else {
            AppKind::ALL.to_vec()
        }
    }
}

/// Prints the standard harness banner.
pub fn banner(artifact: &str, what: &str, opts: &HarnessOpts) {
    println!("=== {artifact} — {what} ===");
    println!(
        "(Casas & Bronevetsky, IPDPS 2014; simulated Cab switch, seed={}, {})",
        opts.seed,
        if opts.quick { "QUICK sweep" } else { "full sweep" }
    );
    println!();
}

/// Measures the queue calibration, look-up table, and app impact profiles
/// — everything the prediction study needs except co-run ground truth.
pub fn measure_study(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> Study {
    measure_study_recorded(cfg, apps, sweep, verbose).0
}

/// [`measure_study`], additionally returning the telemetry of the
/// look-up-table and app-profile sweeps. Runs on the reference DES
/// backend.
pub fn measure_study_recorded(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> (Study, Vec<SweepTelemetry>) {
    measure_study_recorded_with(&DesBackend, cfg, apps, sweep, verbose)
}

/// [`measure_study_recorded`] on an explicit measurement backend: the
/// calibration, the look-up table, and the app impact profiles all come
/// from the same engine, so a flow-model study is internally consistent
/// rather than mixing analytic profiles with DES calibration.
pub fn measure_study_recorded_with(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    sweep: &[CompressionConfig],
    verbose: bool,
) -> (Study, Vec<SweepTelemetry>) {
    let progress = |line: &str| {
        if verbose {
            println!("  [measure] {line}");
        }
    };
    let calibration: Calibration =
        calibrate_with(backend, cfg, MuPolicy::MinLatency).expect("idle calibration failed");
    let (table, lut_telemetry) =
        LookupTable::measure_recorded_with(backend, cfg, calibration, apps, sweep, progress)
            .expect("look-up table measurement failed");
    let (study, profile_telemetry) =
        Study::measure_profiles_recorded_with(backend, cfg, table, apps, |line| {
            if verbose {
                println!("  [measure] {line}");
            }
        })
        .expect("app impact profiles failed");
    (study, vec![lut_telemetry, profile_telemetry])
}

/// Runs (or loads from cache) the complete prediction study: isolated
/// measurements, predictions for every ordered pair, and co-run ground
/// truth. Returns outcomes in victim-major order, plus the telemetry of
/// every sweep that actually ran (empty when served from cache).
pub fn full_outcomes_recorded(opts: &HarnessOpts) -> (Vec<PairOutcome>, Vec<SweepTelemetry>) {
    if let Some(path) = &opts.cache {
        if let Some(outcomes) = load_outcomes(path) {
            println!(
                "(loaded {} cached pairings from {})",
                outcomes.len(),
                path.display()
            );
            return (outcomes, Vec::new());
        }
    }
    let cfg = opts.experiment_config();
    let backend = opts.resolve_backend();
    let apps = opts.apps();
    let sweep = opts.compression_sweep();
    let (study, mut telemetry) =
        measure_study_recorded_with(backend.as_ref(), &cfg, &apps, &sweep, true);
    let models = anp_core::all_models();
    let mut outcomes = study.predict_all(&apps, &models);
    let pair_telemetry = study
        .measure_pairs_recorded_with(backend.as_ref(), &cfg, &mut outcomes, |line| {
            println!("  [corun] {line}")
        })
        .expect("co-run measurement failed");
    telemetry.push(pair_telemetry);
    if let Some(path) = &opts.cache {
        save_outcomes(path, &outcomes);
        println!("(cached pairings to {})", path.display());
    }
    (outcomes, telemetry)
}

/// [`full_outcomes_recorded`] without the telemetry.
pub fn full_outcomes(opts: &HarnessOpts) -> Vec<PairOutcome> {
    full_outcomes_recorded(opts).0
}

/// Writes sweep telemetry records to `path` as a single JSON document —
/// the `BENCH_anp.json` perf-trajectory artefact. Schema (one object):
///
/// ```text
/// { "schema": "anp-bench-v2", "harness": "<binary>", "seed": N,
///   "sweeps": [ <SweepTelemetry::to_json() objects> ] }
/// ```
///
/// Each sweep object carries `backend` (`"des"`, `"flow"`, or `"mixed"`),
/// `workers`, end-to-end `wall_secs`, the serial-equivalent
/// `serial_secs`, the realized `speedup`, total simulation `events`,
/// aggregate `events_per_sec`, and a `per_run` array of
/// `{label, backend, wall_secs, events}` cells. v2 added the sweep- and
/// run-level `backend` fields (see DESIGN.md, "Telemetry schema").
pub fn write_bench_json(
    path: &Path,
    harness: &str,
    seed: u64,
    sweeps: &[&SweepTelemetry],
) -> std::io::Result<()> {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\n  \"schema\": \"anp-bench-v2\",\n  \"harness\": \"{harness}\",\n  \"seed\": {seed},\n  \"sweeps\": [\n"
    ));
    for (i, t) in sweeps.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("    ");
        out.push_str(&t.to_json());
    }
    out.push_str("\n  ]\n}\n");
    let mut f = std::fs::File::create(path)?;
    f.write_all(out.as_bytes())
}

/// Serializes outcomes to a plain TSV file (no external dependencies).
pub fn save_outcomes(path: &Path, outcomes: &[PairOutcome]) {
    let mut out = String::from("victim\tother\tmeasured\tmodel=prediction...\n");
    for o in outcomes {
        out.push_str(&format!(
            "{}\t{}\t{}",
            o.victim.name(),
            o.other.name(),
            o.measured.map_or("NA".to_owned(), |m| format!("{m:.6}"))
        ));
        for (name, p) in &o.predicted {
            out.push_str(&format!("\t{name}={p:.6}"));
        }
        out.push('\n');
    }
    let mut f = std::fs::File::create(path).expect("cannot create cache file");
    f.write_all(out.as_bytes()).expect("cannot write cache file");
}

/// Loads outcomes from [`save_outcomes`]' format; `None` if absent or
/// malformed.
pub fn load_outcomes(path: &Path) -> Option<Vec<PairOutcome>> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut out = Vec::new();
    for line in text.lines().skip(1) {
        let mut cols = line.split('\t');
        let victim = AppKind::from_name(cols.next()?)?;
        let other = AppKind::from_name(cols.next()?)?;
        let measured = match cols.next()? {
            "NA" => None,
            v => Some(v.parse().ok()?),
        };
        let mut predicted = BTreeMap::new();
        for kv in cols {
            let (name, v) = kv.split_once('=')?;
            let name: &'static str = match name {
                "AverageLT" => "AverageLT",
                "AverageStDevLT" => "AverageStDevLT",
                "PDFLT" => "PDFLT",
                "Queue" => "Queue",
                _ => return None,
            };
            predicted.insert(name, v.parse().ok()?);
        }
        out.push(PairOutcome {
            victim,
            other,
            measured,
            predicted,
        });
    }
    (!out.is_empty()).then_some(out)
}

/// Renders a latency histogram as rows of `bin-center  frequency%  bar`,
/// the textual equivalent of one Fig. 3 series.
pub fn render_histogram(profile: &LatencyProfile) -> String {
    let h = profile.histogram();
    let mut out = String::new();
    for i in 0..h.bins() {
        let f = h.frequency(i) * 100.0;
        let bar = "#".repeat((f / 2.0).round() as usize);
        out.push_str(&format!("{:>6.2}us {:>5.1}% {}\n", h.bin_center(i), f, bar));
    }
    let over = h.overflow() as f64 / h.total().max(1) as f64 * 100.0;
    if over > 0.0 {
        out.push_str(&format!("  >10us {over:>5.1}%\n"));
    }
    out
}

/// Prints the Fig. 9-style summary table from pairing outcomes.
pub fn print_error_summary(outcomes: &[PairOutcome]) {
    let names = ["AverageLT", "AverageStDevLT", "PDFLT", "Queue"];
    let summaries = error_summaries(outcomes, &names);
    println!(
        "{:<15} {:>7} {:>7} {:>7} {:>7} {:>7}  {:>10}",
        "model", "min", "q1", "median", "q3", "max", "<10% err"
    );
    for name in names {
        if let Some(s) = summaries.get(name) {
            let errors: Vec<f64> = outcomes.iter().filter_map(|o| o.abs_error(name)).collect();
            let under10 =
                errors.iter().filter(|e| **e < 10.0).count() as f64 / errors.len() as f64 * 100.0;
            println!(
                "{:<15} {:>7.1} {:>7.1} {:>7.1} {:>7.1} {:>7.1}  {:>9.0}%",
                name, s.min, s.q1, s.median, s.q3, s.max, under10
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_cache_roundtrips() {
        let dir = std::env::temp_dir().join("anp_bench_cache_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("outcomes.tsv");
        let outcomes = vec![
            PairOutcome {
                victim: AppKind::Fftw,
                other: AppKind::Mcb,
                measured: Some(12.5),
                predicted: [("Queue", 11.0), ("AverageLT", 30.0)]
                    .into_iter()
                    .collect(),
            },
            PairOutcome {
                victim: AppKind::Amg,
                other: AppKind::Amg,
                measured: None,
                predicted: BTreeMap::new(),
            },
        ];
        save_outcomes(&path, &outcomes);
        let loaded = load_outcomes(&path).expect("cache must load");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded[0].victim, AppKind::Fftw);
        assert_eq!(loaded[0].measured, Some(12.5));
        assert_eq!(loaded[0].predicted["Queue"], 11.0);
        assert_eq!(loaded[1].measured, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_cache_returns_none() {
        assert!(load_outcomes(Path::new("/nonexistent/anp.tsv")).is_none());
    }

    #[test]
    fn quick_sweep_is_a_subset() {
        let quick = HarnessOpts {
            quick: true,
            seed: 1,
            cache: None,
            jobs: None,
            bench_json: None,
            backend: "des".to_owned(),
        };
        let full = HarnessOpts {
            quick: false,
            seed: 1,
            cache: None,
            jobs: None,
            bench_json: None,
            backend: "des".to_owned(),
        };
        assert_eq!(full.compression_sweep().len(), 40);
        assert_eq!(quick.compression_sweep().len(), 8);
        let partners: std::collections::HashSet<u32> =
            quick.compression_sweep().iter().map(|c| c.partners).collect();
        assert!(partners.len() >= 3, "quick sweep must vary P");
        assert_eq!(full.apps().len(), 6);
        assert_eq!(quick.apps().len(), 3);
    }

    #[test]
    fn histogram_rendering_contains_all_bins() {
        let p = LatencyProfile::from_samples(&[1.1, 1.3, 2.4, 11.0]);
        let text = render_histogram(&p);
        assert_eq!(text.lines().count(), 21, "20 bins + overflow row");
        assert!(text.contains(">10us"));
    }
}
