//! Backend cross-validation: run the same measurement grid on the DES
//! and flow backends and quantify where the analytic model stands.
//!
//! Three per-cell observables are compared:
//!
//! * mean probe latency of each impact profile (idle + one per
//!   CompressionB configuration);
//! * the P-K **utilization** each backend's own calibration reads off
//!   those profiles;
//! * the **runtime ratio** `loaded / solo` of each (app, configuration)
//!   compression run. Ratios, not percentage slowdowns: near-zero
//!   slowdowns make relative error on percentages meaningless, while the
//!   ratio is the quantity predictions actually consume.
//!
//! Wall-clock per backend comes from the sweep telemetry, so the
//! reported speedup is the same number `BENCH_anp.json` records.

use anp_core::sweep::{sweep_recorded_for, SweepTelemetry};
use anp_core::{
    calibrate_with, completed_count, config_fingerprint, sweep_supervised_for, Backend,
    Calibration, CellResult, ExperimentConfig, ExperimentError, JournalError, Journaled,
    LatencyProfile, MuPolicy, RunJournal, Supervisor, TaskError, WorkloadSpec,
};
use anp_simnet::SimDuration;
use anp_workloads::{AppKind, CompressionConfig};

/// Highest acceptable relative error on mean probe latency.
pub const PROBE_TOLERANCE: f64 = 0.10;
/// Highest acceptable relative error on `loaded / solo` runtime ratios.
pub const SLOWDOWN_TOLERANCE: f64 = 0.15;
/// Lowest acceptable DES/flow wall-clock speedup on the Cab-like grid.
pub const MIN_SPEEDUP: f64 = 20.0;

/// One compared observable.
#[derive(Debug, Clone)]
pub struct XvalCell {
    /// What the cell measures (e.g. `probe:P7-B2500000-M10`).
    pub label: String,
    /// The DES (reference) value.
    pub des: f64,
    /// The flow-model value.
    pub flow: f64,
}

impl XvalCell {
    /// `|flow − des| / |des|`.
    pub fn rel_err(&self) -> f64 {
        (self.flow - self.des).abs() / self.des.abs().max(1e-12)
    }
}

/// Everything one cross-validation run produced.
#[derive(Debug, Clone)]
pub struct XvalReport {
    /// Mean probe latency cells (µs): idle plus one per configuration.
    pub probe_means: Vec<XvalCell>,
    /// P-K utilization cells (fraction of capability), same order.
    pub utilizations: Vec<XvalCell>,
    /// Runtime-ratio cells, one per (app, configuration).
    pub slowdown_ratios: Vec<XvalCell>,
    /// DES grid telemetry (wall time, per-cell records).
    pub des_telemetry: SweepTelemetry,
    /// Flow grid telemetry.
    pub flow_telemetry: SweepTelemetry,
}

impl XvalReport {
    /// DES wall time over flow wall time.
    pub fn speedup(&self) -> f64 {
        self.des_telemetry.wall_secs / self.flow_telemetry.wall_secs.max(1e-12)
    }

    /// Worst relative error across probe-mean cells.
    pub fn max_probe_err(&self) -> f64 {
        max_err(&self.probe_means)
    }

    /// Worst relative error across runtime-ratio cells.
    pub fn max_slowdown_err(&self) -> f64 {
        max_err(&self.slowdown_ratios)
    }

    /// True if every gated observable is inside its documented tolerance.
    pub fn within_tolerance(&self) -> bool {
        self.max_probe_err() <= PROBE_TOLERANCE && self.max_slowdown_err() <= SLOWDOWN_TOLERANCE
    }
}

fn max_err(cells: &[XvalCell]) -> f64 {
    cells.iter().map(XvalCell::rel_err).fold(0.0, f64::max)
}

/// A measurement cell of the grid.
enum Spec<'a> {
    Idle,
    Impact(&'a CompressionConfig),
    Solo(AppKind),
    Loaded(AppKind, &'a CompressionConfig),
}

/// A cell's result: a profile or a runtime.
#[derive(Debug, Clone)]
enum Cell {
    Profile(LatencyProfile),
    Runtime(SimDuration),
}

/// Tagged journal codec so supervised grids can resume: the wrapped
/// profile/runtime codecs are bit-exact, so replayed cells reproduce the
/// exact comparison values of an uninterrupted run.
impl Journaled for Cell {
    fn encode_journal(&self) -> String {
        match self {
            Cell::Profile(p) => format!("{{\"p\":{}}}", p.encode_journal()),
            Cell::Runtime(t) => format!("{{\"t\":{}}}", t.encode_journal()),
        }
    }

    fn decode_journal(s: &str) -> Option<Self> {
        let s = s.trim();
        if let Some(inner) = s.strip_prefix("{\"p\":").and_then(|r| r.strip_suffix('}')) {
            return Some(Cell::Profile(LatencyProfile::decode_journal(inner)?));
        }
        if let Some(inner) = s.strip_prefix("{\"t\":").and_then(|r| r.strip_suffix('}')) {
            return Some(Cell::Runtime(SimDuration::decode_journal(inner)?));
        }
        None
    }
}

/// Runs the full grid on one backend, returning cells in spec order plus
/// the sweep telemetry (whose `wall_secs` is the backend's cost).
fn measure_grid(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    specs: &[Spec<'_>],
) -> Result<(Vec<Cell>, SweepTelemetry), ExperimentError> {
    type Task<'s> = Box<dyn FnOnce() -> Result<Cell, ExperimentError> + Send + 's>;
    let tasks: Vec<(String, Task<'_>)> = specs
        .iter()
        .map(|spec| -> (String, Task<'_>) {
            match *spec {
                Spec::Idle => (
                    "probe:idle".to_owned(),
                    Box::new(move || {
                        backend
                            .measure_impact_profile(cfg, WorkloadSpec::Idle)
                            .map(Cell::Profile)
                    }),
                ),
                Spec::Impact(comp) => (
                    format!("probe:{}", comp.label()),
                    Box::new(move || {
                        backend
                            .measure_impact_profile(cfg, WorkloadSpec::Compression(comp))
                            .map(Cell::Profile)
                    }),
                ),
                Spec::Solo(app) => (
                    format!("solo:{}", app.name()),
                    Box::new(move || backend.measure_solo_runtime(cfg, app).map(Cell::Runtime)),
                ),
                Spec::Loaded(app, comp) => (
                    format!("run:{}@{}", app.name(), comp.label()),
                    Box::new(move || {
                        backend
                            .measure_compression_run(cfg, app, comp)
                            .map(Cell::Runtime)
                    }),
                ),
            }
        })
        .collect();
    let (results, telemetry) = sweep_recorded_for("backend-xval", backend.name(), cfg.jobs, tasks);
    let cells = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok((cells, telemetry))
}

/// [`measure_grid`] under a supervision envelope: failing cells come back
/// as typed holes instead of aborting the grid, and with a journal every
/// completed cell survives a crash. One journaled sweep per backend
/// (`xval-des` / `xval-flow`), fingerprinted per backend so the two grids
/// never replay each other's cells.
fn measure_grid_supervised(
    backend: &dyn Backend,
    cfg: &ExperimentConfig,
    specs: &[Spec<'_>],
    sup: &Supervisor,
    journal: Option<&RunJournal>,
) -> Result<(Vec<CellResult<Cell>>, SweepTelemetry), JournalError> {
    type Task<'s> = Box<dyn Fn() -> Result<Cell, ExperimentError> + Send + Sync + 's>;
    let tasks: Vec<(String, Task<'_>)> = specs
        .iter()
        .map(|spec| -> (String, Task<'_>) {
            match *spec {
                Spec::Idle => (
                    "probe:idle".to_owned(),
                    Box::new(move || {
                        backend
                            .measure_impact_profile(cfg, WorkloadSpec::Idle)
                            .map(Cell::Profile)
                    }),
                ),
                Spec::Impact(comp) => (
                    format!("probe:{}", comp.label()),
                    Box::new(move || {
                        backend
                            .measure_impact_profile(cfg, WorkloadSpec::Compression(comp))
                            .map(Cell::Profile)
                    }),
                ),
                Spec::Solo(app) => (
                    format!("solo:{}", app.name()),
                    Box::new(move || backend.measure_solo_runtime(cfg, app).map(Cell::Runtime)),
                ),
                Spec::Loaded(app, comp) => (
                    format!("run:{}@{}", app.name(), comp.label()),
                    Box::new(move || {
                        backend
                            .measure_compression_run(cfg, app, comp)
                            .map(Cell::Runtime)
                    }),
                ),
            }
        })
        .collect();
    sweep_supervised_for(
        &format!("xval-{}", backend.name()),
        backend.name(),
        cfg.jobs,
        sup,
        journal,
        config_fingerprint(cfg, backend.name()),
        tasks,
    )
}

/// The grid `{idle} ∪ {impact(c)} ∪ {solo(a)} ∪ {loaded(a, c)}` for every
/// `a` in `apps` and `c` in `comps`.
fn grid_specs<'a>(apps: &[AppKind], comps: &'a [CompressionConfig]) -> Vec<Spec<'a>> {
    let mut specs: Vec<Spec<'_>> = vec![Spec::Idle];
    specs.extend(comps.iter().map(Spec::Impact));
    specs.extend(apps.iter().map(|&a| Spec::Solo(a)));
    for &a in apps {
        for c in comps {
            specs.push(Spec::Loaded(a, c));
        }
    }
    specs
}

/// Builds the three comparison sections from per-backend cells. A `None`
/// on either side skips that comparison (the sibling cells still
/// compare); a ratio cell additionally needs both solo baselines.
fn assemble(
    specs: &[Spec<'_>],
    des_cells: &[Option<Cell>],
    flow_cells: &[Option<Cell>],
    des_cal: &Calibration,
    flow_cal: &Calibration,
) -> (Vec<XvalCell>, Vec<XvalCell>, Vec<XvalCell>) {
    let mut probe_means = Vec::new();
    let mut utilizations = Vec::new();
    let mut slowdown_ratios = Vec::new();
    let mut des_solo: Vec<(AppKind, f64)> = Vec::new();
    let mut flow_solo: Vec<(AppKind, f64)> = Vec::new();

    for ((spec, d), f) in specs.iter().zip(des_cells).zip(flow_cells) {
        let (d, f) = match (d, f) {
            (Some(d), Some(f)) => (d, f),
            _ => continue,
        };
        match (spec, d, f) {
            (Spec::Idle, Cell::Profile(dp), Cell::Profile(fp))
            | (Spec::Impact(_), Cell::Profile(dp), Cell::Profile(fp)) => {
                let label = match spec {
                    Spec::Idle => "probe:idle".to_owned(),
                    Spec::Impact(c) => format!("probe:{}", c.label()),
                    _ => unreachable!(),
                };
                probe_means.push(XvalCell {
                    label: label.clone(),
                    des: dp.mean(),
                    flow: fp.mean(),
                });
                utilizations.push(XvalCell {
                    label: label.replace("probe:", "util:"),
                    des: des_cal.utilization(dp),
                    flow: flow_cal.utilization(fp),
                });
            }
            (Spec::Solo(app), Cell::Runtime(dt), Cell::Runtime(ft)) => {
                des_solo.push((*app, dt.as_secs_f64()));
                flow_solo.push((*app, ft.as_secs_f64()));
            }
            (Spec::Loaded(app, comp), Cell::Runtime(dt), Cell::Runtime(ft)) => {
                let ds = des_solo.iter().find(|(a, _)| a == app).map(|(_, s)| *s);
                let fs = flow_solo.iter().find(|(a, _)| a == app).map(|(_, s)| *s);
                let (ds, fs) = match (ds, fs) {
                    (Some(ds), Some(fs)) => (ds, fs),
                    _ => continue, // a solo baseline is a hole
                };
                slowdown_ratios.push(XvalCell {
                    label: format!("ratio:{}@{}", app.name(), comp.label()),
                    des: dt.as_secs_f64() / ds,
                    flow: ft.as_secs_f64() / fs,
                });
            }
            _ => unreachable!("cell kind always matches its spec"),
        }
    }
    (probe_means, utilizations, slowdown_ratios)
}

/// Cross-validates the flow backend against the DES on one grid.
///
/// The grid is `{idle} ∪ {impact(c)} ∪ {solo(a)} ∪ {loaded(a, c)}` for
/// every `a` in `apps` and `c` in `comps`, run once per backend through
/// the telemetry-recording sweep engine. Any failing cell aborts the
/// whole grid; [`run_xval_supervised`] is the hole-tolerant variant.
pub fn run_xval(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    comps: &[CompressionConfig],
    des: &dyn Backend,
    flow: &dyn Backend,
) -> Result<XvalReport, ExperimentError> {
    let specs = grid_specs(apps, comps);
    let (des_cells, des_telemetry) = measure_grid(des, cfg, &specs)?;
    let (flow_cells, flow_telemetry) = measure_grid(flow, cfg, &specs)?;

    let des_cal = calibrate_with(des, cfg, MuPolicy::MinLatency)?;
    let flow_cal = calibrate_with(flow, cfg, MuPolicy::MinLatency)?;

    let des_cells: Vec<Option<Cell>> = des_cells.into_iter().map(Some).collect();
    let flow_cells: Vec<Option<Cell>> = flow_cells.into_iter().map(Some).collect();
    let (probe_means, utilizations, slowdown_ratios) =
        assemble(&specs, &des_cells, &flow_cells, &des_cal, &flow_cal);

    Ok(XvalReport {
        probe_means,
        utilizations,
        slowdown_ratios,
        des_telemetry,
        flow_telemetry,
    })
}

/// Why a supervised cross-validation could not produce a report at all
/// (cell-level failures become holes, not errors).
#[derive(Debug)]
pub enum XvalError {
    /// The `--resume` journal conflicts with this grid.
    Journal(JournalError),
    /// A calibration (needed to read utilizations) failed.
    Experiment(ExperimentError),
}

impl std::fmt::Display for XvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XvalError::Journal(e) => write!(f, "{e}"),
            XvalError::Experiment(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for XvalError {}

impl From<JournalError> for XvalError {
    fn from(e: JournalError) -> Self {
        XvalError::Journal(e)
    }
}

impl From<ExperimentError> for XvalError {
    fn from(e: ExperimentError) -> Self {
        XvalError::Experiment(e)
    }
}

/// A supervised cross-validation: the report over every compared cell,
/// plus the holes and cell counts of both grids.
#[derive(Debug)]
pub struct XvalSupervised {
    /// Comparisons over the cells both backends completed.
    pub report: XvalReport,
    /// Why each missing cell is missing (both grids).
    pub failures: Vec<TaskError>,
    /// Cells that produced a value (both grids).
    pub completed: usize,
    /// Total cells attempted (both grids).
    pub total: usize,
}

/// [`run_xval`] under a supervision envelope: each backend's grid runs
/// through the supervised sweep engine (panic isolation, budgets,
/// retries, journaled resume), failing cells leave typed holes, and the
/// report compares every cell both backends completed.
pub fn run_xval_supervised(
    cfg: &ExperimentConfig,
    apps: &[AppKind],
    comps: &[CompressionConfig],
    des: &dyn Backend,
    flow: &dyn Backend,
    sup: &Supervisor,
    journal: Option<&RunJournal>,
) -> Result<XvalSupervised, XvalError> {
    let specs = grid_specs(apps, comps);
    let (des_results, des_telemetry) = measure_grid_supervised(des, cfg, &specs, sup, journal)?;
    let (flow_results, flow_telemetry) = measure_grid_supervised(flow, cfg, &specs, sup, journal)?;

    let des_cal = calibrate_with(des, cfg, MuPolicy::MinLatency)?;
    let flow_cal = calibrate_with(flow, cfg, MuPolicy::MinLatency)?;

    let completed = completed_count(&des_results) + completed_count(&flow_results);
    let total = des_results.len() + flow_results.len();
    let mut failures: Vec<TaskError> = Vec::new();
    let to_options = |results: Vec<CellResult<Cell>>, failures: &mut Vec<TaskError>| {
        results
            .into_iter()
            .map(|r| r.map_err(|e| failures.push(e)).ok())
            .collect::<Vec<Option<Cell>>>()
    };
    let des_cells = to_options(des_results, &mut failures);
    let flow_cells = to_options(flow_results, &mut failures);

    let (probe_means, utilizations, slowdown_ratios) =
        assemble(&specs, &des_cells, &flow_cells, &des_cal, &flow_cal);

    Ok(XvalSupervised {
        report: XvalReport {
            probe_means,
            utilizations,
            slowdown_ratios,
            des_telemetry,
            flow_telemetry,
        },
        failures,
        completed,
        total,
    })
}

/// Renders the report as the plain-text table the `backend_xval` binary
/// prints.
pub fn render_report(r: &XvalReport) -> String {
    let mut out = String::new();
    let section = |out: &mut String, title: &str, cells: &[XvalCell], unit: &str| {
        out.push_str(&format!(
            "{:<34} {:>10} {:>10} {:>8}\n",
            title, "des", "flow", "err%"
        ));
        for c in cells {
            out.push_str(&format!(
                "{:<34} {:>10.4} {:>10.4} {:>7.1}%\n",
                c.label,
                c.des,
                c.flow,
                c.rel_err() * 100.0
            ));
        }
        out.push_str(&format!(
            "  worst {title} error: {:.1}% {unit}\n\n",
            max_err(cells) * 100.0
        ));
    };
    section(&mut out, "probe mean (us)", &r.probe_means, "");
    section(&mut out, "utilization", &r.utilizations, "(not gated)");
    section(&mut out, "runtime ratio", &r.slowdown_ratios, "");
    out.push_str(&format!(
        "wall clock: des {:.3}s, flow {:.3}s -> {:.0}x speedup\n",
        r.des_telemetry.wall_secs,
        r.flow_telemetry.wall_secs,
        r.speedup()
    ));
    out
}
