//! The staged analytic network model and its fixed point.
//!
//! The fabric is reduced to three queueing stages per packet path —
//! NIC injection, the switch's central routing stage, and the egress
//! port FIFO — mirroring the DES pipeline exactly:
//!
//! * **NIC** (per node): per-flow round-robin at link bandwidth. A probe
//!   packet therefore only waits for the *residual* of the packet in
//!   service, never the whole backlog; a job's own backlog is pure
//!   serialization time and is counted as throughput, not wait.
//! * **Central stage** (per switch): a FIFO with `route_servers` parallel
//!   servers drawing from the configured service distribution — an M/G/k
//!   queue, approximated with Allen–Cunneen over Erlang C.
//! * **Egress port** (per node): a FIFO draining at link bandwidth —
//!   M/G/1 via Pollaczek–Khinchine.
//!
//! The switch's credit gate (`switch_capacity` packets of total
//! occupancy) bounds every queue the probe can encounter, so analytic
//! waits are capped at the credit-implied backlog
//! ([`NetModel::wait_ceiling_ns`]); without the cap the open-queue
//! formulas would diverge at saturation where the closed DES merely
//! stalls senders.
//!
//! Job durations and stage utilizations depend on each other, so
//! [`solve`] iterates a damped fixed point over per-job durations until
//! the implied rates stop moving.

use anp_simnet::{ServiceDistribution, SimDuration, SwitchConfig, Topology};

use crate::extract::TrafficDescriptor;

/// Utilizations are clamped below 1 before entering open-queue formulas;
/// the wait ceiling, not the pole, governs saturation.
const RHO_CLAMP: f64 = 0.995;

/// Fraction of the credit-implied per-port backlog a probe is modeled to
/// wait behind at saturation. Calibrated against the DES: at full load
/// the Cab preset's probes see 10–15 µs sojourns against a 17.5 µs raw
/// credit bound.
const WAIT_CEILING_FRAC: f64 = 0.7;

/// Squared coefficient of variation of packet interarrival times at the
/// central stage. Superposed flows from many ranks are roughly Poisson.
const ARRIVAL_SCV: f64 = 1.0;

/// Mean packets a probe finds queued at an egress port *inside* a
/// traffic burst from a single rate-matched source flow. Calibrated
/// against DES mid-load cells (duty ≈ 0.17 configurations show ≈ 560 ns
/// of burst wait at 819 ns/packet serialization).
const BURST_Q1_PKTS: f64 = 4.0;

/// The same queue depth at full saturation with many interleaved source
/// flows per port, where transient convoys compound. Calibrated against
/// the saturated DES cells (P17 B2.5e4 M10: 8.06 µs probe wait).
const BURST_QSAT_PKTS: f64 = 9.7;

/// Offered-overload ratio (`burst serialization / drain gap`) where
/// burst queues start compounding instead of fully draining between
/// bursts, and the ramp width to fully saturated.
const SAT_ONSET: f64 = 0.6;
const SAT_WIDTH: f64 = 0.6;

/// A synchronization round's cross-traffic stall cannot exceed this
/// multiple of the round's own natural span: rounds denser than the
/// stall pipeline with the interference instead of serially absorbing
/// it. Calibrated against the saturated DES runtime cells.
const ROUND_SPAN_FACTOR: f64 = 1.15;

/// Damping factor of the fixed-point iteration.
const DAMPING: f64 = 0.5;
/// Iteration cap (the fixed point is a contraction in practice; this is
/// a backstop).
const MAX_ITERS: usize = 500;
/// Relative-change convergence threshold.
const REL_TOL: f64 = 1e-10;

/// Precomputed fabric constants in analytic-friendly units.
#[derive(Debug, Clone)]
pub struct NetModel {
    /// Node count.
    pub nodes: f64,
    /// Per-port bandwidth, bytes per nanosecond.
    pub bw: f64,
    /// One-way wire latency, nanoseconds.
    pub wire_ns: f64,
    /// Mean central service time, nanoseconds.
    pub svc_mean: f64,
    /// Squared coefficient of variation of the central service time.
    pub svc_scv: f64,
    /// Parallel routing servers per switch.
    pub servers: usize,
    /// Total switches (1, or leaves + spines for a fat tree).
    pub switches: f64,
    /// Credit capacity of a switch, packets.
    pub capacity: f64,
    /// Link bandwidth in bytes/second, for DES-identical (rounded-up)
    /// per-packet serialization times.
    link_bps: u64,
    service: ServiceDistribution,
}

impl NetModel {
    /// Builds the model from a fabric configuration.
    pub fn new(cfg: &SwitchConfig) -> Self {
        let switches = match cfg.topology {
            Topology::SingleSwitch => 1.0,
            Topology::FatTree { leaves, spines } => f64::from(leaves + spines),
        };
        NetModel {
            nodes: f64::from(cfg.nodes),
            bw: cfg.link_bandwidth as f64 / 1e9,
            wire_ns: cfg.wire_latency.as_nanos() as f64,
            svc_mean: cfg.service.mean_ns(),
            svc_scv: cfg.service.scv(),
            servers: cfg.route_servers as usize,
            switches,
            capacity: cfg.switch_capacity as f64,
            link_bps: cfg.link_bandwidth,
            service: cfg.service.clone(),
        }
    }

    /// Serialization time of one packet, nanoseconds, rounded up exactly
    /// like the DES rounds it.
    pub fn ser_ns(&self, bytes: f64) -> f64 {
        SimDuration::serialization(bytes.round().max(0.0) as u64, self.link_bps).as_nanos() as f64
    }

    /// Aggregate central-stage capacity, packet-traversals per nanosecond.
    pub fn central_capacity(&self) -> f64 {
        self.switches * self.servers as f64 / self.svc_mean
    }

    /// Deterministic part of a one-way packet latency over `traversals`
    /// switches: NIC serialization, then per switch the (separately
    /// sampled) routing service, egress serialization, and a wire hop.
    pub fn base_one_way_ns(&self, pkt_bytes: f64, traversals: f64) -> f64 {
        let ser = self.ser_ns(pkt_bytes);
        ser + self.wire_ns + traversals * (ser + self.wire_ns)
    }

    /// Mean one-way packet latency on an otherwise idle fabric.
    pub fn idle_one_way_ns(&self, pkt_bytes: f64, traversals: f64) -> f64 {
        self.base_one_way_ns(pkt_bytes, traversals) + traversals * self.svc_mean
    }

    /// The saturation wait bound implied by the credit gate: a probe can
    /// never queue behind more than a per-port share of the admission
    /// window.
    pub fn wait_ceiling_ns(&self, pkt_bytes: f64) -> f64 {
        WAIT_CEILING_FRAC * (self.capacity / self.nodes) * self.ser_ns(pkt_bytes)
    }

    /// Inverse CDF-style service draw: `u_phase` picks the mixture
    /// branch, `u_mag` the magnitude within it. Deterministic quantile
    /// sampling of the same distribution the DES draws from its RNG.
    pub fn service_quantile_ns(&self, u_phase: f64, u_mag: f64) -> f64 {
        let exp_q = |mean: f64, u: f64| -mean * (1.0 - u.min(0.999_999)).ln();
        let ns = match self.service {
            ServiceDistribution::Deterministic { ns } => ns as f64,
            ServiceDistribution::Exponential { mean_ns } => exp_q(mean_ns, u_mag),
            ServiceDistribution::HyperExponential {
                fast_mean_ns,
                slow_mean_ns,
                p_slow,
            } => {
                if u_phase < p_slow {
                    exp_q(slow_mean_ns, u_mag)
                } else {
                    exp_q(fast_mean_ns, u_mag)
                }
            }
            ServiceDistribution::Uniform { lo_ns, hi_ns } => {
                lo_ns as f64 + (hi_ns - lo_ns) as f64 * u_mag
            }
            ServiceDistribution::BaseWithTail {
                base_ns,
                tail_mean_ns,
                p_tail,
            } => {
                base_ns as f64
                    + if u_phase < p_tail {
                        exp_q(tail_mean_ns, u_mag)
                    } else {
                        0.0
                    }
            }
        };
        ns.max(1.0)
    }
}

/// Per-stage utilizations of the fabric at an operating point.
///
/// Besides the long-run average utilizations, the loads carry the
/// *burstiness* of the offered traffic: bulk-synchronous interferers
/// (CompressionB, BSP apps) inject in on/off phases, so a probe that
/// lands inside a burst sees a queue far deeper than the average
/// utilization implies. `duty` is the probability any burst is in
/// flight, `sat` how strongly consecutive bursts compound, and `peers`
/// how many source flows interleave at the hot egress port.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StageLoads {
    /// Busiest node's NIC (injection) utilization.
    pub nic: f64,
    /// Aggregate central-stage utilization.
    pub central: f64,
    /// Busiest node's egress-port utilization.
    pub egress: f64,
    /// Traffic-weighted mean packet size on the fabric, bytes.
    pub pkt_bytes: f64,
    /// Probability that at least one job is inside a transmission burst.
    pub duty: f64,
    /// Burst-compounding factor in `[0, 1]`: 0 when bursts fully drain
    /// between injections, 1 when injection outpaces the drain.
    pub sat: f64,
    /// Duty-weighted mean count of distinct source flows interleaving at
    /// the busiest egress port (≥ 1 whenever there is any traffic).
    pub peers: f64,
}

impl StageLoads {
    /// The largest stage utilization (the bottleneck's).
    pub fn max_rho(&self) -> f64 {
        self.nic.max(self.central).max(self.egress)
    }

    /// Probability that a probe packet queues anywhere, assuming stage
    /// independence.
    pub fn any_busy(&self) -> f64 {
        let free = (1.0 - self.nic.min(1.0))
            * (1.0 - self.central.min(1.0))
            * (1.0 - self.egress.min(1.0));
        1.0 - free
    }
}

/// Erlang C: probability an M/M/k arrival with offered load `a = λ/µ`
/// must queue.
fn erlang_c(k: usize, a: f64) -> f64 {
    if a <= 0.0 {
        return 0.0;
    }
    let rho = a / k as f64;
    if rho >= 1.0 {
        return 1.0;
    }
    // Erlang B by the stable recurrence, then convert.
    let mut b = 1.0;
    for j in 1..=k {
        b = a * b / (j as f64 + a * b);
    }
    b / (1.0 - rho + rho * b)
}

/// Mean queueing wait of a packet at the central M/G/k stage
/// (Allen–Cunneen approximation), nanoseconds. `rho` is the per-switch
/// utilization.
fn central_wait_ns(net: &NetModel, rho: f64) -> f64 {
    let rho = rho.clamp(0.0, RHO_CLAMP);
    if rho == 0.0 {
        return 0.0;
    }
    let k = net.servers;
    let a = rho * k as f64;
    let mmk_wait = erlang_c(k, a) * net.svc_mean / (k as f64 * (1.0 - rho));
    mmk_wait * (ARRIVAL_SCV + net.svc_scv) / 2.0
}

/// Mean queueing wait behind an M/G/1 FIFO port at utilization `rho`
/// with near-deterministic packet service of `ser_ns`, nanoseconds
/// (Pollaczek–Khinchine with zero service SCV).
fn port_wait_ns(rho: f64, ser_ns: f64) -> f64 {
    let rho = rho.clamp(0.0, RHO_CLAMP);
    rho * ser_ns / (2.0 * (1.0 - rho))
}

/// Mean egress wait a probe accumulates from landing inside a traffic
/// burst, nanoseconds: with probability `duty` the probe queues behind
/// the burst-interior backlog, whose depth grows from
/// [`BURST_Q1_PKTS`] (isolated, fully-draining bursts) toward
/// [`BURST_QSAT_PKTS`] as saturation compounds convoys from interleaved
/// source flows (a single rate-matched flow never compounds: the
/// `1 − 1/peers` factor).
fn burst_wait_ns(net: &NetModel, loads: &StageLoads) -> f64 {
    if loads.duty <= 0.0 {
        return 0.0;
    }
    let ser = net.ser_ns(loads.pkt_bytes);
    let interleave = 1.0 - 1.0 / loads.peers.max(1.0);
    let q = BURST_Q1_PKTS + (BURST_QSAT_PKTS - BURST_Q1_PKTS) * loads.sat * interleave;
    loads.duty * q * ser
}

/// Mean extra (queueing) latency a single probe packet accumulates on a
/// fabric at `loads`, nanoseconds: residual NIC service (round-robin
/// shields it from backlogs), the full central FIFO, and the egress
/// FIFO, all bounded by the credit ceiling.
///
/// The egress term is the larger of the smooth-traffic P-K wait (fed by
/// the non-bursty share of the utilization) and the burst-interior wait:
/// for on/off interferers the average-rate P-K formula misses convoys at
/// moderate load and diverges at saturation, where the closed DES
/// merely rate-matches — the burst model covers both regimes.
pub fn probe_wait_ns(net: &NetModel, loads: &StageLoads) -> f64 {
    let ser = net.ser_ns(loads.pkt_bytes);
    let smooth = port_wait_ns(loads.egress * (1.0 - loads.duty), ser);
    let w = loads.nic.clamp(0.0, RHO_CLAMP) * ser / 2.0
        + central_wait_ns(net, loads.central)
        + smooth.max(burst_wait_ns(net, loads));
    w.min(net.wait_ceiling_ns(loads.pkt_bytes))
}

/// Mean stall one synchronization round of a job suffers from
/// cross-traffic at `others`, nanoseconds, given the round's natural
/// span `gap_ns` (solo duration / round count).
///
/// A round completes when the *last* of its packets lands, so unlike a
/// probe's mean it drains a maximum statistic: at saturation that is the
/// full per-port credit share, not the mean burst queue. Rounds denser
/// than the stall overlap with the interference instead of serially
/// absorbing it, hence the [`ROUND_SPAN_FACTOR`] amortization bound.
fn round_stall_ns(net: &NetModel, others: &StageLoads, gap_ns: f64) -> f64 {
    if others.duty <= 0.0 {
        return 0.0;
    }
    let ser = net.ser_ns(others.pkt_bytes);
    let q_on = BURST_Q1_PKTS + others.sat * (net.capacity / net.nodes - BURST_Q1_PKTS);
    others.duty * (q_on * ser).min(ROUND_SPAN_FACTOR * gap_ns)
}

/// One job's solved timings.
#[derive(Debug, Clone, Copy)]
pub struct JobTimes {
    /// Duration of the job's run (or of one iteration, for endless
    /// descriptors) on an otherwise idle fabric, nanoseconds.
    pub solo_ns: f64,
    /// The same duration at the solved operating point, nanoseconds.
    pub loaded_ns: f64,
}

impl JobTimes {
    /// `loaded / solo` runtime inflation (1.0 = unimpeded).
    pub fn inflation(&self) -> f64 {
        if self.solo_ns > 0.0 {
            self.loaded_ns / self.solo_ns
        } else {
            1.0
        }
    }
}

/// The solved operating point of a set of co-running jobs.
#[derive(Debug, Clone)]
pub struct Equilibrium {
    /// Per-job timings, in input order.
    pub jobs: Vec<JobTimes>,
    /// Stage utilizations from all jobs together.
    pub loads: StageLoads,
}

/// Per-job cached demand terms.
struct Demand {
    nic_ns: f64,     // serialized bytes at the busiest NIC
    egress_ns: f64,  // serialized bytes at the busiest egress port
    central_ns: f64, // packet traversals × mean service / aggregate servers
    packets: f64,
    pkt_bytes: f64,
    compute_ns: f64,
    rounds: f64,
    round_base_ns: f64,
    duty: f64,  // fraction of the job's life a transmission burst is live
    sat: f64,   // burst-compounding factor (see SAT_ONSET)
    peers: f64, // interleaved source flows at the hot egress port
}

impl Demand {
    fn of(net: &NetModel, d: &TrafficDescriptor) -> Self {
        let traversals = d.remote_packets * d.avg_traversals();
        let nic_ns = d.max_node_tx_bytes / net.bw;
        // Offered-overload ratio of the injection phase: serialized burst
        // time over the compute/sleep gap it overlaps with (sends are
        // nonblocking, so the NIC drains *during* the gap). Below 1 the
        // NIC idles between bursts; above 1 injection is backlogged.
        let v = if d.compute_ns > 0.0 {
            nic_ns / d.compute_ns
        } else if nic_ns > 0.0 {
            f64::INFINITY
        } else {
            0.0
        };
        Demand {
            nic_ns,
            egress_ns: d.max_node_rx_bytes / net.bw,
            central_ns: traversals * net.svc_mean / (net.switches * net.servers as f64),
            packets: d.remote_packets,
            pkt_bytes: d.avg_packet_bytes(),
            compute_ns: d.compute_ns,
            rounds: d.rounds,
            round_base_ns: net.idle_one_way_ns(d.avg_packet_bytes(), d.avg_traversals()),
            duty: v.min(1.0),
            sat: ((v - SAT_ONSET) / SAT_WIDTH).clamp(0.0, 1.0),
            peers: d.peers,
        }
    }

    /// Serialized network time under per-stage inflation factors.
    fn net_ns(&self, g_nic: f64, g_ctr: f64, g_egr: f64) -> f64 {
        (self.nic_ns * g_nic)
            .max(self.central_ns * g_ctr)
            .max(self.egress_ns * g_egr)
    }

    /// Duration on an idle fabric.
    fn solo_ns(&self) -> f64 {
        self.compute_ns + self.net_ns(1.0, 1.0, 1.0) + self.rounds * self.round_base_ns
    }
}

/// Solves the coupled durations of `jobs` sharing the fabric.
///
/// Starting from idle-fabric durations, each pass converts durations to
/// per-stage utilizations, inflates every job's serialized network time
/// by its bottleneck stage's overload factor, adds cross-traffic
/// queueing latency to its synchronization rounds, and damps the
/// resulting durations until they stop moving. An empty `jobs` slice
/// yields an idle equilibrium (useful for probe calibration).
pub fn solve(net: &NetModel, jobs: &[&TrafficDescriptor]) -> Equilibrium {
    let demands: Vec<Demand> = jobs.iter().map(|d| Demand::of(net, d)).collect();
    let solos: Vec<f64> = demands.iter().map(|d| d.solo_ns().max(1.0)).collect();
    let mut durs = solos.clone();

    for _ in 0..MAX_ITERS {
        let loads = loads_at(&demands, &durs);
        let g_nic = loads.nic.max(1.0);
        let g_ctr = loads.central.max(1.0);
        let g_egr = loads.egress.max(1.0);

        let mut max_change = 0.0f64;
        let mut next = durs.clone();
        for (j, dem) in demands.iter().enumerate() {
            // Cross-traffic latency: the fabric as job j's packets see it,
            // with j's own contribution removed (j's own backlog is
            // serialization, already in net_ns).
            let others = loads_at_excluding(&demands, &durs, j);
            let gap_ns = if dem.rounds > 0.0 {
                solos[j] / dem.rounds
            } else {
                0.0
            };
            let w_other = round_stall_ns(net, &others, gap_ns);
            let t_new = dem.compute_ns
                + dem.net_ns(g_nic, g_ctr, g_egr)
                + dem.rounds * (dem.round_base_ns + w_other);
            let t_new = t_new.max(1.0);
            let damped = durs[j] + DAMPING * (t_new - durs[j]);
            max_change = max_change.max((damped - durs[j]).abs() / durs[j]);
            next[j] = damped;
        }
        durs = next;
        if max_change < REL_TOL {
            break;
        }
    }
    let loads = loads_at(&demands, &durs);
    Equilibrium {
        jobs: solos
            .iter()
            .zip(&durs)
            .map(|(&solo_ns, &loaded_ns)| JobTimes { solo_ns, loaded_ns })
            .collect(),
        loads,
    }
}

fn loads_at(demands: &[Demand], durs: &[f64]) -> StageLoads {
    loads_at_excluding(demands, durs, usize::MAX)
}

fn loads_at_excluding(demands: &[Demand], durs: &[f64], skip: usize) -> StageLoads {
    let mut nic = 0.0;
    let mut central = 0.0;
    let mut egress = 0.0;
    let mut pkt_rate = 0.0;
    let mut byte_rate = 0.0;
    let mut all_off = 1.0;
    let mut duty_sum = 0.0;
    let mut sat_sum = 0.0;
    let mut peer_sum = 0.0;
    for (j, d) in demands.iter().enumerate() {
        if j == skip {
            continue;
        }
        let t = durs[j].max(1.0);
        nic += d.nic_ns / t;
        central += d.central_ns / t;
        egress += d.egress_ns / t;
        pkt_rate += d.packets / t;
        byte_rate += d.packets * d.pkt_bytes / t;
        all_off *= 1.0 - d.duty;
        duty_sum += d.duty;
        sat_sum += d.duty * d.sat;
        peer_sum += d.duty * d.peers;
    }
    StageLoads {
        nic,
        central,
        egress,
        pkt_bytes: if pkt_rate > 0.0 {
            byte_rate / pkt_rate
        } else {
            1024.0
        },
        duty: 1.0 - all_off,
        sat: if duty_sum > 0.0 {
            sat_sum / duty_sum
        } else {
            0.0
        },
        peers: if duty_sum > 0.0 {
            (peer_sum / duty_sum).max(1.0)
        } else {
            1.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simnet::SwitchConfig;

    fn tiny() -> NetModel {
        NetModel::new(&SwitchConfig::tiny_deterministic())
    }

    fn cab() -> NetModel {
        NetModel::new(&SwitchConfig::cab())
    }

    fn desc(tx: f64, packets: f64, compute: f64, rounds: f64) -> TrafficDescriptor {
        TrafficDescriptor {
            label: "test".into(),
            ranks: 4,
            compute_ns: compute,
            rounds,
            remote_msgs: packets,
            remote_bytes: tx * 4.0,
            remote_packets: packets,
            cross_leaf_packets: 0.0,
            local_bytes: 0.0,
            max_node_tx_bytes: tx,
            max_node_rx_bytes: tx,
            peers: 3.0,
        }
    }

    #[test]
    fn idle_one_way_matches_pinned_des_latencies() {
        // The DES integration suite pins these exact idle latencies.
        let t = tiny();
        assert_eq!(t.idle_one_way_ns(1024.0, 1.0), 2448.0);
        let c = cab();
        assert!((c.idle_one_way_ns(1024.0, 1.0) - 1285.0).abs() < 1.0);
    }

    #[test]
    fn erlang_c_limits() {
        assert_eq!(erlang_c(18, 0.0), 0.0);
        // Single server: C = rho.
        assert!((erlang_c(1, 0.5) - 0.5).abs() < 1e-12);
        // Far under-loaded many-server system almost never queues.
        assert!(erlang_c(18, 1.0) < 1e-9);
        // At saturation everyone queues.
        assert_eq!(erlang_c(18, 18.0), 1.0);
    }

    #[test]
    fn probe_wait_grows_with_load_and_saturates_at_ceiling() {
        let net = cab();
        let mut prev = -1.0;
        for rho in [0.0, 0.3, 0.6, 0.9, 0.99, 2.0] {
            let loads = StageLoads {
                nic: rho,
                central: rho,
                egress: rho,
                pkt_bytes: 4096.0,
                ..Default::default()
            };
            let w = probe_wait_ns(&net, &loads);
            assert!(w >= prev, "wait must be monotone in rho");
            assert!(w <= net.wait_ceiling_ns(4096.0));
            prev = w;
        }
        let saturated = StageLoads {
            nic: 2.0,
            central: 2.0,
            egress: 2.0,
            pkt_bytes: 4096.0,
            ..Default::default()
        };
        assert_eq!(
            probe_wait_ns(&net, &saturated),
            net.wait_ceiling_ns(4096.0),
            "overload pins the wait at the credit ceiling"
        );
    }

    #[test]
    fn solo_pure_compute_job_costs_its_compute() {
        let net = tiny();
        let d = desc(0.0, 0.0, 5_000_000.0, 0.0);
        let eq = solve(&net, &[&d]);
        assert_eq!(eq.jobs[0].solo_ns, 5_000_000.0);
        assert_eq!(eq.jobs[0].loaded_ns, 5_000_000.0);
        assert_eq!(eq.loads.max_rho(), 0.0);
    }

    #[test]
    fn network_bound_job_is_bandwidth_limited() {
        let net = tiny(); // 1 GB/s ports
                          // 10 MB from the busiest node: 10 ms of serialization dominates.
        let d = desc(10_000_000.0, 2441.0, 0.0, 1.0);
        let eq = solve(&net, &[&d]);
        let t = eq.jobs[0].solo_ns;
        assert!(t >= 10_000_000.0, "at least the serialization time: {t}");
        assert!(t < 11_500_000.0, "but not wildly more: {t}");
    }

    #[test]
    fn corunning_jobs_slow_each_other_down() {
        let net = cab();
        // Two jobs that each alone fill ~70% of a 5 GB/s NIC.
        let d1 = desc(70_000_000.0, 17_090.0, 6_000_000.0, 10.0);
        let d2 = desc(70_000_000.0, 17_090.0, 6_000_000.0, 10.0);
        let solo = solve(&net, &[&d1]).jobs[0].solo_ns;
        let eq = solve(&net, &[&d1, &d2]);
        assert_eq!(eq.jobs[0].solo_ns, solo, "solo baseline is load-free");
        // Hand-solved fixed point: T = compute + nic·g with g = 2·nic/T
        // gives ≈23.2 ms against a 20.1 ms solo — ≈15% inflation (the
        // compute phase absorbs the rest of the contention).
        assert!(
            eq.jobs[0].loaded_ns > solo * 1.10,
            "two 70% jobs cannot both run unimpeded: {} vs {}",
            eq.jobs[0].loaded_ns,
            solo
        );
        assert!(
            (eq.jobs[0].loaded_ns - eq.jobs[1].loaded_ns).abs() < 1e-6,
            "symmetric jobs slow equally"
        );
    }

    #[test]
    fn light_background_barely_moves_a_job() {
        let net = cab();
        let victim = desc(1_000_000.0, 244.0, 50_000_000.0, 5.0);
        let whisper = desc(10_000.0, 3.0, 50_000_000.0, 1.0);
        let solo = solve(&net, &[&victim]).jobs[0].solo_ns;
        let eq = solve(&net, &[&victim, &whisper]);
        assert!(eq.jobs[0].loaded_ns < solo * 1.01);
    }

    #[test]
    fn burst_wait_scales_with_duty_and_interleave() {
        let net = cab();
        let mid = StageLoads {
            egress: 0.15,
            pkt_bytes: 4096.0,
            duty: 0.17,
            sat: 0.0,
            peers: 7.0,
            ..Default::default()
        };
        // Duty-weighted isolated-burst queue: 0.17 × 4 pkts × 819.2 ns.
        let w_mid = burst_wait_ns(&net, &mid);
        assert!((w_mid - 0.17 * 4.0 * 819.2).abs() < 1.0, "mid wait {w_mid}");

        // At saturation, many interleaved flows compound the queue; a
        // single rate-matched flow cannot.
        let sat_many = StageLoads {
            duty: 1.0,
            sat: 1.0,
            peers: 17.0,
            pkt_bytes: 4096.0,
            ..Default::default()
        };
        let sat_one = StageLoads {
            peers: 1.0,
            ..sat_many
        };
        assert!(burst_wait_ns(&net, &sat_many) > 2.0 * burst_wait_ns(&net, &sat_one));
        assert!(burst_wait_ns(&net, &sat_one) > 0.0);
    }

    #[test]
    fn round_stall_is_amortized_by_dense_rounds() {
        let net = cab();
        let others = StageLoads {
            duty: 1.0,
            sat: 1.0,
            peers: 17.0,
            pkt_bytes: 4096.0,
            ..Default::default()
        };
        // Sparse rounds absorb the full credit-share drain.
        let sparse = round_stall_ns(&net, &others, 1e9);
        let credit_ns = (net.capacity / net.nodes) * net.ser_ns(4096.0);
        assert!((sparse - credit_ns).abs() < 1.0, "sparse stall {sparse}");
        // Rounds denser than the stall pipeline with the interference.
        let gap = 3_000.0;
        let dense = round_stall_ns(&net, &others, gap);
        assert!((dense - ROUND_SPAN_FACTOR * gap).abs() < 1e-9);
        assert!(dense < sparse);
        // No bursts, no stall.
        assert_eq!(round_stall_ns(&net, &StageLoads::default(), gap), 0.0);
    }

    #[test]
    fn service_quantiles_recover_the_mean() {
        let net = cab(); // BaseWithTail{300, 1500, 0.05} → mean 375
        let n = 200_000;
        let mut sum = 0.0;
        for i in 0..n {
            let u1 = (i as f64 + 0.5) / n as f64;
            let u2 = ((i as f64 + 0.5) * 0.754_877_666_246_693).fract();
            sum += net.service_quantile_ns(u1, u2);
        }
        let mean = sum / n as f64;
        assert!(
            (mean - 375.0).abs() < 5.0,
            "quantile-sampled mean {mean} vs analytic 375"
        );
    }
}
