//! Symbolic traffic extraction: walk a job's rank programs without a
//! simulator and tabulate the aggregate demand they would place on the
//! fabric.
//!
//! The walk drives each rank's [`anp_simmpi::Program`] to completion at frozen
//! simulated time, lowering collectives through the *same*
//! [`anp_simmpi::coll`] expansions the discrete-event world uses, so the
//! extracted byte/packet/round counts are exactly the counts the DES
//! would move — only the timing is left to the analytic model.

use std::collections::{BTreeSet, VecDeque};

use anp_simmpi::coll::{
    expand_allgather, expand_allreduce, expand_alltoall, expand_barrier, expand_bcast,
    expand_reduce,
};
use anp_simmpi::{Ctx, Op};
use anp_simnet::{NodeId, SimDuration, SimTime, SwitchConfig, Topology};
use anp_workloads::compressionb::CompressionConfig;
use anp_workloads::Members;

/// Cap on primitive operations walked per job: a runaway (or endless)
/// program is a caller bug, not something to spin on forever.
const OP_BUDGET: u64 = 200_000_000;

/// The per-socket CompressionB process count the DES experiments pin
/// (`experiments::impact_profile_of_compression` passes `per_node = 2`).
pub const COMPRESSION_PER_NODE: u32 = 2;

/// Aggregate network demand of one job, independent of time.
///
/// For a finite job the fields are run totals; for CompressionB (which
/// loops forever) they are per-iteration totals. Either way the analytic
/// model only ever divides them by the job's (solved) duration to obtain
/// rates, so the distinction never leaks further.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDescriptor {
    /// Job label for diagnostics.
    pub label: String,
    /// Rank count.
    pub ranks: u32,
    /// Critical-path proxy for CPU time: the maximum per-rank total of
    /// `Compute` and `Sleep` spans, in nanoseconds.
    pub compute_ns: f64,
    /// Latency-chained synchronization rounds: the maximum per-rank count
    /// of `WaitAll`s that had at least one request outstanding. Each costs
    /// at least one one-way network latency that cannot be pipelined away.
    pub rounds: f64,
    /// Inter-node messages sent by all ranks.
    pub remote_msgs: f64,
    /// Inter-node payload bytes sent by all ranks.
    pub remote_bytes: f64,
    /// MTU-segmented packets those messages become.
    pub remote_packets: f64,
    /// Of [`TrafficDescriptor::remote_packets`], how many cross a fat-tree
    /// leaf boundary (zero on a single switch). Cross-leaf packets
    /// traverse three switches instead of one.
    pub cross_leaf_packets: f64,
    /// Intra-node payload bytes (never touch the switch).
    pub local_bytes: f64,
    /// Largest per-node total of transmitted remote bytes.
    pub max_node_tx_bytes: f64,
    /// Largest per-node total of received remote bytes.
    pub max_node_rx_bytes: f64,
    /// Largest per-node count of *distinct* remote destination nodes.
    /// Governs how many independent source flows interleave at a busy
    /// egress port (more interleaved flows → deeper burst queues).
    pub peers: f64,
}

impl TrafficDescriptor {
    /// True if the job never touches the network.
    pub fn is_network_idle(&self) -> bool {
        self.remote_packets == 0.0
    }

    /// Mean bytes per remote packet (falls back to the probe-sized 1 KB
    /// packet when the job sends nothing).
    pub fn avg_packet_bytes(&self) -> f64 {
        if self.remote_packets > 0.0 {
            self.remote_bytes / self.remote_packets
        } else {
            1024.0
        }
    }

    /// Mean switch traversals per remote packet: 1, plus 2 more for the
    /// cross-leaf fraction.
    pub fn avg_traversals(&self) -> f64 {
        if self.remote_packets > 0.0 {
            1.0 + 2.0 * self.cross_leaf_packets / self.remote_packets
        } else {
            1.0
        }
    }
}

/// Which leaf switch a node hangs off (0 on a single switch).
fn leaf_of(net: &SwitchConfig, node: NodeId) -> u32 {
    match net.topology {
        Topology::SingleSwitch => 0,
        Topology::FatTree { leaves, .. } => node.0 / (net.nodes / leaves),
    }
}

/// Walks every rank of `members` to completion and tabulates its traffic.
///
/// # Panics
/// Panics if a rank issues more than an internal budget of operations —
/// endless programs must not be walked directly (CompressionB has the
/// closed-form [`describe_compression`] instead).
pub fn describe_members(
    label: &str,
    mut members: Members,
    net: &SwitchConfig,
) -> TrafficDescriptor {
    let n = members.len() as u32;
    let nodes_of: Vec<NodeId> = members.iter().map(|(_, node)| *node).collect();
    let mut tx = vec![0.0f64; net.nodes as usize];
    let mut rx = vec![0.0f64; net.nodes as usize];
    let mut dsts: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); net.nodes as usize];
    let mut d = TrafficDescriptor {
        label: label.to_owned(),
        ranks: n,
        compute_ns: 0.0,
        rounds: 0.0,
        remote_msgs: 0.0,
        remote_bytes: 0.0,
        remote_packets: 0.0,
        cross_leaf_packets: 0.0,
        local_bytes: 0.0,
        max_node_tx_bytes: 0.0,
        max_node_rx_bytes: 0.0,
        peers: 0.0,
    };
    let ctx = Ctx { now: SimTime::ZERO };
    let mut budget = OP_BUDGET;
    for (local, (prog, src_node)) in members.iter_mut().enumerate() {
        let local_u = local as u32;
        let src_node = *src_node;
        let mut compute = 0.0f64;
        let mut rounds = 0u64;
        let mut pending = false;
        let mut expanded: VecDeque<Op> = VecDeque::new();
        loop {
            let op = match expanded.pop_front() {
                Some(op) => op,
                None => prog.next_op(&ctx),
            };
            // anp-lint: allow(D003) — documented "# Panics" contract: an endless program is a caller bug the walk must not mask
            assert!(
                budget > 0,
                "traffic extraction for '{label}' exceeded {OP_BUDGET} ops \
                 (is the program endless?)"
            );
            budget -= 1;
            match op {
                Op::Stop => break,
                Op::Compute(t) | Op::Sleep(t) => compute += t.as_nanos() as f64,
                Op::Irecv { .. } => pending = true,
                Op::WaitAll => {
                    if pending {
                        rounds += 1;
                        pending = false;
                    }
                }
                Op::Isend { dst, bytes, .. } => {
                    pending = true;
                    let dst_node = nodes_of[dst as usize];
                    if dst_node == src_node {
                        d.local_bytes += bytes as f64;
                    } else {
                        let pkts = bytes.div_ceil(net.mtu).max(1) as f64;
                        d.remote_msgs += 1.0;
                        d.remote_bytes += bytes as f64;
                        d.remote_packets += pkts;
                        tx[src_node.0 as usize] += bytes as f64;
                        rx[dst_node.0 as usize] += bytes as f64;
                        dsts[src_node.0 as usize].insert(dst_node.0);
                        if leaf_of(net, src_node) != leaf_of(net, dst_node) {
                            d.cross_leaf_packets += pkts;
                        }
                    }
                }
                Op::Barrier => {
                    expanded.extend(expand_barrier(local_u, n, Op::RESERVED_TAG_BASE));
                }
                Op::Allreduce { bytes } => {
                    expanded.extend(expand_allreduce(local_u, n, bytes, Op::RESERVED_TAG_BASE));
                }
                Op::Alltoall { bytes_per_pair } => {
                    expanded.extend(expand_alltoall(
                        local_u,
                        n,
                        bytes_per_pair,
                        Op::RESERVED_TAG_BASE,
                    ));
                }
                Op::Bcast { root, bytes } => {
                    expanded.extend(expand_bcast(local_u, root, n, bytes, Op::RESERVED_TAG_BASE));
                }
                Op::Reduce { root, bytes } => {
                    expanded.extend(expand_reduce(
                        local_u,
                        root,
                        n,
                        bytes,
                        Op::RESERVED_TAG_BASE,
                    ));
                }
                Op::Allgather { bytes_per_rank } => {
                    expanded.extend(expand_allgather(
                        local_u,
                        n,
                        bytes_per_rank,
                        Op::RESERVED_TAG_BASE,
                    ));
                }
            }
        }
        d.compute_ns = d.compute_ns.max(compute);
        d.rounds = d.rounds.max(rounds as f64);
    }
    d.max_node_tx_bytes = tx.iter().copied().fold(0.0, f64::max);
    d.max_node_rx_bytes = rx.iter().copied().fold(0.0, f64::max);
    d.peers = dsts.iter().map(BTreeSet::len).max().unwrap_or(0) as f64;
    d
}

/// Closed-form per-iteration descriptor of the CompressionB interferer
/// (Fig. 5): `COMPRESSION_PER_NODE` ranks per node, each sending
/// `partners × messages` payloads of `msg_bytes` along the node ring
/// (always inter-node), sleeping `partners × bubble_cycles` cycles, and
/// closing the iteration with one `WaitAll`.
pub fn describe_compression(comp: &CompressionConfig, net: &SwitchConfig) -> TrafficDescriptor {
    let nodes = u64::from(net.nodes);
    let per_node = u64::from(COMPRESSION_PER_NODE);
    let ranks = nodes * per_node;
    let p = u64::from(comp.partners);
    let m = u64::from(comp.messages);
    let pkts_per_msg = comp.msg_bytes.div_ceil(net.mtu).max(1);

    // Ring distances 1..=P from every node; count the fat-tree
    // leaf-crossing fraction exactly.
    let mut remote_pairs = 0u64;
    let mut cross_pairs = 0u64;
    for i in 0..nodes {
        for dist in 1..=p {
            let dst = (i + nodes - dist % nodes) % nodes;
            if dst == i {
                continue;
            }
            remote_pairs += 1;
            let (src_n, dst_n) = (NodeId(i as u32), NodeId(dst as u32));
            if leaf_of(net, src_n) != leaf_of(net, dst_n) {
                cross_pairs += 1;
            }
        }
    }
    let msgs = (remote_pairs * per_node * m) as f64;
    let bubble = SimDuration::from_cycles(comp.bubble_cycles, net.cpu_hz).as_nanos() as f64;
    TrafficDescriptor {
        label: format!("compressionb-{}", comp.label()),
        ranks: ranks as u32,
        compute_ns: p as f64 * bubble,
        rounds: 1.0,
        remote_msgs: msgs,
        remote_bytes: msgs * comp.msg_bytes as f64,
        remote_packets: msgs * pkts_per_msg as f64,
        cross_leaf_packets: (cross_pairs * per_node * m * pkts_per_msg) as f64,
        local_bytes: 0.0,
        max_node_tx_bytes: (per_node * p * m * comp.msg_bytes) as f64,
        max_node_rx_bytes: (per_node * p * m * comp.msg_bytes) as f64,
        peers: p.min(nodes - 1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::{Program, Scripted};
    use anp_simnet::SwitchConfig;

    fn net() -> SwitchConfig {
        SwitchConfig::tiny_deterministic()
    }

    fn member(ops: Vec<Op>, node: u32) -> (Box<dyn Program>, NodeId) {
        (Box::new(Scripted::new(ops)), NodeId(node))
    }

    #[test]
    fn point_to_point_tallies_bytes_packets_rounds() {
        let cfg = net();
        // Rank 0 on node 0 sends 5000 B to rank 1 on node 1 (MTU 1024 →
        // 5 packets) and waits; rank 1 receives.
        let members: Members = vec![
            member(
                vec![
                    Op::Compute(SimDuration::from_nanos(700)),
                    Op::Isend {
                        dst: 1,
                        bytes: 5000,
                        tag: 1,
                    },
                    Op::WaitAll,
                ],
                0,
            ),
            member(
                vec![
                    Op::Irecv {
                        src: anp_simmpi::Src::Rank(0),
                        tag: 1,
                    },
                    Op::WaitAll,
                ],
                1,
            ),
        ];
        let d = describe_members("t", members, &cfg);
        assert_eq!(d.ranks, 2);
        assert_eq!(d.remote_msgs, 1.0);
        assert_eq!(d.remote_bytes, 5000.0);
        assert_eq!(d.remote_packets, 5.0);
        assert_eq!(d.rounds, 1.0, "both ranks sync once");
        assert_eq!(d.compute_ns, 700.0);
        assert_eq!(d.max_node_tx_bytes, 5000.0);
        assert_eq!(d.max_node_rx_bytes, 5000.0);
        assert_eq!(d.cross_leaf_packets, 0.0, "single switch");
        assert_eq!(d.peers, 1.0, "node 0 targets one remote node");
    }

    #[test]
    fn local_messages_bypass_the_network() {
        let cfg = net();
        let members: Members = vec![
            member(
                vec![
                    Op::Isend {
                        dst: 1,
                        bytes: 2048,
                        tag: 1,
                    },
                    Op::WaitAll,
                ],
                0,
            ),
            member(
                vec![
                    Op::Irecv {
                        src: anp_simmpi::Src::Any,
                        tag: 1,
                    },
                    Op::WaitAll,
                ],
                0,
            ),
        ];
        let d = describe_members("t", members, &cfg);
        assert!(d.is_network_idle());
        assert_eq!(d.local_bytes, 2048.0);
        assert_eq!(d.max_node_tx_bytes, 0.0);
    }

    #[test]
    fn collectives_expand_to_des_identical_counts() {
        let cfg = net();
        // A 4-rank barrier on 4 nodes: recursive doubling = 2 rounds of
        // 8-byte exchanges per rank → 8 remote messages total.
        let members: Members = (0..4).map(|r| member(vec![Op::Barrier], r)).collect();
        let d = describe_members("barrier", members, &cfg);
        assert_eq!(d.remote_msgs, 8.0);
        assert_eq!(d.remote_bytes, 64.0);
        assert_eq!(d.rounds, 2.0, "log2(4) latency-chained rounds");
    }

    #[test]
    fn empty_waitall_is_not_a_round() {
        let cfg = net();
        let members: Members = vec![member(vec![Op::WaitAll, Op::WaitAll], 0)];
        let d = describe_members("idle", members, &cfg);
        assert_eq!(d.rounds, 0.0);
    }

    #[test]
    fn compression_descriptor_matches_figure_5_arithmetic() {
        let cfg = net(); // 4 nodes, MTU 1024
        let comp = CompressionConfig::new(2, 1_000_000, 3);
        let d = describe_compression(&comp, &cfg);
        // 8 ranks × (2 partners × 3 messages) × 40960 B, all remote.
        assert_eq!(d.ranks, 8);
        assert_eq!(d.remote_msgs, 48.0);
        assert_eq!(d.remote_bytes, 48.0 * 40_960.0);
        assert_eq!(d.remote_packets, 1920.0, "40960 B = 40 packets at MTU 1024");
        assert_eq!(d.max_node_tx_bytes, 2.0 * 6.0 * 40_960.0);
        assert_eq!(d.max_node_rx_bytes, d.max_node_tx_bytes);
        assert_eq!(d.rounds, 1.0);
        assert_eq!(d.peers, 2.0, "ring distances 1..=2 on 4 nodes");
        // 2 partners × 1 M cycles at the tiny preset's clock.
        let bubble = SimDuration::from_cycles(1_000_000, cfg.cpu_hz).as_nanos() as f64;
        assert!((d.compute_ns - 2.0 * bubble).abs() < 1e-9);
    }

    #[test]
    fn cross_leaf_fraction_counts_fat_tree_hops() {
        let mut cfg = net();
        cfg.topology = Topology::FatTree {
            leaves: 2,
            spines: 1,
        };
        // 4 nodes on 2 leaves: nodes {0,1} and {2,3}. Ring distance 1
        // crosses a leaf for 0→3 and 2→1 (2 of 4 pairs).
        let comp = CompressionConfig::new(1, 1_000, 1);
        let d = describe_compression(&comp, &cfg);
        assert_eq!(d.cross_leaf_packets / d.remote_packets, 0.5);
        assert!(d.avg_traversals() > 1.0);
    }
}
