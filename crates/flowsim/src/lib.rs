//! # anp-flowsim — the analytic flow-level measurement backend
//!
//! A drop-in [`Backend`] that answers the same questions as the
//! packet-level DES — probe-latency profiles, solo runtimes, co-run and
//! compression slowdowns — from closed-form queueing theory instead of
//! event simulation, typically orders of magnitude faster.
//!
//! The pipeline:
//!
//! 1. [`extract`] walks each rank's program symbolically (lowering
//!    collectives through the DES's own expansions) into a
//!    [`TrafficDescriptor`]: bytes, packets, synchronization rounds,
//!    compute time.
//! 2. [`model`] composes per-stage queueing approximations — NIC
//!    round-robin residuals, an Allen–Cunneen M/G/k central stage,
//!    Pollaczek–Khinchine egress FIFOs, all capped by the credit-gate
//!    ceiling — and iterates a damped fixed point over job durations and
//!    stage utilizations.
//! 3. [`FlowBackend`] converts equilibria into the `anp-core` currency:
//!    deterministic quantile-sampled [`LatencyProfile`]s and
//!    [`SimDuration`] runtimes.
//!
//! ## Blind spots (by construction)
//!
//! The model reasons in steady-state rates. It cannot see transient
//! bursts inside an iteration, timed fault windows ([`FaultPlan`]
//! schedules are rejected at validation), packet loss and ARQ
//! retransmission, or head-of-line transients shorter than a fixed-point
//! time constant. Use the DES backend when those matter; use this one
//! for wide sweeps where its error envelope (see `backend_xval`) is
//! acceptable.
//!
//! [`FaultPlan`]: anp_simnet::FaultPlan

#![warn(missing_docs)]

pub mod extract;
pub mod model;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use anp_core::experiments::{ExperimentConfig, ExperimentError};
use anp_core::journal::config_fingerprint;
use anp_core::{Backend, BackendError, DesBackend, LatencyProfile, WorkloadSpec};
use anp_simnet::{SimDuration, Topology};
use anp_workloads::compressionb::CompressionConfig;
use anp_workloads::{AppKind, RunMode};

pub use extract::{describe_compression, describe_members, TrafficDescriptor};
pub use model::{probe_wait_ns, solve, Equilibrium, NetModel, StageLoads};

/// Golden-ratio-family multipliers for the low-discrepancy sample
/// sequences (rationally independent, so paired coordinates
/// equidistribute over the unit square).
const ALPHA_PHASE: f64 = 0.618_033_988_749_895;
const ALPHA_MAG: f64 = 0.754_877_666_246_693;
const ALPHA_WAIT: f64 = 0.569_840_290_998_053;

/// Sample-count bounds for synthesized profiles.
const MIN_SAMPLES: usize = 64;
const MAX_SAMPLES: usize = 4096;

/// Resolves a measurement backend by its CLI name (`des` or `flow`).
///
/// The factory lives here rather than in `anp-core` because the core
/// crate cannot depend back on this one; every binary that offers a
/// `--backend` flag funnels through this single spelling of the name
/// set.
pub fn backend_from_name(name: &str) -> Result<Box<dyn Backend>, BackendError> {
    match name {
        "des" => Ok(Box::new(DesBackend)),
        "flow" => Ok(Box::new(FlowBackend)),
        other => Err(BackendError::UnknownBackend(other.to_owned())),
    }
}

/// The analytic flow-level backend. Stateless; construct freely.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlowBackend;

/// Everything the symbolic walk reads: the application (and its derived
/// build seed) plus the fabric facts `extract` consults — node count,
/// MTU (packet segmentation), and leaf layout (cross-leaf fractions).
type DescriptorKey = (AppKind, u64, u32, u64, u32, u32);

/// Process-wide memo of extracted application descriptors. The walk is
/// pure in [`DescriptorKey`] but costs tens of milliseconds per app
/// (every rank program runs to completion), and it used to dominate
/// every flow-backend measurement; memoizing it leaves the equilibrium
/// solve — microseconds — as the marginal cost of a flow answer.
static APP_DESCRIPTORS: OnceLock<Mutex<BTreeMap<DescriptorKey, TrafficDescriptor>>> =
    OnceLock::new();

/// Recovers a memo-table lock even if a supervised sweep cell panicked
/// while holding it. The memo tables only ever hold fully computed
/// values (compute happens outside the lock), so the data behind a
/// poisoned lock is still sound — worst case a missing entry is
/// recomputed.
fn lock_memo<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn descriptor_key(cfg: &ExperimentConfig, app: AppKind, salt: u64) -> DescriptorKey {
    let (leaves, spines) = match cfg.switch.topology {
        Topology::SingleSwitch => (0, 0),
        Topology::FatTree { leaves, spines } => (leaves, spines),
    };
    (
        app,
        cfg.workload_seed(salt),
        cfg.switch.nodes,
        cfg.switch.mtu,
        leaves,
        spines,
    )
}

impl FlowBackend {
    /// Builds `app` exactly as the DES experiment drivers would (same
    /// run mode, same derived seed) and extracts its traffic descriptor,
    /// memoized process-wide. The lock is not held across the walk:
    /// concurrent first callers may extract twice, but both arrive at
    /// the same (deterministic) descriptor.
    fn app_descriptor(cfg: &ExperimentConfig, app: AppKind, salt: u64) -> TrafficDescriptor {
        let key = descriptor_key(cfg, app, salt);
        let cache = APP_DESCRIPTORS.get_or_init(|| Mutex::new(BTreeMap::new()));
        if let Some(d) = lock_memo(cache).get(&key) {
            return d.clone();
        }
        let members = app.build(RunMode::Iterations(0), cfg.workload_seed(salt));
        let d = extract::describe_members(app.name(), members, &cfg.switch);
        lock_memo(cache).insert(key, d.clone());
        d
    }

    fn equilibrium(cfg: &ExperimentConfig, workload: WorkloadSpec<'_>) -> Equilibrium {
        let net = NetModel::new(&cfg.switch);
        match workload {
            WorkloadSpec::Idle => solve(&net, &[]),
            WorkloadSpec::App(app) => {
                let d = Self::app_descriptor(cfg, app, app as u64 + 1);
                solve(&net, &[&d])
            }
            WorkloadSpec::Compression(comp) => {
                let d = extract::describe_compression(comp, &cfg.switch);
                solve(&net, &[&d])
            }
        }
    }

    /// Synthesizes the probe-latency profile observed at `loads`.
    ///
    /// Deterministic low-discrepancy sampling: the probe's fixed path
    /// cost, plus a quantile-sampled central service draw per switch
    /// traversal, plus an exponential queueing excursion whose frequency
    /// and conditional mean reproduce the analytic busy probability and
    /// mean wait.
    fn synthesize_profile(cfg: &ExperimentConfig, loads: &StageLoads) -> LatencyProfile {
        let net = NetModel::new(&cfg.switch);
        let probe_bytes = cfg.impact.msg_bytes as f64;
        let base = net.base_one_way_ns(probe_bytes, 1.0);
        let wait = probe_wait_ns(&net, loads);
        let p_busy = loads.any_busy().clamp(0.0, 0.98);
        // Mean-preserving split: p_busy * cond_mean == wait.
        let (p_wait, cond_mean) = if wait > 0.0 && p_busy > 0.0 {
            (p_busy, wait / p_busy)
        } else {
            (0.0, 0.0)
        };
        let wait_cap = 2.0 * net.wait_ceiling_ns(loads.pkt_bytes.max(probe_bytes));

        let n = Self::sample_count(cfg);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let x = i as f64 + 0.5;
            let u_phase = (x * ALPHA_PHASE).fract();
            let u_mag = (x * ALPHA_MAG).fract();
            let u_wait = (x * ALPHA_WAIT).fract();
            let svc = net.service_quantile_ns(u_phase, u_mag);
            let w = if u_wait < p_wait {
                // Inverse-CDF exponential on the stratified remainder of
                // u_wait, so the excursion sizes are themselves
                // well-spread.
                let v = (u_wait / p_wait).min(0.999_999);
                (-cond_mean * (1.0 - v).ln()).min(wait_cap)
            } else {
                0.0
            };
            samples.push((base + svc + w) / 1e3); // ns → µs
        }
        LatencyProfile::from_samples(&samples)
    }

    /// How many probe samples the DES window would have produced (pinger
    /// count × exchanges per window, after warmup), clamped to keep
    /// profile synthesis cheap but well-resolved.
    fn sample_count(cfg: &ExperimentConfig) -> usize {
        let nodes = cfg.switch.nodes - cfg.switch.nodes % 2;
        let pingers = u64::from(nodes / 2) * u64::from(cfg.impact.pairs_per_node);
        let period = cfg.impact.period.as_nanos().max(1);
        let per_pinger = cfg.measure_window.as_nanos() / period;
        let kept = (pingers * per_pinger) as f64 * (1.0 - cfg.warmup_frac);
        (kept as usize).clamp(MIN_SAMPLES, MAX_SAMPLES)
    }
}

impl Backend for FlowBackend {
    fn name(&self) -> &'static str {
        "flow"
    }

    fn supports_faults(&self) -> bool {
        false
    }

    fn supports_timed_series(&self) -> bool {
        false
    }

    fn measure_impact_profile(
        &self,
        cfg: &ExperimentConfig,
        workload: WorkloadSpec<'_>,
    ) -> Result<LatencyProfile, ExperimentError> {
        self.validate(cfg)?;
        let eq = Self::equilibrium(cfg, workload);
        Ok(Self::synthesize_profile(cfg, &eq.loads))
    }

    fn measure_compression_run(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
        comp: &CompressionConfig,
    ) -> Result<SimDuration, ExperimentError> {
        self.validate(cfg)?;
        let net = NetModel::new(&cfg.switch);
        let victim = Self::app_descriptor(cfg, app, app as u64 + 1);
        let noise = extract::describe_compression(comp, &cfg.switch);
        let eq = solve(&net, &[&victim, &noise]);
        Ok(SimDuration::from_nanos(eq.jobs[0].loaded_ns.round() as u64))
    }

    fn measure_solo_runtime(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        self.validate(cfg)?;
        let net = NetModel::new(&cfg.switch);
        let d = Self::app_descriptor(cfg, app, app as u64 + 1);
        let eq = solve(&net, &[&d]);
        Ok(SimDuration::from_nanos(eq.jobs[0].solo_ns.round() as u64))
    }

    fn measure_corun_runtime(
        &self,
        cfg: &ExperimentConfig,
        victim: AppKind,
        other: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        self.validate(cfg)?;
        let net = NetModel::new(&cfg.switch);
        let v = Self::app_descriptor(cfg, victim, victim as u64 + 1);
        let o = Self::app_descriptor(cfg, other, other as u64 + 101);
        let eq = solve(&net, &[&v, &o]);
        Ok(SimDuration::from_nanos(eq.jobs[0].loaded_ns.round() as u64))
    }
}

/// A memoizing cache key: the experiment-config fingerprint plus the
/// question asked, so one evaluator can safely serve several configs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum BatchKey {
    /// Impact profile of a workload (idle / app / compression config).
    Profile(u64, ProfileKey),
    /// App runtime under a CompressionB configuration.
    Compression(u64, AppKind, (u32, u32, u64, u64, u32)),
    /// Solo runtime of an app.
    Solo(u64, AppKind),
    /// Ordered co-run runtime (victim, other).
    Corun(u64, AppKind, AppKind),
}

#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
enum ProfileKey {
    Idle,
    App(AppKind),
    Compression((u32, u32, u64, u64, u32)),
}

fn comp_key(c: &CompressionConfig) -> (u32, u32, u64, u64, u32) {
    (c.partners, c.messages, c.bubble_cycles, c.msg_bytes, c.tag)
}

/// A batching wrapper around any measurement backend: every answered
/// question is memoized, so one calibration pass serves arbitrarily many
/// candidate pairings afterwards at zero marginal cost.
///
/// This is the evaluator the `anp-sched` placement loop drives: a
/// predictive policy asks for the same handful of impact profiles over
/// and over while scoring hundreds of candidate placements, and the
/// cache collapses those to one backend call each. Results are cached
/// keyed by [`config_fingerprint`], so evaluating under several
/// experiment configurations through one evaluator stays sound. Errors
/// are never cached — a transient failure retries on the next ask.
///
/// The wrapper is deterministic by construction: it only replays what
/// the inner backend returned, so any sequence of calls yields byte-wise
/// the results the bare backend would have produced.
pub struct BatchEvaluator {
    inner: Box<dyn Backend>,
    profiles: Mutex<BTreeMap<BatchKey, LatencyProfile>>,
    durations: Mutex<BTreeMap<BatchKey, SimDuration>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BatchEvaluator {
    /// Wraps `inner` with a fresh, empty memo.
    pub fn new(inner: Box<dyn Backend>) -> Self {
        BatchEvaluator {
            inner,
            profiles: Mutex::new(BTreeMap::new()),
            durations: Mutex::new(BTreeMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Cache hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Questions that had to reach the inner backend.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn fp(&self, cfg: &ExperimentConfig) -> u64 {
        config_fingerprint(cfg, self.inner.name())
    }

    fn cached_duration(
        &self,
        key: BatchKey,
        compute: impl FnOnce() -> Result<SimDuration, ExperimentError>,
    ) -> Result<SimDuration, ExperimentError> {
        if let Some(&d) = lock_memo(&self.durations).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(d);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let d = compute()?;
        lock_memo(&self.durations).insert(key, d);
        Ok(d)
    }
}

impl Backend for BatchEvaluator {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports_faults(&self) -> bool {
        self.inner.supports_faults()
    }

    fn supports_timed_series(&self) -> bool {
        self.inner.supports_timed_series()
    }

    fn validate(&self, cfg: &ExperimentConfig) -> Result<(), BackendError> {
        self.inner.validate(cfg)
    }

    fn measure_impact_profile(
        &self,
        cfg: &ExperimentConfig,
        workload: WorkloadSpec<'_>,
    ) -> Result<LatencyProfile, ExperimentError> {
        let pk = match workload {
            WorkloadSpec::Idle => ProfileKey::Idle,
            WorkloadSpec::App(app) => ProfileKey::App(app),
            WorkloadSpec::Compression(c) => ProfileKey::Compression(comp_key(c)),
        };
        let key = BatchKey::Profile(self.fp(cfg), pk);
        if let Some(p) = lock_memo(&self.profiles).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let p = self.inner.measure_impact_profile(cfg, workload)?;
        lock_memo(&self.profiles).insert(key, p.clone());
        Ok(p)
    }

    fn measure_compression_run(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
        comp: &CompressionConfig,
    ) -> Result<SimDuration, ExperimentError> {
        let key = BatchKey::Compression(self.fp(cfg), app, comp_key(comp));
        self.cached_duration(key, || self.inner.measure_compression_run(cfg, app, comp))
    }

    fn measure_solo_runtime(
        &self,
        cfg: &ExperimentConfig,
        app: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        let key = BatchKey::Solo(self.fp(cfg), app);
        self.cached_duration(key, || self.inner.measure_solo_runtime(cfg, app))
    }

    fn measure_corun_runtime(
        &self,
        cfg: &ExperimentConfig,
        victim: AppKind,
        other: AppKind,
    ) -> Result<SimDuration, ExperimentError> {
        let key = BatchKey::Corun(self.fp(cfg), victim, other);
        self.cached_duration(key, || self.inner.measure_corun_runtime(cfg, victim, other))
    }
}

impl std::fmt::Debug for BatchEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEvaluator")
            .field("inner", &self.inner.name())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_core::BackendError;
    use anp_simnet::{FaultPlan, SwitchConfig};

    fn tiny_cfg() -> ExperimentConfig {
        let mut cfg = ExperimentConfig::cab();
        cfg.switch = SwitchConfig::tiny_deterministic();
        cfg.measure_window = SimDuration::from_millis(5);
        cfg
    }

    #[test]
    fn idle_profile_matches_the_pinned_des_mean() {
        // The DES tiny-config idle probe mean is pinned at 2.448 µs; the
        // analytic model must agree on a deterministic-service fabric.
        let p = FlowBackend
            .measure_impact_profile(&tiny_cfg(), WorkloadSpec::Idle)
            .unwrap();
        assert!(
            (p.mean() - 2.448).abs() < 0.001,
            "idle mean {} vs DES 2.448",
            p.mean()
        );
        assert!(p.std_dev() < 1e-9, "deterministic service has no spread");
    }

    #[test]
    fn cab_idle_profile_is_near_the_des_calibration_point() {
        let cfg = ExperimentConfig::cab();
        let p = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Idle)
            .unwrap();
        assert!(
            (p.mean() - 1.285).abs() < 0.05,
            "Cab idle mean {} vs analytic 1.285",
            p.mean()
        );
        assert!(p.std_dev() > 0.0, "the service tail must show");
    }

    #[test]
    fn heavier_compression_raises_probe_latency_monotonically() {
        let cfg = ExperimentConfig::cab();
        let light = CompressionConfig::new(1, 25_000_000, 1);
        let heavy = CompressionConfig::new(17, 25_000, 10);
        let idle = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Idle)
            .unwrap();
        let p_light = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Compression(&light))
            .unwrap();
        let p_heavy = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Compression(&heavy))
            .unwrap();
        assert!(p_light.mean() >= idle.mean());
        assert!(
            p_heavy.mean() > p_light.mean() + 1.0,
            "saturating config must add microseconds: light {} heavy {}",
            p_light.mean(),
            p_heavy.mean()
        );
    }

    #[test]
    fn compression_slows_an_app_beyond_its_solo_time() {
        let cfg = ExperimentConfig::cab();
        let comp = CompressionConfig::new(17, 25_000, 10);
        let solo = FlowBackend
            .measure_solo_runtime(&cfg, AppKind::Fftw)
            .unwrap();
        let loaded = FlowBackend
            .measure_compression_run(&cfg, AppKind::Fftw, &comp)
            .unwrap();
        assert!(
            loaded > solo,
            "saturating interference must cost time: solo {solo}, loaded {loaded}"
        );
    }

    #[test]
    fn corun_is_at_least_solo_and_symmetric_apps_agree() {
        let cfg = ExperimentConfig::cab();
        let solo = FlowBackend
            .measure_solo_runtime(&cfg, AppKind::Milc)
            .unwrap();
        let loaded = FlowBackend
            .measure_corun_runtime(&cfg, AppKind::Milc, AppKind::Fftw)
            .unwrap();
        assert!(loaded >= solo);
    }

    #[test]
    fn fault_plans_are_rejected_with_a_typed_error() {
        let mut cfg = ExperimentConfig::cab();
        cfg.switch.fault_plan = FaultPlan::uniform_loss(1e-3);
        let err = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Idle)
            .unwrap_err();
        match err {
            ExperimentError::Backend(BackendError::UnsupportedOption { backend, .. }) => {
                assert_eq!(backend, "flow");
            }
            other => panic!("expected a capability error, got {other:?}"),
        }
    }

    #[test]
    fn batch_evaluator_replays_the_bare_backend() {
        let cfg = ExperimentConfig::cab();
        let batch = BatchEvaluator::new(Box::new(FlowBackend));

        let bare_profile = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::App(AppKind::Milc))
            .unwrap();
        let first = batch
            .measure_impact_profile(&cfg, WorkloadSpec::App(AppKind::Milc))
            .unwrap();
        let second = batch
            .measure_impact_profile(&cfg, WorkloadSpec::App(AppKind::Milc))
            .unwrap();
        assert_eq!(first.mean().to_bits(), bare_profile.mean().to_bits());
        assert_eq!(second.mean().to_bits(), bare_profile.mean().to_bits());
        assert_eq!(first.count(), bare_profile.count());

        let bare_solo = FlowBackend
            .measure_solo_runtime(&cfg, AppKind::Fftw)
            .unwrap();
        assert_eq!(
            batch.measure_solo_runtime(&cfg, AppKind::Fftw).unwrap(),
            bare_solo
        );
        assert_eq!(
            batch.measure_solo_runtime(&cfg, AppKind::Fftw).unwrap(),
            bare_solo
        );

        assert_eq!(batch.misses(), 2, "one backend call per distinct question");
        assert_eq!(batch.hits(), 2, "repeats served from the memo");
    }

    #[test]
    fn batch_evaluator_distinguishes_configs() {
        let cab = ExperimentConfig::cab();
        let tiny = tiny_cfg();
        let batch = BatchEvaluator::new(Box::new(FlowBackend));
        let a = batch
            .measure_impact_profile(&cab, WorkloadSpec::Idle)
            .unwrap();
        let b = batch
            .measure_impact_profile(&tiny, WorkloadSpec::Idle)
            .unwrap();
        assert_ne!(
            a.mean().to_bits(),
            b.mean().to_bits(),
            "different configs must not share cache entries"
        );
        assert_eq!(batch.misses(), 2);
    }

    #[test]
    fn profiles_are_deterministic() {
        let cfg = ExperimentConfig::cab();
        let comp = CompressionConfig::new(7, 2_500_000, 10);
        let a = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Compression(&comp))
            .unwrap();
        let b = FlowBackend
            .measure_impact_profile(&cfg, WorkloadSpec::Compression(&comp))
            .unwrap();
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.count(), b.count());
    }
}
