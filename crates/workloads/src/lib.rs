//! # anp-workloads — micro-benchmarks and application proxies
//!
//! The software that runs *on* the simulated cluster:
//!
//! * [`impactb`] — the paper's light latency probe (Fig. 2);
//! * [`compressionb`] — the paper's heavy interference benchmark (Fig. 5)
//!   with its full 40-configuration sweep (§IV-C);
//! * [`apps`] / [`registry`] — proxies for the six HPC applications of the
//!   evaluation (AMG, FFTW, Lulesh, MCB, MILC, VPFFT), reproducing each
//!   code's communication skeleton at the paper's scale (144 ranks on 18
//!   nodes; Lulesh 64 on 16);
//! * [`probetrain`] — seeded, jittered ImpactB probe trains for the
//!   always-on monitor (`anp-monitor`), decorrelated from workload
//!   phases;
//! * [`placement`] — the node-major rank layouts and torus topologies;
//! * [`arrivals`] — seeded job arrival streams feeding the `anp-sched`
//!   co-scheduling study.
//!
//! The production applications themselves are not available in this
//! environment; per DESIGN.md, each proxy preserves the property the
//! methodology actually consumes — the app's probe-latency footprint and
//! its sensitivity to reduced switch capability.

#![warn(missing_docs)]

pub mod apps;
pub mod arrivals;
pub mod compressionb;
pub mod impactb;
pub mod placement;
pub mod probetrain;
pub mod registry;

pub use apps::common::RunMode;
pub use arrivals::{JobSpec, StreamConfig};
pub use compressionb::{build_compressionb, CompressionConfig};
pub use impactb::{
    build_impactb, latencies, new_sink, ImpactConfig, Members, ProbeSample, SampleSink,
};
pub use placement::Layout;
pub use probetrain::{build_probe_train, TrainConfig};
pub use registry::AppKind;
