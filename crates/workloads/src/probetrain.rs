//! Seeded ImpactB probe *trains* for continuous online monitoring.
//!
//! The offline methodology ([`crate::impactb`]) fires probes on a fixed
//! period, which is fine for a dedicated measurement window but risky for
//! a monitor that runs forever next to production jobs: a fixed period
//! can alias with an application's own communication phases and sample
//! only the quiet (or only the busy) part of every phase. The probe
//! train breaks the lock-step by drawing each inter-probe gap from a
//! seeded uniform jitter around the base period, so the sampling comb is
//! incommensurate with any workload phase while the mean probe rate —
//! and therefore the probe's own load budget — stays exactly the
//! configured one. The same seed always produces the same train, which
//! the monitor's determinism tests pin.

use std::rc::Rc;

use anp_simmpi::{Ctx, Op, Program, Src};
use anp_simnet::{NodeId, SimDuration, SimTime};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::impactb::{new_sink, ImpactConfig, Members, ProbeSample, SampleSink};
use crate::placement::Layout;

/// Parameters of a monitoring probe train.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// The underlying probe shape (message size, base period, pairs, tag).
    pub impact: ImpactConfig,
    /// Jitter amplitude as a fraction of the base period: each gap is
    /// drawn uniformly from `period · [1−jitter, 1+jitter]`. Zero
    /// degenerates to the fixed-period ImpactB comb.
    pub jitter_frac: f64,
    /// Seed of the jitter stream. Every pinger derives its own
    /// independent substream from this, so two trains with the same seed
    /// are sample-for-sample identical.
    pub seed: u64,
}

impl TrainConfig {
    /// A train over the given probe shape with the default 25 % jitter.
    pub fn new(impact: ImpactConfig, seed: u64) -> Self {
        TrainConfig {
            impact,
            jitter_frac: 0.25,
            seed,
        }
    }
}

/// The pinging side of one jittered probe pair.
struct TrainPinger {
    partner: u32,
    bytes: u64,
    period: SimDuration,
    jitter_frac: f64,
    tag: u32,
    sink: SampleSink,
    rng: StdRng,
    t0: SimTime,
    step: u8,
    start_delay: SimDuration,
    started: bool,
}

impl TrainPinger {
    /// Draws the next inter-probe gap: `period · uniform[1−j, 1+j]`.
    fn next_gap(&mut self) -> SimDuration {
        if self.jitter_frac <= 0.0 {
            return self.period;
        }
        let j = self.jitter_frac.min(1.0);
        let scale = self.rng.gen_range(1.0 - j..1.0 + j);
        let nanos = (self.period.as_nanos() as f64 * scale).round().max(1.0);
        SimDuration::from_nanos(nanos as u64)
    }
}

impl Program for TrainPinger {
    fn next_op(&mut self, ctx: &Ctx) -> Op {
        if !self.started {
            self.started = true;
            if self.start_delay > SimDuration::ZERO {
                return Op::Sleep(self.start_delay);
            }
        }
        match self.step {
            0 => {
                self.t0 = ctx.now;
                self.step = 1;
                Op::Isend {
                    dst: self.partner,
                    bytes: self.bytes,
                    tag: self.tag,
                }
            }
            1 => {
                self.step = 2;
                Op::Irecv {
                    src: Src::Rank(self.partner),
                    tag: self.tag,
                }
            }
            2 => {
                self.step = 3;
                Op::WaitAll
            }
            _ => {
                let rtt = ctx.now.since(self.t0);
                self.sink.borrow_mut().push(ProbeSample {
                    at: ctx.now,
                    one_way_us: rtt.as_micros_f64() / 2.0,
                });
                self.step = 0;
                Op::Sleep(self.next_gap())
            }
        }
    }

    fn name(&self) -> &str {
        "probe-train-ping"
    }
}

/// Builds the ponger side: receive, reply, forever.
fn ponger(partner: u32, bytes: u64, tag: u32) -> anp_simmpi::Looping {
    anp_simmpi::Looping::new(vec![
        Op::Irecv {
            src: Src::Rank(partner),
            tag,
        },
        Op::WaitAll,
        Op::Isend {
            dst: partner,
            bytes,
            tag,
        },
        Op::WaitAll,
    ])
    .named("probe-train-pong")
}

/// Builds a jittered probe-train job for a switch of `nodes` nodes.
///
/// Placement mirrors [`crate::build_impactb`]: nodes are paired
/// `(0,1), (2,3), …` with `pairs_per_node` couples per node pair and
/// staggered start offsets, but every pinger additionally carries its own
/// seeded jitter stream (substream = `seed` mixed with the pair index).
///
/// # Panics
/// Panics if fewer than two nodes are available.
pub fn build_probe_train(cfg: &TrainConfig, nodes: u32) -> (Members, SampleSink) {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(nodes >= 2, "a probe train needs at least one node pair");
    let sink = new_sink();
    let impact = &cfg.impact;
    let layout = Layout::new(nodes - nodes % 2, impact.pairs_per_node);
    let total_pairs = (layout.nodes / 2) * impact.pairs_per_node;
    let mut members: Vec<(Box<dyn Program>, NodeId)> = Vec::new();
    let mut pair_idx = 0u32;
    for local in 0..layout.ranks() {
        let node_idx = layout.node_index_of(local);
        let core = layout.core_of(local);
        let node = layout.node_of(local);
        let program: Box<dyn Program> = if node_idx.is_multiple_of(2) {
            let partner = layout.rank_at(node_idx + 1, core);
            let start_delay = impact.period * u64::from(pair_idx) / u64::from(total_pairs.max(1));
            let substream = cfg
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(u64::from(pair_idx) + 1);
            pair_idx += 1;
            Box::new(TrainPinger {
                partner,
                bytes: impact.msg_bytes,
                period: impact.period,
                jitter_frac: cfg.jitter_frac,
                tag: impact.tag,
                sink: Rc::clone(&sink),
                rng: StdRng::seed_from_u64(substream),
                t0: SimTime::ZERO,
                step: 0,
                start_delay,
                started: false,
            })
        } else {
            let partner = layout.rank_at(node_idx - 1, core);
            Box::new(ponger(partner, impact.msg_bytes, impact.tag))
        };
        members.push((program, node));
    }
    (members, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::SwitchConfig;

    fn quick_train(seed: u64, jitter: f64) -> Vec<ProbeSample> {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let cfg = TrainConfig {
            impact: ImpactConfig {
                period: SimDuration::from_micros(50),
                pairs_per_node: 1,
                ..ImpactConfig::default()
            },
            jitter_frac: jitter,
            seed,
        };
        let (members, sink) = build_probe_train(&cfg, 4);
        world.add_job("probe-train", members);
        world.run_until(SimTime::from_millis(2));
        let samples = sink.borrow().clone();
        samples
    }

    #[test]
    fn same_seed_same_train() {
        let a = quick_train(7, 0.25);
        let b = quick_train(7, 0.25);
        assert!(!a.is_empty());
        assert_eq!(a, b, "a probe train must be a pure function of its seed");
    }

    #[test]
    fn different_seeds_differ() {
        let a = quick_train(7, 0.25);
        let b = quick_train(8, 0.25);
        assert_ne!(
            a, b,
            "different jitter seeds must decorrelate the sampling comb"
        );
    }

    #[test]
    fn zero_jitter_matches_impactb_cadence() {
        let fixed = quick_train(7, 0.0);
        let jittered = quick_train(7, 0.25);
        // Same horizon and mean rate, so sample counts stay comparable...
        let ratio = fixed.len() as f64 / jittered.len() as f64;
        assert!(
            (0.8..1.25).contains(&ratio),
            "jitter must not change the mean probe rate: {} vs {}",
            fixed.len(),
            jittered.len()
        );
        // ...but the jittered gaps must actually vary.
        let gaps = |s: &[ProbeSample]| -> Vec<u64> {
            s.windows(2)
                .map(|w| w[1].at.since(w[0].at).as_nanos())
                .collect()
        };
        let fixed_gaps = gaps(&fixed);
        let jitter_gaps = gaps(&jittered);
        let spread = |g: &[u64]| g.iter().max().unwrap() - g.iter().min().unwrap();
        assert!(
            spread(&jitter_gaps) > spread(&fixed_gaps),
            "jittered gaps must spread wider than the fixed comb"
        );
    }

    #[test]
    fn idle_latency_matches_impactb_baseline() {
        // Jitter moves *when* probes fire, never what they measure: on an
        // idle deterministic switch every sample is still the 2.448 µs
        // one-way of crate::impactb.
        for s in quick_train(3, 0.5) {
            assert!(
                (s.one_way_us - 2.448).abs() < 0.1,
                "latency sample {} off",
                s.one_way_us
            );
        }
    }
}
