//! AMG proxy: algebraic multigrid V-cycles.
//!
//! Paper §II: "AMG carries out several iterations of an iterative solver
//! over the same linear system at different levels of granularity … like a
//! CPU intensive benchmark when it operates over a dense representation
//! and like a communication and memory bound application when it performs
//! solver iterations over a sparse representation. Thus, AMG runs will
//! display very different phases." The proxy executes V-cycles: a
//! down-sweep through levels of shrinking message size and compute, a
//! coarse-level reduction, and the mirrored up-sweep. The phase structure
//! is exactly what makes the queue model mispredict FFTW+AMG in the paper
//! (§V-B) — reproducing it faithfully matters.

use anp_simmpi::{Op, Program, Src};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::{torus2d_neighbors, Layout};

/// One multigrid level of the AMG proxy.
#[derive(Debug, Clone, Copy)]
pub struct AmgLevel {
    /// CPU time of the smoother at this level.
    pub compute_ns: u64,
    /// Halo message size at this level.
    pub halo_bytes: u64,
}

/// AMG proxy parameters.
#[derive(Debug, Clone)]
pub struct AmgParams {
    /// Process-grid width for halo exchanges.
    pub grid_w: u32,
    /// The level hierarchy, fine to coarse.
    pub levels: Vec<AmgLevel>,
    /// V-cycles per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for AmgParams {
    fn default() -> Self {
        AmgParams {
            grid_w: 12,
            levels: vec![
                AmgLevel {
                    compute_ns: 2_500_000,
                    halo_bytes: 16 * 1024,
                },
                AmgLevel {
                    compute_ns: 700_000,
                    halo_bytes: 4 * 1024,
                },
                AmgLevel {
                    compute_ns: 200_000,
                    halo_bytes: 1_024,
                },
                AmgLevel {
                    compute_ns: 60_000,
                    halo_bytes: 256,
                },
            ],
            iterations: 25,
        }
    }
}

/// Builds the AMG proxy job over `layout` (rank count must be divisible by
/// `grid_w`).
pub fn build_amg(
    params: &AmgParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = params.clone();
    let n = layout.ranks();
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(
        n.is_multiple_of(p.grid_w) && n / p.grid_w >= 2 && p.grid_w >= 2,
        "AMG needs a {}×h grid with h ≥ 2 (got {n} ranks)",
        p.grid_w
    );
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(!p.levels.is_empty(), "AMG needs at least one level");
    let grid_h = n / p.grid_w;
    let mode = match mode {
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..n)
        .map(|local| {
            let neighbors = torus2d_neighbors(local, p.grid_w, grid_h);
            let levels = p.levels.clone();
            let program = IterativeProgram::new(
                format!("amg[{local}]"),
                rank_seed(seed, local),
                mode,
                move |_iter, rng| {
                    let mut ops = Vec::new();
                    let halo = |ops: &mut Vec<Op>, bytes: u64| {
                        for &nb in &neighbors {
                            ops.push(Op::Irecv {
                                src: Src::Rank(nb),
                                tag: 4,
                            });
                            ops.push(Op::Isend {
                                dst: nb,
                                bytes,
                                tag: 4,
                            });
                        }
                        ops.push(Op::WaitAll);
                    };
                    // Down-sweep: smooth + restrict at every level.
                    for lvl in &levels {
                        ops.push(jittered_compute(rng, lvl.compute_ns, 0.07));
                        halo(&mut ops, lvl.halo_bytes);
                    }
                    // Coarse solve: a global reduction.
                    ops.push(Op::Allreduce { bytes: 8 });
                    // Up-sweep: interpolate + smooth, coarse to fine.
                    for lvl in levels.iter().rev() {
                        halo(&mut ops, lvl.halo_bytes);
                        ops.push(jittered_compute(rng, lvl.compute_ns, 0.07));
                    }
                    ops
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn amg_vcycles_complete() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let layout = Layout::new(4, 2);
        let params = AmgParams {
            grid_w: 4,
            levels: vec![
                AmgLevel {
                    compute_ns: 20_000,
                    halo_bytes: 1_024,
                },
                AmgLevel {
                    compute_ns: 5_000,
                    halo_bytes: 128,
                },
            ],
            iterations: 2,
        };
        let members = build_amg(&params, &layout, RunMode::Iterations(2), 13);
        let job = world.add_job("amg", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        // Two halos per level per cycle (down + up), 4 neighbours each,
        // plus the coarse-level allreduce's lowered point-to-points
        // (8 ranks → 3 recursive-doubling rounds → 24 sends per cycle).
        let halo = 8 * 2 * 2 * 2 * 4;
        let allreduce = 24 * 2;
        assert_eq!(world.fabric().stats().messages_sent, halo + allreduce);
    }

    #[test]
    fn default_levels_shrink() {
        let p = AmgParams::default();
        for w in p.levels.windows(2) {
            assert!(w[1].compute_ns < w[0].compute_ns);
            assert!(w[1].halo_bytes < w[0].halo_bytes);
        }
    }

    #[test]
    fn phases_alternate_heavy_and_light() {
        // The finest level dominates compute; the coarsest is
        // latency-bound. Ratio must be large enough to create visible
        // phase behaviour.
        let p = AmgParams::default();
        let first = &p.levels[0];
        let last = p.levels.last().unwrap();
        assert!(first.compute_ns > 20 * last.compute_ns);
        assert!(first.halo_bytes > 20 * last.halo_bytes);
    }
}
