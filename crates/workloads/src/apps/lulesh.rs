//! Lulesh proxy: 3-D Lagrangian shock hydrodynamics.
//!
//! Paper §II: "Lulesh is a typical finite difference method code with
//! local communication phases interleaved by intensive computation
//! phases." The proxy runs a 4×4×4 rank torus (the paper's 64-rank cubic
//! requirement) exchanging the full 26-point halo each step — large face
//! messages, small edge messages, tiny corner messages — followed by a
//! heavy compute span and the per-step `dt` allreduce.

use anp_simmpi::{Op, Program, Src};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::{torus3d_neighbors, Layout};

/// Lulesh proxy parameters.
#[derive(Debug, Clone, Copy)]
pub struct LuleshParams {
    /// Ranks per torus edge (total ranks = side³; the paper uses 4³ = 64).
    pub side: u32,
    /// Bytes of one face halo message.
    pub face_bytes: u64,
    /// Bytes of one edge halo message.
    pub edge_bytes: u64,
    /// Bytes of one corner halo message.
    pub corner_bytes: u64,
    /// Mean CPU time of one element/nodal update step.
    pub compute_ns: u64,
    /// Time steps per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for LuleshParams {
    fn default() -> Self {
        LuleshParams {
            side: 4,
            face_bytes: 24 * 1024,
            edge_bytes: 1_024,
            corner_bytes: 128,
            compute_ns: 2_200_000,
            iterations: 30,
        }
    }
}

/// Builds the Lulesh proxy job over `layout` (which must have side³
/// ranks).
pub fn build_lulesh(
    params: &LuleshParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = *params;
    assert_eq!(
        layout.ranks(),
        p.side * p.side * p.side,
        "Lulesh needs a cubic rank count ({}³)",
        p.side
    );
    let mode = match mode {
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..layout.ranks())
        .map(|local| {
            let (faces, edges, corners) = torus3d_neighbors(local, p.side);
            let mut halo = Vec::with_capacity(52);
            for (&n, bytes) in faces
                .iter()
                .map(|n| (n, p.face_bytes))
                .chain(edges.iter().map(|n| (n, p.edge_bytes)))
                .chain(corners.iter().map(|n| (n, p.corner_bytes)))
            {
                halo.push(Op::Irecv {
                    src: Src::Rank(n),
                    tag: 1,
                });
                halo.push(Op::Isend {
                    dst: n,
                    bytes,
                    tag: 1,
                });
            }
            halo.push(Op::WaitAll);
            let program = IterativeProgram::new(
                format!("lulesh[{local}]"),
                rank_seed(seed, local),
                mode,
                move |_iter, rng| {
                    let mut ops = halo.clone();
                    ops.push(jittered_compute(rng, p.compute_ns, 0.08));
                    // The per-step stable-timestep reduction.
                    ops.push(Op::Allreduce { bytes: 8 });
                    ops
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn lulesh_cube_completes() {
        // 2×2×2 = 8 ranks on 4 nodes. Note: on a 2-torus opposite
        // neighbours coincide, so use side 3 for distinctness.
        let mut world = World::new(SwitchConfig::cab().with_seed(9));
        let layout = Layout::new(9, 3); // 27 ranks
        let params = LuleshParams {
            side: 3,
            face_bytes: 2_048,
            edge_bytes: 256,
            corner_bytes: 64,
            compute_ns: 20_000,
            iterations: 2,
        };
        let members = build_lulesh(&params, &layout, RunMode::Iterations(2), 3);
        assert_eq!(members.len(), 27);
        let job = world.add_job("lulesh", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        // 26 neighbour messages per rank per iteration, 2 iterations,
        // plus the dt-allreduce's lowered traffic on top.
        let halo = 27 * 26 * 2;
        assert!(world.fabric().stats().messages_sent >= halo);
        assert!(world.fabric().stats().messages_sent < halo + 400);
    }

    #[test]
    #[should_panic(expected = "cubic rank count")]
    fn non_cubic_layout_panics() {
        let layout = Layout::new(4, 4); // 16 ranks ≠ 64
        build_lulesh(&LuleshParams::default(), &layout, RunMode::Endless, 0);
    }

    #[test]
    fn default_is_compute_dominated() {
        // Paper Fig. 7: Lulesh degrades only 8–15 %. The halo volume per
        // step (≈ 110 KB) must stay small next to 5 ms of compute.
        let p = LuleshParams::default();
        let halo_bytes = 6 * p.face_bytes + 12 * p.edge_bytes + 8 * p.corner_bytes;
        let halo_time_ns = halo_bytes as f64 / 5.0; // 5 GB/s → ns/byte
        assert!(halo_time_ns * 20.0 < p.compute_ns as f64);
    }
}
