//! Shared machinery for the six application proxies.

use std::collections::VecDeque;

use anp_simmpi::{Ctx, Op, Program};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Whether an application instance runs a fixed number of iterations (the
/// measured workload) or loops until the horizon (the background workload
/// in a co-run, matching the paper's "run each benchmark in continuous
/// loops").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Execute exactly this many iterations, then stop. The job's finish
    /// time is the measured runtime.
    Iterations(u32),
    /// Loop forever (until the simulation horizon).
    Endless,
}

/// A rank program that generates one iteration's operations at a time from
/// a closure, with a per-rank deterministic RNG for compute jitter.
///
/// This is how every application proxy is expressed: the closure captures
/// the rank's communication skeleton (neighbours, message sizes, compute
/// spans) and may vary spans per iteration through the RNG.
pub struct IterativeProgram<F> {
    gen: F,
    mode: RunMode,
    iter: u32,
    queue: VecDeque<Op>,
    rng: StdRng,
    label: String,
}

impl<F> IterativeProgram<F>
where
    F: FnMut(u32, &mut StdRng) -> Vec<Op>,
{
    /// Creates a program from an iteration generator.
    pub fn new(label: impl Into<String>, seed: u64, mode: RunMode, gen: F) -> Self {
        IterativeProgram {
            gen,
            mode,
            iter: 0,
            queue: VecDeque::new(),
            rng: StdRng::seed_from_u64(seed),
            label: label.into(),
        }
    }
}

impl<F> Program for IterativeProgram<F>
where
    F: FnMut(u32, &mut StdRng) -> Vec<Op>,
{
    fn next_op(&mut self, _ctx: &Ctx) -> Op {
        while self.queue.is_empty() {
            if let RunMode::Iterations(n) = self.mode {
                if self.iter >= n {
                    return Op::Stop;
                }
            }
            let ops = (self.gen)(self.iter, &mut self.rng);
            // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
            assert!(
                !ops.is_empty(),
                "iteration generator for '{}' produced no ops",
                self.label
            );
            self.queue.extend(ops);
            self.iter += 1;
        }
        // anp-lint: allow(D003) — locally proven: guarded by the explicit check a few lines above
        self.queue.pop_front().expect("queue refilled above")
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Derives a per-rank RNG seed from an application seed: splitmix64-style
/// mixing so consecutive ranks get decorrelated streams.
pub fn rank_seed(app_seed: u64, rank: u32) -> u64 {
    let mut z = app_seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(rank) + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A compute span jittered by ±`frac` around `base_ns` (deterministic per
/// RNG stream). Jitter prevents artificial lock-step between ranks that
/// real applications never exhibit.
pub fn jittered_compute(rng: &mut StdRng, base_ns: u64, frac: f64) -> Op {
    debug_assert!((0.0..1.0).contains(&frac));
    let lo = 1.0 - frac;
    let hi = 1.0 + frac;
    let factor: f64 = rng.gen_range(lo..hi);
    Op::Compute(anp_simnet::SimDuration::from_nanos(base_ns).mul_f64(factor))
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simnet::{SimDuration, SimTime};

    fn ctx() -> Ctx {
        Ctx { now: SimTime::ZERO }
    }

    #[test]
    fn fixed_iterations_then_stop() {
        let mut p = IterativeProgram::new("t", 1, RunMode::Iterations(2), |i, _| {
            vec![Op::Compute(SimDuration::from_nanos(u64::from(i) + 1))]
        });
        assert_eq!(p.next_op(&ctx()), Op::Compute(SimDuration::from_nanos(1)));
        assert_eq!(p.next_op(&ctx()), Op::Compute(SimDuration::from_nanos(2)));
        assert_eq!(p.next_op(&ctx()), Op::Stop);
        assert_eq!(p.next_op(&ctx()), Op::Stop);
    }

    #[test]
    fn endless_mode_never_stops() {
        let mut p = IterativeProgram::new("t", 1, RunMode::Endless, |_, _| vec![Op::WaitAll]);
        for _ in 0..1000 {
            assert_eq!(p.next_op(&ctx()), Op::WaitAll);
        }
    }

    #[test]
    #[should_panic(expected = "produced no ops")]
    fn empty_generator_panics() {
        let mut p = IterativeProgram::new("t", 1, RunMode::Endless, |_, _| vec![]);
        p.next_op(&ctx());
    }

    #[test]
    fn rank_seeds_are_distinct_and_stable() {
        let s1 = rank_seed(42, 0);
        let s2 = rank_seed(42, 1);
        assert_ne!(s1, s2);
        assert_eq!(s1, rank_seed(42, 0), "seeds must be deterministic");
        // Different app seeds decorrelate.
        assert_ne!(rank_seed(42, 0), rank_seed(43, 0));
    }

    #[test]
    fn jitter_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            if let Op::Compute(d) = jittered_compute(&mut rng, 1_000_000, 0.1) {
                let ns = d.as_nanos();
                assert!((900_000..=1_100_000).contains(&ns), "jitter {ns} off");
            } else {
                panic!("jittered_compute must produce Compute");
            }
        }
    }
}
