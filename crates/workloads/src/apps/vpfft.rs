//! VPFFT proxy: all-to-alls separated by heavy, variable compute.
//!
//! Paper §II: "VPFFT performs expensive computation between two
//! communication phases … \[so it\] has some flexibility to overlap
//! communication and computation while FFTW has much less." Fig. 7 shows
//! VPFFT almost as network-sensitive as FFTW but with strong run-to-run
//! oscillation (132–263 % at 87 % utilization); the oscillation is modelled
//! with a wide compute jitter.

use anp_simmpi::{Op, Program};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::Layout;

/// VPFFT proxy parameters.
#[derive(Debug, Clone, Copy)]
pub struct VpfftParams {
    /// Bytes exchanged per peer per transpose (crystal-plasticity FFT
    /// fields are larger than FFTW's benchmark matrix).
    pub bytes_per_pair: u64,
    /// Mean CPU time of the constitutive-model update between transforms.
    pub compute_per_phase_ns: u64,
    /// Relative jitter of the compute phase (the source of the
    /// oscillating slowdowns the paper reports for VPFFT).
    pub compute_jitter: f64,
    /// Iterations per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for VpfftParams {
    fn default() -> Self {
        VpfftParams {
            bytes_per_pair: 4_096,
            compute_per_phase_ns: 250_000,
            compute_jitter: 0.45,
            iterations: 16,
        }
    }
}

/// Builds the VPFFT proxy job over `layout`.
pub fn build_vpfft(
    params: &VpfftParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = *params;
    let mode = match mode {
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..layout.ranks())
        .map(|local| {
            let program = IterativeProgram::new(
                format!("vpfft[{local}]"),
                rank_seed(seed, local),
                mode,
                move |_iter, rng| {
                    vec![
                        jittered_compute(rng, p.compute_per_phase_ns, p.compute_jitter),
                        Op::Alltoall {
                            bytes_per_pair: p.bytes_per_pair,
                        },
                        jittered_compute(rng, p.compute_per_phase_ns, p.compute_jitter),
                        Op::Alltoall {
                            bytes_per_pair: p.bytes_per_pair,
                        },
                    ]
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn small_vpfft_completes() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let layout = Layout::new(4, 2);
        let params = VpfftParams {
            bytes_per_pair: 128,
            compute_per_phase_ns: 50_000,
            compute_jitter: 0.3,
            iterations: 2,
        };
        let members = build_vpfft(&params, &layout, RunMode::Iterations(2), 7);
        let job = world.add_job("vpfft", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
    }

    #[test]
    fn vpfft_computes_more_than_fftw() {
        // The defining difference from FFTW: meaningful compute between
        // transposes. Verify the default parameterization keeps it so.
        let v = VpfftParams::default();
        let f = crate::apps::fftw::FftwParams::default();
        assert!(v.compute_per_phase_ns >= 4 * f.compute_per_phase_ns);
        assert!(v.compute_jitter > 0.2, "oscillation needs wide jitter");
    }
}
