//! FFTW proxy: 2-D FFT dominated by transpose all-to-alls.
//!
//! Paper §II: "FFTW … contains expensive all-to-all communications …
//! performs \[little\] computation between two communication phases", which
//! is why Fig. 7 shows it as the application most sensitive to reduced
//! switch capability. Each iteration models one 2-D transform: a row
//! transform, a transpose (alltoall), a column transform, and a second
//! transpose.

use anp_simmpi::{Op, Program};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::Layout;

/// FFTW proxy parameters.
#[derive(Debug, Clone, Copy)]
pub struct FftwParams {
    /// Bytes exchanged with each peer per transpose. For the paper's
    /// 2000×2000 double-precision matrix on 144 ranks, each transpose
    /// moves 32 MB total ≈ 1.5 KB per rank pair; the default rounds to one
    /// MTU-friendly value.
    pub bytes_per_pair: u64,
    /// CPU time of one 1-D transform phase per rank (small: FFTW's local
    /// FFTs are cheap relative to the transposes at this scale).
    pub compute_per_phase_ns: u64,
    /// Transforms per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for FftwParams {
    fn default() -> Self {
        FftwParams {
            bytes_per_pair: 1_024,
            compute_per_phase_ns: 40_000,
            iterations: 25,
        }
    }
}

/// Builds the FFTW proxy job over `layout`.
pub fn build_fftw(
    params: &FftwParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = *params;
    let mode = match mode {
        RunMode::Endless => RunMode::Endless,
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..layout.ranks())
        .map(|local| {
            let program = IterativeProgram::new(
                format!("fftw[{local}]"),
                rank_seed(seed, local),
                mode,
                move |_iter, rng| {
                    vec![
                        jittered_compute(rng, p.compute_per_phase_ns, 0.05),
                        Op::Alltoall {
                            bytes_per_pair: p.bytes_per_pair,
                        },
                        jittered_compute(rng, p.compute_per_phase_ns, 0.05),
                        Op::Alltoall {
                            bytes_per_pair: p.bytes_per_pair,
                        },
                    ]
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn small_fftw_completes() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let layout = Layout::new(4, 2);
        let params = FftwParams {
            bytes_per_pair: 256,
            compute_per_phase_ns: 10_000,
            iterations: 3,
        };
        let members = build_fftw(&params, &layout, RunMode::Iterations(3), 1);
        assert_eq!(members.len(), 8);
        let job = world.add_job("fftw", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        // 2 alltoalls × 3 iterations × 8 ranks × 7 peers messages.
        assert_eq!(world.fabric().stats().messages_sent, 2 * 3 * 8 * 7);
    }

    #[test]
    fn runtime_is_communication_dominated() {
        // The proxy must preserve FFTW's defining property: network time
        // dwarfs compute time.
        let mut world = World::new(SwitchConfig::cab().with_seed(2));
        let layout = Layout::cab_standard();
        let params = FftwParams {
            iterations: 2,
            ..FftwParams::default()
        };
        let members = build_fftw(&params, &layout, RunMode::Iterations(2), 1);
        let job = world.add_job("fftw", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(100))
            .completed());
        let runtime = world.job_finish_time(job).unwrap().as_secs_f64();
        let compute = 2.0 * 2.0 * params.compute_per_phase_ns as f64 / 1e9;
        assert!(
            runtime > 3.0 * compute,
            "runtime {runtime}s should dwarf compute {compute}s"
        );
    }
}
