//! The six application proxies of the paper's evaluation.

pub mod amg;
pub mod common;
pub mod fftw;
pub mod lulesh;
pub mod mcb;
pub mod milc;
pub mod vpfft;

pub use common::{IterativeProgram, RunMode};
