//! MCB proxy: Monte Carlo burnup transport.
//!
//! Paper §II: "MCB is a monte carlo simulation code, which means that it
//! does not have much communication and, therefore, its usage of the
//! interconnecting network is expected to be low." Fig. 7 confirms MCB is
//! almost insensitive (≤ 3.5 %) to switch capability — yet Fig. 3 shows it
//! produces a strong high-latency *tail* in probe packets. The proxy
//! reproduces both: long, highly variable compute spans (particle
//! histories), a small per-cycle ring exchange, and a periodic large burst
//! (particle rebalancing) that momentarily floods the switch.

use anp_simmpi::{Op, Program, Src};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::Layout;

/// MCB proxy parameters.
#[derive(Debug, Clone, Copy)]
pub struct McbParams {
    /// Mean CPU time of one tracking cycle (dominant cost).
    pub compute_ns: u64,
    /// Relative jitter of the tracking span (Monte Carlo variance).
    pub compute_jitter: f64,
    /// Bytes of the regular per-cycle neighbour exchange.
    pub msg_bytes: u64,
    /// Every `burst_every`-th cycle sends `burst_bytes` instead
    /// (rebalancing burst). Zero disables bursts.
    pub burst_every: u32,
    /// Bytes of the periodic rebalancing burst.
    pub burst_bytes: u64,
    /// An 8-byte tally allreduce runs every `allreduce_every` cycles.
    pub allreduce_every: u32,
    /// Cycles per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for McbParams {
    fn default() -> Self {
        McbParams {
            compute_ns: 5_000_000,
            compute_jitter: 0.40,
            msg_bytes: 16 * 1024,
            burst_every: 2,
            burst_bytes: 768 * 1024,
            allreduce_every: 10,
            iterations: 30,
        }
    }
}

/// Builds the MCB proxy job over `layout`: a ring exchange with the
/// neighbouring ranks plus the parameters' bursts and reductions.
pub fn build_mcb(
    params: &McbParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = *params;
    let n = layout.ranks();
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(n >= 2, "MCB needs at least 2 ranks");
    let mode = match mode {
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..n)
        .map(|local| {
            let succ = (local + 1) % n;
            let pred = (local + n - 1) % n;
            let program = IterativeProgram::new(
                format!("mcb[{local}]"),
                rank_seed(seed, local),
                mode,
                move |iter, rng| {
                    let mut ops = Vec::with_capacity(6);
                    ops.push(jittered_compute(rng, p.compute_ns, p.compute_jitter));
                    let bytes = if p.burst_every > 0 && (iter + 1) % p.burst_every == 0 {
                        p.burst_bytes
                    } else {
                        p.msg_bytes
                    };
                    ops.push(Op::Irecv {
                        src: Src::Rank(pred),
                        tag: 3,
                    });
                    ops.push(Op::Isend {
                        dst: succ,
                        bytes,
                        tag: 3,
                    });
                    ops.push(Op::WaitAll);
                    if p.allreduce_every > 0 && (iter + 1) % p.allreduce_every == 0 {
                        ops.push(Op::Allreduce { bytes: 8 });
                    }
                    ops
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn mcb_completes_with_bursts_and_reductions() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let layout = Layout::new(4, 2);
        let params = McbParams {
            compute_ns: 20_000,
            burst_every: 2,
            allreduce_every: 3,
            iterations: 6,
            ..McbParams::default()
        };
        let members = build_mcb(&params, &layout, RunMode::Iterations(6), 5);
        let job = world.add_job("mcb", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
    }

    #[test]
    fn network_volume_is_low_but_bursty() {
        let p = McbParams::default();
        // Average per-cycle traffic must be small next to compute, but the
        // burst must be large enough to visibly perturb probe latencies.
        let avg_bytes =
            (p.msg_bytes * (p.burst_every as u64 - 1) + p.burst_bytes) / p.burst_every as u64;
        let avg_comm_ns = avg_bytes as f64 / 5.0;
        assert!(
            avg_comm_ns * 10.0 < p.compute_ns as f64,
            "MCB must be compute-bound"
        );
        assert!(p.burst_bytes >= 16 * p.msg_bytes, "bursts must stand out");
    }
}
