//! MILC proxy: lattice QCD conjugate-gradient iterations.
//!
//! Paper §II: "MILC spends most of its time running the conjugate gradient
//! solver, which means that most of its communications involve point to
//! point communications with the neighbors and global reductions once in a
//! while." The lattice is four-dimensional (the paper runs
//! nx=16, ny=32, nz=32, nt=36), so the proxy exchanges halos with the
//! eight ±1 neighbours of a 4-D process torus, performs a short local
//! matrix application, and runs the CG iteration's two dot-product
//! reductions — many short latency-chained iterations, the intermediate
//! sensitivity regime Fig. 7 shows for MILC.

use anp_simmpi::{Op, Program, Src};
use anp_simnet::NodeId;

use crate::apps::common::{jittered_compute, rank_seed, IterativeProgram, RunMode};
use crate::placement::{torus4d_neighbors, Layout};

/// MILC proxy parameters.
#[derive(Debug, Clone, Copy)]
pub struct MilcParams {
    /// Process-torus dimensions (product must equal the rank count; every
    /// dimension ≥ 3).
    pub dims: [u32; 4],
    /// Bytes of one neighbour halo message (lattice surface data).
    pub neighbor_bytes: u64,
    /// Mean CPU time of one CG iteration's local matrix application.
    pub compute_ns: u64,
    /// Payload of each dot-product reduction.
    pub allreduce_bytes: u64,
    /// Dot-product reductions per CG iteration (CG has two).
    pub allreduces_per_iter: u32,
    /// CG iterations per run in [`RunMode::Iterations`] mode.
    pub iterations: u32,
}

impl Default for MilcParams {
    fn default() -> Self {
        MilcParams {
            dims: [3, 3, 4, 4],
            neighbor_bytes: 6 * 1024,
            compute_ns: 350_000,
            allreduce_bytes: 16,
            allreduces_per_iter: 2,
            iterations: 200,
        }
    }
}

/// Builds the MILC proxy job over `layout` (rank count must equal the
/// product of `dims`).
pub fn build_milc(
    params: &MilcParams,
    layout: &Layout,
    mode: RunMode,
    seed: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let p = *params;
    let n = layout.ranks();
    assert_eq!(
        n,
        p.dims.iter().product::<u32>(),
        "MILC needs dims whose product is the rank count (got {n} ranks for {:?})",
        p.dims
    );
    let mode = match mode {
        RunMode::Iterations(0) => RunMode::Iterations(p.iterations),
        m => m,
    };
    (0..n)
        .map(|local| {
            let neighbors = torus4d_neighbors(local, p.dims);
            let program = IterativeProgram::new(
                format!("milc[{local}]"),
                rank_seed(seed, local),
                mode,
                move |_iter, rng| {
                    let mut ops = Vec::with_capacity(neighbors.len() * 2 + 4);
                    for &nb in &neighbors {
                        ops.push(Op::Irecv {
                            src: Src::Rank(nb),
                            tag: 2,
                        });
                        ops.push(Op::Isend {
                            dst: nb,
                            bytes: p.neighbor_bytes,
                            tag: 2,
                        });
                    }
                    ops.push(Op::WaitAll);
                    ops.push(jittered_compute(rng, p.compute_ns, 0.06));
                    for _ in 0..p.allreduces_per_iter {
                        ops.push(Op::Allreduce {
                            bytes: p.allreduce_bytes,
                        });
                    }
                    ops
                },
            );
            (Box::new(program) as Box<dyn Program>, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn milc_torus_completes() {
        let mut world = World::new(SwitchConfig::cab().with_seed(4));
        let layout = Layout::new(9, 9); // 81 ranks = 3×3×3×3
        let params = MilcParams {
            dims: [3, 3, 3, 3],
            neighbor_bytes: 512,
            compute_ns: 10_000,
            allreduce_bytes: 16,
            allreduces_per_iter: 2,
            iterations: 3,
        };
        let members = build_milc(&params, &layout, RunMode::Iterations(3), 11);
        let job = world.add_job("milc", members);
        assert!(world
            .run_until_job_done(job, SimTime::from_secs(10))
            .completed());
        // Halo traffic: 81 ranks × 8 neighbours × 3 iterations, plus the
        // lowered allreduce point-to-points on top.
        assert!(world.fabric().stats().messages_sent >= 81 * 8 * 3);
    }

    #[test]
    fn default_dims_tile_the_standard_layout() {
        let p = MilcParams::default();
        assert_eq!(
            p.dims.iter().product::<u32>(),
            Layout::cab_standard().ranks(),
            "144 must tile as 3×3×4×4"
        );
        assert_eq!(p.allreduces_per_iter, 2, "CG does two dot products");
    }

    #[test]
    #[should_panic(expected = "dims whose product")]
    fn mismatched_dims_panic() {
        let layout = Layout::new(5, 2); // 10 ranks
        build_milc(&MilcParams::default(), &layout, RunMode::Endless, 0);
    }
}
