//! The application registry: one entry per paper application, with the
//! paper's layouts and default parameters.

use anp_simmpi::Program;
use anp_simnet::NodeId;

use crate::apps::amg::{build_amg, AmgParams};
use crate::apps::common::RunMode;
use crate::apps::fftw::{build_fftw, FftwParams};
use crate::apps::lulesh::{build_lulesh, LuleshParams};
use crate::apps::mcb::{build_mcb, McbParams};
use crate::apps::milc::{build_milc, MilcParams};
use crate::apps::vpfft::{build_vpfft, VpfftParams};
use crate::placement::Layout;

/// The six applications of the paper's evaluation (§II), in the order of
/// Table I / Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AppKind {
    /// FFTW — 2-D FFT, all-to-all dominated.
    Fftw,
    /// Lulesh — shock hydrodynamics, stencil + heavy compute.
    Lulesh,
    /// MCB — Monte Carlo burnup, compute-dominated with bursts.
    Mcb,
    /// MILC — lattice QCD conjugate gradient, latency-sensitive.
    Milc,
    /// VPFFT — crystal plasticity FFT, all-to-all + heavy compute.
    Vpfft,
    /// AMG — algebraic multigrid, phased behaviour.
    Amg,
}

impl AppKind {
    /// All applications in the paper's presentation order.
    pub const ALL: [AppKind; 6] = [
        AppKind::Fftw,
        AppKind::Lulesh,
        AppKind::Mcb,
        AppKind::Milc,
        AppKind::Vpfft,
        AppKind::Amg,
    ];

    /// Display name (paper's spelling).
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Fftw => "FFTW",
            AppKind::Lulesh => "Lulesh",
            AppKind::Mcb => "MCB",
            AppKind::Milc => "MILC",
            AppKind::Vpfft => "VPFFT",
            AppKind::Amg => "AMG",
        }
    }

    /// One-line communication skeleton, as shown by `anp apps` — what
    /// the proxy actually exercises on the switch, so a user picking an
    /// `<APP>` argument knows the traffic shape they are signing up for.
    pub fn skeleton(self) -> &'static str {
        match self {
            AppKind::Fftw => "2-D FFT, all-to-all dominated",
            AppKind::Lulesh => "shock hydrodynamics, stencil + heavy compute",
            AppKind::Mcb => "Monte Carlo burnup, compute-dominated with bursts",
            AppKind::Milc => "lattice QCD conjugate gradient, latency-sensitive",
            AppKind::Vpfft => "crystal plasticity FFT, all-to-all + heavy compute",
            AppKind::Amg => "algebraic multigrid, phased behaviour",
        }
    }

    /// Parses a case-insensitive application name.
    pub fn from_name(name: &str) -> Option<AppKind> {
        AppKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(name))
    }

    /// The paper's rank layout for this application: 144 ranks on 18 nodes
    /// for everything except Lulesh, which needs a cubic count and runs 64
    /// ranks on 16 nodes.
    pub fn layout(self) -> Layout {
        match self {
            AppKind::Lulesh => Layout::cab_lulesh(),
            _ => Layout::cab_standard(),
        }
    }

    /// Builds the proxy application with its default parameters.
    pub fn build(self, mode: RunMode, seed: u64) -> Vec<(Box<dyn Program>, NodeId)> {
        let layout = self.layout();
        match self {
            AppKind::Fftw => build_fftw(&FftwParams::default(), &layout, mode, seed),
            AppKind::Vpfft => build_vpfft(&VpfftParams::default(), &layout, mode, seed),
            AppKind::Lulesh => build_lulesh(&LuleshParams::default(), &layout, mode, seed),
            AppKind::Milc => build_milc(&MilcParams::default(), &layout, mode, seed),
            AppKind::Mcb => build_mcb(&McbParams::default(), &layout, mode, seed),
            AppKind::Amg => build_amg(&AmgParams::default(), &layout, mode, seed),
        }
    }
}

impl std::fmt::Display for AppKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_apps_with_unique_names() {
        let mut names: Vec<&str> = AppKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn every_app_has_a_nonempty_skeleton() {
        for k in AppKind::ALL {
            assert!(!k.skeleton().is_empty(), "{k}");
        }
    }

    #[test]
    fn name_roundtrip() {
        for k in AppKind::ALL {
            assert_eq!(AppKind::from_name(k.name()), Some(k));
            assert_eq!(AppKind::from_name(&k.name().to_lowercase()), Some(k));
        }
        assert_eq!(AppKind::from_name("nosuch"), None);
    }

    #[test]
    fn layouts_match_paper() {
        for k in AppKind::ALL {
            let l = k.layout();
            if k == AppKind::Lulesh {
                assert_eq!(l.ranks(), 64);
                assert_eq!(l.nodes, 16);
            } else {
                assert_eq!(l.ranks(), 144);
                assert_eq!(l.nodes, 18);
            }
        }
    }

    #[test]
    fn every_app_builds_a_full_job() {
        for k in AppKind::ALL {
            let members = k.build(RunMode::Iterations(1), 7);
            assert_eq!(members.len(), k.layout().ranks() as usize, "{k}");
        }
    }
}
