//! CompressionB: the heavy traffic-injection micro-benchmark (paper
//! §III-B, Fig. 5).
//!
//! Processes with the same core id on different nodes form a ring. Each
//! iteration, every process exchanges `M` messages of 40 KB with each of
//! `P` partners (receive from the successor side, send to the predecessor
//! side), sleeps for `B` CPU cycles after each partner's burst, and finally
//! waits for everything. Different `(P, M, B)` settings remove different
//! fractions of switch capability from a co-running application — the
//! paper's software stand-in for "a less capable switch".

use anp_simmpi::{Looping, Op, Program, Src};
use anp_simnet::{NodeId, SimDuration};

use crate::placement::Layout;

/// One CompressionB input configuration.
///
/// ```
/// use anp_workloads::CompressionConfig;
///
/// let sweep = CompressionConfig::paper_sweep();
/// assert_eq!(sweep.len(), 40); // the paper's §IV-C sweep
/// let heavy = CompressionConfig::new(17, 25_000, 10);
/// assert_eq!(heavy.label(), "P17-B2.5e4-M10");
/// assert_eq!(heavy.bytes_per_iteration(), 17 * 10 * 40 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionConfig {
    /// Number of ring partners `P` each process exchanges with.
    pub partners: u32,
    /// Messages per partner per iteration `M`.
    pub messages: u32,
    /// Bubble: cycles slept after each partner's burst `B` (converted at
    /// the fabric's CPU clock).
    pub bubble_cycles: u64,
    /// Message size; the paper uses 40 KB.
    pub msg_bytes: u64,
    /// Match tag for the benchmark's traffic.
    pub tag: u32,
}

impl CompressionConfig {
    /// A configuration with the paper's fixed message size and a chosen
    /// `(P, B, M)` triple.
    pub fn new(partners: u32, bubble_cycles: u64, messages: u32) -> Self {
        CompressionConfig {
            partners,
            messages,
            bubble_cycles,
            msg_bytes: 40 * 1024,
            tag: 9_101,
        }
    }

    /// The paper's full 40-configuration sweep (§IV-C): `P ∈ {1, 4, 7, 14,
    /// 17}`, `B ∈ {2.5e4, 2.5e5, 2.5e6, 2.5e7}` cycles, `M ∈ {1, 10}`,
    /// covering roughly 25–95 % switch utilization on Cab.
    pub fn paper_sweep() -> Vec<CompressionConfig> {
        let mut out = Vec::with_capacity(40);
        for &m in &[1u32, 10] {
            for &b in &[25_000u64, 250_000, 2_500_000, 25_000_000] {
                for &p in &[1u32, 4, 7, 14, 17] {
                    out.push(CompressionConfig::new(p, b, m));
                }
            }
        }
        out
    }

    /// The four-rung utilization ladder shared by the CLI's gated paths,
    /// the scheduling study, and the monitor study: one rung per
    /// utilization regime, light to near-saturation.
    pub fn gated_ladder() -> Vec<CompressionConfig> {
        vec![
            CompressionConfig::new(1, 25_000_000, 1),
            CompressionConfig::new(7, 2_500_000, 10),
            CompressionConfig::new(14, 250_000, 1),
            CompressionConfig::new(17, 25_000, 10),
        ]
    }

    /// A short human-readable label, e.g. `P14-B2.5e5-M10`.
    pub fn label(&self) -> String {
        format!(
            "P{}-B{:.1e}-M{}",
            self.partners, self.bubble_cycles as f64, self.messages
        )
    }

    /// Bytes injected per process per iteration.
    pub fn bytes_per_iteration(&self) -> u64 {
        self.partners as u64 * self.messages as u64 * self.msg_bytes
    }
}

/// Builds one CompressionB process's iteration body (job-local ranks).
///
/// `local` is the process's job-local rank under `layout` (node-major);
/// its ring consists of the ranks with the same core id, ordered by node.
fn iteration_body(cfg: &CompressionConfig, layout: &Layout, local: u32, cpu_hz: u64) -> Vec<Op> {
    let nodes = layout.nodes;
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(
        cfg.partners < nodes,
        "P={} partners need at least {} nodes in the ring",
        cfg.partners,
        cfg.partners + 1
    );
    let node = layout.node_index_of(local);
    let core = layout.core_of(local);
    let bubble = SimDuration::from_cycles(cfg.bubble_cycles, cpu_hz);
    let mut ops = Vec::with_capacity((cfg.partners * cfg.messages * 2 + cfg.partners + 1) as usize);
    for p in 0..cfg.partners {
        let succ = layout.rank_at((node + p + 1) % nodes, core);
        let pred = layout.rank_at((node + nodes - (p + 1)) % nodes, core);
        for _ in 0..cfg.messages {
            // Fig. 5: receive from the same core id on the succeeding
            // node, send to the same core id on the preceding node.
            ops.push(Op::Irecv {
                src: Src::Rank(succ),
                tag: cfg.tag,
            });
            ops.push(Op::Isend {
                dst: pred,
                bytes: cfg.msg_bytes,
                tag: cfg.tag,
            });
        }
        ops.push(Op::Sleep(bubble));
    }
    ops.push(Op::WaitAll);
    ops
}

/// Builds the CompressionB job: `per_node` processes on each of `nodes`
/// nodes (the paper pins one per socket, i.e. 2), looping forever.
///
/// `cpu_hz` converts the bubble parameter from cycles to time; pass the
/// fabric's configured clock.
pub fn build_compressionb(
    cfg: &CompressionConfig,
    nodes: u32,
    per_node: u32,
    cpu_hz: u64,
) -> Vec<(Box<dyn Program>, NodeId)> {
    let layout = Layout::new(nodes, per_node);
    (0..layout.ranks())
        .map(|local| {
            let body = iteration_body(cfg, &layout, local, cpu_hz);
            let program: Box<dyn Program> =
                Box::new(Looping::new(body).named(format!("compressionb-{}", cfg.label())));
            (program, layout.node_of(local))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::{SimTime, SwitchConfig};

    #[test]
    fn paper_sweep_has_40_configs() {
        let sweep = CompressionConfig::paper_sweep();
        assert_eq!(sweep.len(), 40);
        // All distinct.
        for (i, a) in sweep.iter().enumerate() {
            for b in &sweep[i + 1..] {
                assert_ne!(a, b);
            }
        }
        // Parameter ranges match §IV-C.
        assert!(sweep
            .iter()
            .all(|c| [1, 4, 7, 14, 17].contains(&c.partners)));
        assert!(sweep.iter().all(|c| [1, 10].contains(&c.messages)));
        assert!(sweep.iter().all(|c| c.msg_bytes == 40 * 1024));
    }

    #[test]
    fn labels_are_unique() {
        let sweep = CompressionConfig::paper_sweep();
        let mut labels: Vec<String> = sweep.iter().map(|c| c.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 40);
    }

    #[test]
    fn body_structure_matches_pseudocode() {
        let cfg = CompressionConfig::new(3, 1_000, 2);
        let layout = Layout::new(6, 2);
        let body = iteration_body(&cfg, &layout, 0, 1_000_000_000);
        let sends = body
            .iter()
            .filter(|o| matches!(o, Op::Isend { .. }))
            .count();
        let recvs = body
            .iter()
            .filter(|o| matches!(o, Op::Irecv { .. }))
            .count();
        let sleeps = body.iter().filter(|o| matches!(o, Op::Sleep(_))).count();
        let waits = body.iter().filter(|o| matches!(o, Op::WaitAll)).count();
        assert_eq!(sends, 6, "P*M sends");
        assert_eq!(recvs, 6, "P*M recvs");
        assert_eq!(sleeps, 3, "one bubble per partner");
        assert_eq!(waits, 1, "single trailing waitall");
        assert_eq!(*body.last().unwrap(), Op::WaitAll);
    }

    #[test]
    fn ring_partners_stay_on_same_core_id() {
        let cfg = CompressionConfig::new(2, 1_000, 1);
        let layout = Layout::new(4, 2);
        // Rank 1 = node 0 core 1; its partners must be core 1 ranks.
        let body = iteration_body(&cfg, &layout, 1, 1_000_000_000);
        for op in &body {
            match op {
                Op::Isend { dst, .. } => assert_eq!(layout.core_of(*dst), 1),
                Op::Irecv {
                    src: Src::Rank(s), ..
                } => assert_eq!(layout.core_of(*s), 1),
                _ => {}
            }
        }
    }

    #[test]
    #[should_panic(expected = "partners need")]
    fn too_many_partners_panics() {
        let cfg = CompressionConfig::new(4, 1_000, 1);
        let layout = Layout::new(4, 2);
        iteration_body(&cfg, &layout, 0, 1_000_000_000);
    }

    #[test]
    fn rings_exchange_traffic_without_deadlock() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let cfg = CompressionConfig {
            msg_bytes: 2_048,
            ..CompressionConfig::new(2, 10_000, 2)
        };
        let members = build_compressionb(&cfg, 4, 2, 1_000_000_000);
        assert_eq!(members.len(), 8);
        world.add_job("compressionb", members);
        world.run_until(SimTime::from_millis(5));
        let sent = world.fabric().stats().messages_sent;
        assert!(sent > 100, "ring must keep moving, sent={sent}");
        // Conservation: everything sent long enough ago was delivered.
        let delivered = world.fabric().stats().messages_delivered;
        assert!(delivered as f64 >= sent as f64 * 0.8);
    }

    #[test]
    fn heavier_configs_inject_more_bytes() {
        let light = CompressionConfig::new(1, 25_000_000, 1);
        let heavy = CompressionConfig::new(17, 25_000, 10);
        assert!(heavy.bytes_per_iteration() > light.bytes_per_iteration() * 100);
    }
}
