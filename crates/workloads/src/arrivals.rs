//! Seeded job arrival streams for the co-scheduling study.
//!
//! The `anp-sched` crate simulates a batch scheduler placing a stream of
//! jobs onto a pool of switches. The stream itself lives here, next to
//! the application proxies it draws from: a [`JobSpec`] names an
//! application, an arrival time, a size (work multiplier relative to one
//! solo run), and an optional slowdown SLO; [`StreamConfig::generate`]
//! expands a seed into a reproducible stream. Generation is pure —
//! the same configuration always yields the same byte-identical stream,
//! which is what lets the scheduler's determinism tests pin schedule
//! tables across worker counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::registry::AppKind;

/// One job in an arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Stream-unique id, in arrival order (ties broken by id).
    pub id: u32,
    /// Which application proxy the job runs.
    pub app: AppKind,
    /// Arrival time, in microseconds from stream start.
    pub arrival_us: u64,
    /// Work multiplier relative to one solo run of `app` (a job of size
    /// 2.0 holds its slot twice as long as a solo run).
    pub size: f64,
    /// Optional service-level objective: the maximum acceptable realized
    /// slowdown, as a fraction of the solo runtime (0.5 = "no more than
    /// 50 % slower than running alone, queueing included"). `None` means
    /// best-effort.
    pub slo_slowdown: Option<f64>,
}

/// Configuration of a seeded arrival stream.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// Seed for the stream's private RNG.
    pub seed: u64,
    /// Number of jobs to generate.
    pub jobs: u32,
    /// Mean of the exponential interarrival gap, in microseconds.
    pub mean_interarrival_us: f64,
    /// The applications jobs are drawn from (uniformly).
    pub apps: Vec<AppKind>,
    /// Job sizes are drawn uniformly from this range.
    pub size_range: (f64, f64),
    /// Fraction of jobs carrying a slowdown SLO.
    pub slo_fraction: f64,
    /// The SLO attached to that fraction (max fractional slowdown).
    pub slo_slowdown: f64,
}

impl StreamConfig {
    /// A stream over all six paper applications with mean interarrival
    /// `mean_us` µs and sizes in [0.5, 2.0]; a quarter of the jobs carry
    /// a 50 % slowdown SLO.
    pub fn uniform(seed: u64, jobs: u32, mean_us: f64) -> Self {
        StreamConfig {
            seed,
            jobs,
            mean_interarrival_us: mean_us,
            apps: AppKind::ALL.to_vec(),
            size_range: (0.5, 2.0),
            slo_fraction: 0.25,
            slo_slowdown: 0.5,
        }
    }

    /// Expands the configuration into its job stream, sorted by arrival
    /// time (ids break ties). Deterministic in the configuration: equal
    /// configs generate equal streams.
    pub fn generate(&self) -> Vec<JobSpec> {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(!self.apps.is_empty(), "stream needs at least one app");
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(
            self.size_range.0 > 0.0 && self.size_range.1 >= self.size_range.0,
            "size range must be positive and ordered"
        );
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0xA11C_A115_7EA3_0001);
        let mut clock_us = 0u64;
        let mut out = Vec::with_capacity(self.jobs as usize);
        for id in 0..self.jobs {
            // Exponential interarrival gap by inverse-CDF; clamp the
            // uniform away from 1.0 so ln stays finite.
            let u: f64 = rng.gen::<f64>().min(1.0 - 1e-12);
            let gap = -(1.0 - u).ln() * self.mean_interarrival_us;
            clock_us = clock_us.saturating_add(gap.round() as u64);
            let app = self.apps[rng.gen_range(0..self.apps.len())];
            let size = if self.size_range.0 == self.size_range.1 {
                self.size_range.0
            } else {
                rng.gen_range(self.size_range.0..self.size_range.1)
            };
            let slo: f64 = rng.gen();
            out.push(JobSpec {
                id,
                app,
                arrival_us: clock_us,
                size,
                slo_slowdown: (slo < self.slo_fraction).then_some(self.slo_slowdown),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_deterministic() {
        let cfg = StreamConfig::uniform(42, 64, 1000.0);
        let a = cfg.generate();
        let b = cfg.generate();
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn different_seeds_differ() {
        let a = StreamConfig::uniform(1, 32, 1000.0).generate();
        let b = StreamConfig::uniform(2, 32, 1000.0).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn arrivals_are_sorted_and_sized() {
        let cfg = StreamConfig::uniform(7, 128, 500.0);
        let jobs = cfg.generate();
        for w in jobs.windows(2) {
            assert!(w[0].arrival_us <= w[1].arrival_us, "sorted by arrival");
            assert!(w[0].id < w[1].id, "ids in arrival order");
        }
        for j in &jobs {
            assert!(j.size >= 0.5 && j.size <= 2.0);
            if let Some(s) = j.slo_slowdown {
                assert_eq!(s, 0.5);
            }
        }
        // With slo_fraction 0.25 over 128 jobs, some but not all carry SLOs.
        let with_slo = jobs.iter().filter(|j| j.slo_slowdown.is_some()).count();
        assert!(with_slo > 0 && with_slo < jobs.len());
    }

    #[test]
    fn mean_gap_tracks_config() {
        let cfg = StreamConfig::uniform(11, 2000, 1000.0);
        let jobs = cfg.generate();
        let last = jobs.last().unwrap().arrival_us as f64;
        let mean = last / jobs.len() as f64;
        assert!(
            (mean - 1000.0).abs() < 150.0,
            "empirical mean gap {mean} should be near 1000"
        );
    }
}
