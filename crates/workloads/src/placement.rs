//! Rank-to-node placement and process-grid topology helpers.
//!
//! The paper's experiments use a fixed mapping (§III-A): ranks are laid out
//! node-major (consecutive ranks fill a node before spilling to the next),
//! 18 dual-socket nodes per switch, with micro-benchmark processes pinned
//! one per socket. This module reproduces that layout and provides the
//! torus neighbourhoods the application proxies communicate over.

use anp_simnet::NodeId;

/// A job's node layout: `per_node` consecutive ranks on each of `nodes`
/// nodes starting at `base_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Number of nodes the job spans.
    pub nodes: u32,
    /// Ranks per node.
    pub per_node: u32,
    /// First node index used.
    pub base_node: u32,
}

impl Layout {
    /// Builds a layout.
    pub fn new(nodes: u32, per_node: u32) -> Self {
        Layout {
            nodes,
            per_node,
            base_node: 0,
        }
    }

    /// The paper's standard application layout: 8 ranks on each of the 18
    /// nodes of one switch (4 per socket), 144 ranks total.
    pub fn cab_standard() -> Self {
        Layout::new(18, 8)
    }

    /// The paper's Lulesh layout: Lulesh needs a cubic rank count, so it
    /// runs 64 ranks on 16 nodes (2 per socket).
    pub fn cab_lulesh() -> Self {
        Layout::new(16, 4)
    }

    /// The paper's micro-benchmark layout: one process per socket, so 2 on
    /// each of the 18 nodes.
    pub fn cab_probes() -> Self {
        Layout::new(18, 2)
    }

    /// Total ranks.
    pub fn ranks(&self) -> u32 {
        self.nodes * self.per_node
    }

    /// Node hosting job-local rank `r` (node-major layout).
    pub fn node_of(&self, r: u32) -> NodeId {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(r < self.ranks(), "rank {r} out of layout");
        NodeId(self.base_node + r / self.per_node)
    }

    /// Node index (0-based within the job) of rank `r`.
    pub fn node_index_of(&self, r: u32) -> u32 {
        r / self.per_node
    }

    /// Core index of rank `r` within its node.
    pub fn core_of(&self, r: u32) -> u32 {
        r % self.per_node
    }

    /// The rank living on node-index `node` (within the job) at `core`.
    pub fn rank_at(&self, node: u32, core: u32) -> u32 {
        // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
        assert!(node < self.nodes && core < self.per_node);
        node * self.per_node + core
    }

    /// The node assignment vector for all ranks.
    pub fn node_vector(&self) -> Vec<NodeId> {
        (0..self.ranks()).map(|r| self.node_of(r)).collect()
    }
}

/// Neighbours of `rank` on a periodic 2-D torus of `w × h` ranks
/// (row-major), in order −x, +x, −y, +y.
pub fn torus2d_neighbors(rank: u32, w: u32, h: u32) -> [u32; 4] {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(rank < w * h, "rank off the torus");
    let x = rank % w;
    let y = rank / w;
    let xm = (x + w - 1) % w;
    let xp = (x + 1) % w;
    let ym = (y + h - 1) % h;
    let yp = (y + 1) % h;
    [y * w + xm, y * w + xp, ym * w + x, yp * w + x]
}

/// Neighbours of `rank` on a periodic 4-D torus with dimensions `dims`
/// (row-major, x fastest): the ±1 neighbour in each dimension, in order
/// −x, +x, −y, +y, −z, +z, −t, +t. Every dimension must be ≥ 3 so the
/// eight neighbours are distinct.
pub fn torus4d_neighbors(rank: u32, dims: [u32; 4]) -> [u32; 8] {
    let n: u32 = dims.iter().product();
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(rank < n, "rank off the torus");
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(dims.iter().all(|&d| d >= 3), "all dims must be >= 3");
    let mut coord = [0u32; 4];
    let mut rest = rank;
    for (c, d) in coord.iter_mut().zip(dims) {
        *c = rest % d;
        rest /= d;
    }
    let index = |coord: [u32; 4]| -> u32 {
        let mut idx = 0;
        let mut stride = 1;
        for (c, d) in coord.iter().zip(dims) {
            idx += c * stride;
            stride *= d;
        }
        idx
    };
    let mut out = [0u32; 8];
    for dim in 0..4 {
        for (slot, delta) in [(2 * dim, dims[dim] - 1), (2 * dim + 1, 1)] {
            let mut c = coord;
            c[dim] = (c[dim] + delta) % dims[dim];
            out[slot] = index(c);
        }
    }
    out
}

/// Full 26-point neighbourhood of `rank` on a periodic 3-D torus of
/// `d × d × d` ranks, split by stencil class:
/// returns (6 face neighbours, 12 edge neighbours, 8 corner neighbours).
pub fn torus3d_neighbors(rank: u32, d: u32) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(rank < d * d * d, "rank off the torus");
    let x = (rank % d) as i64;
    let y = ((rank / d) % d) as i64;
    let z = (rank / (d * d)) as i64;
    let dd = d as i64;
    let wrap = |v: i64| ((v % dd + dd) % dd) as u32;
    let idx = |x: i64, y: i64, z: i64| wrap(z) * d * d + wrap(y) * d + wrap(x);

    let mut faces = Vec::with_capacity(6);
    let mut edges = Vec::with_capacity(12);
    let mut corners = Vec::with_capacity(8);
    for dz in -1i64..=1 {
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nonzero = [dx, dy, dz].iter().filter(|v| **v != 0).count();
                let n = idx(x + dx, y + dy, z + dz);
                match nonzero {
                    0 => {}
                    1 => faces.push(n),
                    2 => edges.push(n),
                    3 => corners.push(n),
                    _ => unreachable!(),
                }
            }
        }
    }
    (faces, edges, corners)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn cab_layouts_match_paper() {
        assert_eq!(Layout::cab_standard().ranks(), 144);
        assert_eq!(Layout::cab_lulesh().ranks(), 64);
        assert_eq!(Layout::cab_probes().ranks(), 36);
    }

    #[test]
    fn node_major_assignment() {
        let l = Layout::new(3, 4);
        assert_eq!(l.node_of(0), NodeId(0));
        assert_eq!(l.node_of(3), NodeId(0));
        assert_eq!(l.node_of(4), NodeId(1));
        assert_eq!(l.node_of(11), NodeId(2));
        assert_eq!(l.core_of(5), 1);
        assert_eq!(l.rank_at(1, 1), 5);
        assert_eq!(l.node_vector().len(), 12);
    }

    #[test]
    fn base_node_offsets_assignments() {
        let mut l = Layout::new(2, 2);
        l.base_node = 5;
        assert_eq!(l.node_of(0), NodeId(5));
        assert_eq!(l.node_of(3), NodeId(6));
    }

    #[test]
    #[should_panic(expected = "out of layout")]
    fn rank_out_of_layout_panics() {
        Layout::new(2, 2).node_of(4);
    }

    #[test]
    fn torus2d_known_values() {
        // 3x3 torus, center rank 4 has neighbours 3, 5, 1, 7.
        assert_eq!(torus2d_neighbors(4, 3, 3), [3, 5, 1, 7]);
        // Corner rank 0 wraps.
        assert_eq!(torus2d_neighbors(0, 3, 3), [2, 1, 6, 3]);
    }

    #[test]
    fn torus3d_stencil_sizes() {
        let (f, e, c) = torus3d_neighbors(0, 4);
        assert_eq!(f.len(), 6);
        assert_eq!(e.len(), 12);
        assert_eq!(c.len(), 8);
        // All distinct for d ≥ 3.
        let all: HashSet<u32> = f.iter().chain(&e).chain(&c).copied().collect();
        assert_eq!(all.len(), 26);
        assert!(!all.contains(&0), "self is not a neighbour");
    }

    #[test]
    fn torus4d_neighbors_distinct_and_symmetric() {
        let dims = [3, 3, 4, 4];
        let n: u32 = dims.iter().product();
        for r in 0..n {
            let nb = torus4d_neighbors(r, dims);
            let set: HashSet<u32> = nb.iter().copied().collect();
            assert_eq!(set.len(), 8, "rank {r} has duplicate neighbours");
            assert!(!set.contains(&r));
            for m in nb {
                assert!(
                    torus4d_neighbors(m, dims).contains(&r),
                    "asymmetric neighbourhood {r} vs {m}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "dims must be >= 3")]
    fn torus4d_rejects_thin_dims() {
        torus4d_neighbors(0, [2, 3, 3, 3]);
    }

    proptest! {
        /// 2-D torus neighbourhood is symmetric: if b is a neighbour of a,
        /// a is a neighbour of b.
        #[test]
        fn prop_torus2d_symmetric(w in 2u32..8, h in 2u32..8, r in 0u32..64) {
            prop_assume!(r < w * h);
            for n in torus2d_neighbors(r, w, h) {
                let back = torus2d_neighbors(n, w, h);
                prop_assert!(back.contains(&r));
            }
        }

        /// 3-D torus: face neighbourhood is symmetric.
        #[test]
        fn prop_torus3d_symmetric(d in 3u32..5, r in 0u32..125) {
            prop_assume!(r < d * d * d);
            let (faces, edges, corners) = torus3d_neighbors(r, d);
            for n in faces.iter().chain(&edges).chain(&corners) {
                let (f2, e2, c2) = torus3d_neighbors(*n, d);
                let all: Vec<u32> = f2.into_iter().chain(e2).chain(c2).collect();
                prop_assert!(all.contains(&r));
            }
        }

        /// Every rank maps to a node inside the layout's node range.
        #[test]
        fn prop_layout_in_range(nodes in 1u32..20, per_node in 1u32..16) {
            let l = Layout::new(nodes, per_node);
            for r in 0..l.ranks() {
                let n = l.node_of(r);
                prop_assert!(n.0 < nodes);
                prop_assert_eq!(l.rank_at(l.node_index_of(r), l.core_of(r)), r);
            }
        }
    }
}
