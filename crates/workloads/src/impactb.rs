//! ImpactB: the light latency-probe micro-benchmark (paper §III-A, Fig. 2).
//!
//! Compute nodes are paired; on each pair a pinger and a ponger exchange a
//! 1 KB message (one network packet) and the pinger records half the
//! round-trip time as the one-way packet latency. Exchanges are separated
//! by a long sleep so the probe's own load on the switch is negligible.
//! The distribution of these latencies is the paper's window into how much
//! switch capability a concurrently running application consumes.

use std::cell::RefCell;
use std::rc::Rc;

use anp_simmpi::{Ctx, Looping, Op, Program, Src};
use anp_simnet::{NodeId, SimDuration, SimTime};

use crate::placement::Layout;

/// One probe measurement: when the ping-pong completed and the one-way
/// latency it observed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProbeSample {
    /// Completion time of the exchange.
    pub at: SimTime,
    /// One-way latency (half the round trip), microseconds.
    pub one_way_us: f64,
}

/// Shared collector of probe samples.
pub type SampleSink = Rc<RefCell<Vec<ProbeSample>>>;

/// Job members as `World::add_job` expects them: program + node placement.
pub type Members = Vec<(Box<dyn Program>, NodeId)>;

/// Creates an empty sample sink.
pub fn new_sink() -> SampleSink {
    Rc::new(RefCell::new(Vec::new()))
}

/// Extracts just the latencies from a sink's samples, in collection
/// order.
pub fn latencies(samples: &[ProbeSample]) -> Vec<f64> {
    samples.iter().map(|s| s.one_way_us).collect()
}

/// ImpactB parameters.
#[derive(Debug, Clone)]
pub struct ImpactConfig {
    /// Probe message size. The paper uses 1 KB so each probe is a single
    /// network packet.
    pub msg_bytes: u64,
    /// Idle time between consecutive ping-pong exchanges. The paper uses
    /// 100 ms on wall-clock hardware; simulations default shorter so a few
    /// hundred samples fit into a few simulated seconds while probe load
    /// stays well under 1 % of switch capacity.
    pub period: SimDuration,
    /// Probe process pairs per node pair (the paper runs one per socket,
    /// i.e. 2).
    pub pairs_per_node: u32,
    /// Match tag used by probe traffic.
    pub tag: u32,
}

impl Default for ImpactConfig {
    fn default() -> Self {
        ImpactConfig {
            msg_bytes: 1024,
            period: SimDuration::from_millis(2),
            pairs_per_node: 2,
            tag: 9_001,
        }
    }
}

/// The pinging side of one probe pair.
struct Pinger {
    partner: u32,
    bytes: u64,
    period: SimDuration,
    tag: u32,
    sink: SampleSink,
    t0: SimTime,
    step: u8,
    /// Initial offset so concurrent probe pairs do not fire in lock-step
    /// and contend with each other at the switch (which would bias the
    /// idle-latency baseline upward).
    start_delay: SimDuration,
    started: bool,
}

impl Program for Pinger {
    fn next_op(&mut self, ctx: &Ctx) -> Op {
        if !self.started {
            self.started = true;
            if self.start_delay > SimDuration::ZERO {
                return Op::Sleep(self.start_delay);
            }
        }
        match self.step {
            0 => {
                self.t0 = ctx.now;
                self.step = 1;
                Op::Isend {
                    dst: self.partner,
                    bytes: self.bytes,
                    tag: self.tag,
                }
            }
            1 => {
                self.step = 2;
                Op::Irecv {
                    src: Src::Rank(self.partner),
                    tag: self.tag,
                }
            }
            2 => {
                self.step = 3;
                Op::WaitAll
            }
            _ => {
                // The round trip completed when WaitAll returned; half of
                // it approximates the one-way packet latency, as in the
                // paper ("the entire exchange is timed by the initiator to
                // determine the average latency of the two messages").
                let rtt = ctx.now.since(self.t0);
                self.sink.borrow_mut().push(ProbeSample {
                    at: ctx.now,
                    one_way_us: rtt.as_micros_f64() / 2.0,
                });
                self.step = 0;
                Op::Sleep(self.period)
            }
        }
    }

    fn name(&self) -> &str {
        "impactb-ping"
    }
}

/// Builds the ponger side: receive, reply, forever.
fn ponger(partner: u32, bytes: u64, tag: u32) -> Looping {
    Looping::new(vec![
        Op::Irecv {
            src: Src::Rank(partner),
            tag,
        },
        Op::WaitAll,
        Op::Isend {
            dst: partner,
            bytes,
            tag,
        },
        Op::WaitAll,
    ])
    .named("impactb-pong")
}

/// Builds the ImpactB job for a switch of `nodes` nodes.
///
/// Nodes are paired `(0,1), (2,3), …`; each pair runs
/// `cfg.pairs_per_node` ping-pong couples (one per socket on Cab). An odd
/// final node is left unused, as on real clusters. Returns the job members
/// (program + node placement, node-major) and the shared latency sink.
///
/// # Panics
/// Panics if fewer than two nodes are available.
pub fn build_impactb(cfg: &ImpactConfig, nodes: u32) -> (Members, SampleSink) {
    // anp-lint: allow(D003) — documented `# Panics` precondition on caller input; a bad value is a caller bug, not a runtime condition
    assert!(nodes >= 2, "ImpactB needs at least one node pair");
    let sink = new_sink();
    let layout = Layout::new(nodes - nodes % 2, cfg.pairs_per_node);
    let total_pairs = (layout.nodes / 2) * cfg.pairs_per_node;
    let mut members: Vec<(Box<dyn Program>, NodeId)> = Vec::new();
    let mut pair_idx = 0u32;
    for local in 0..layout.ranks() {
        let node_idx = layout.node_index_of(local);
        let core = layout.core_of(local);
        let node = layout.node_of(local);
        let program: Box<dyn Program> = if node_idx.is_multiple_of(2) {
            let partner = layout.rank_at(node_idx + 1, core);
            let start_delay = cfg.period * u64::from(pair_idx) / u64::from(total_pairs.max(1));
            pair_idx += 1;
            Box::new(Pinger {
                partner,
                bytes: cfg.msg_bytes,
                period: cfg.period,
                tag: cfg.tag,
                sink: Rc::clone(&sink),
                t0: SimTime::ZERO,
                step: 0,
                start_delay,
                started: false,
            })
        } else {
            let partner = layout.rank_at(node_idx - 1, core);
            Box::new(ponger(partner, cfg.msg_bytes, cfg.tag))
        };
        members.push((program, node));
    }
    (members, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use anp_simmpi::World;
    use anp_simnet::SwitchConfig;

    #[test]
    fn default_config_matches_paper_probe() {
        let cfg = ImpactConfig::default();
        assert_eq!(cfg.msg_bytes, 1024, "1 KB probes = one packet");
        assert_eq!(cfg.pairs_per_node, 2, "one probe per socket");
    }

    #[test]
    fn builder_places_pairs_on_adjacent_nodes() {
        let (members, _) = build_impactb(&ImpactConfig::default(), 4);
        // 4 nodes × 2 per node = 8 ranks.
        assert_eq!(members.len(), 8);
        assert_eq!(members[0].1, NodeId(0));
        assert_eq!(members[2].1, NodeId(1));
        assert_eq!(members[7].1, NodeId(3));
    }

    #[test]
    fn odd_node_is_left_out() {
        let (members, _) = build_impactb(&ImpactConfig::default(), 5);
        assert_eq!(members.len(), 8, "the 5th node hosts no probe");
    }

    #[test]
    fn probes_collect_latency_samples_on_idle_switch() {
        let mut world = World::new(SwitchConfig::tiny_deterministic());
        let cfg = ImpactConfig {
            period: SimDuration::from_micros(50),
            pairs_per_node: 1,
            ..ImpactConfig::default()
        };
        let (members, sink) = build_impactb(&cfg, 4);
        world.add_job("impactb", members);
        world.run_until(SimTime::from_millis(2));
        let samples = sink.borrow();
        assert!(
            samples.len() > 50,
            "expected steady sampling, got {}",
            samples.len()
        );
        // tiny_deterministic one-way for 1 KB: 1024 (nic) + 100 + 200 +
        // 1024 + 100 = 2448 ns ≈ 2.448 µs; RTT/2 equals one-way on an
        // idle deterministic switch.
        let mut last_at = SimTime::ZERO;
        for s in samples.iter() {
            assert!(
                (s.one_way_us - 2.448).abs() < 0.1,
                "latency sample {} off",
                s.one_way_us
            );
            assert!(s.at >= last_at, "timestamps must be non-decreasing");
            last_at = s.at;
        }
    }

    #[test]
    fn samples_shift_right_under_load() {
        // Compare idle-probe latency vs. probe latency with a heavy
        // contender sharing the switch.
        let run = |with_noise: bool| -> f64 {
            let mut world = World::new(SwitchConfig::cab().with_seed(5));
            let cfg = ImpactConfig {
                period: SimDuration::from_micros(200),
                ..ImpactConfig::default()
            };
            let (members, sink) = build_impactb(&cfg, 18);
            world.add_job("impactb", members);
            if with_noise {
                let noisy: Vec<_> = (0..18)
                    .map(|n| {
                        let next = (n + 1) % 18;
                        (
                            Box::new(Looping::new(vec![
                                Op::Isend {
                                    dst: next,
                                    bytes: 40 * 1024,
                                    tag: 1,
                                },
                                Op::Irecv {
                                    src: Src::Any,
                                    tag: 1,
                                },
                                Op::WaitAll,
                            ])) as Box<dyn Program>,
                            NodeId(n),
                        )
                    })
                    .collect();
                world.add_job("noise", noisy);
            }
            world.run_until(SimTime::from_millis(20));
            let s = sink.borrow();
            assert!(!s.is_empty());
            s.iter().map(|p| p.one_way_us).sum::<f64>() / s.len() as f64
        };
        let idle = run(false);
        let loaded = run(true);
        assert!(
            loaded > idle * 1.3,
            "load must inflate probe latency: idle={idle:.3}us loaded={loaded:.3}us"
        );
    }
}
