//! D002 fixture: simulated time only; no host clock, no OS entropy.

/// Advances a simulated clock by a fixed step and reports it in
/// seconds. Every quantity derives from simulation state.
pub fn step_duration(now_ns: u64, step_ns: u64) -> f64 {
    let next = now_ns.saturating_add(step_ns);
    (next - now_ns) as f64 / 1e9
}
