//! D004 fixture: unchecked tick arithmetic on simulation time types.

use crate::{SimDuration, SimTime};

/// Midpoint of a window via raw tick arithmetic — wraps on overflow.
pub fn window_mid(start: SimTime, width: SimDuration) -> u64 {
    start.as_nanos() + width.as_nanos() / 2
}

/// Builds a duration from raw multiplied ticks.
pub fn scaled(base_ns: u64, factor: u64) -> SimDuration {
    SimDuration::from_nanos(base_ns * factor)
}
