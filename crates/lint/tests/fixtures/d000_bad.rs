//! D000 fixture: malformed suppression directives.

/// Reads the head of a queue.
pub fn head(q: &[u64]) -> u64 {
    // anp-lint: allow(D003)
    q.first().copied().unwrap_or(0)
}

/// Reads the tail of a queue.
pub fn tail(q: &[u64]) -> u64 {
    // anp-lint: alow(D003) — typo in the verb
    q.last().copied().unwrap_or(0)
}
