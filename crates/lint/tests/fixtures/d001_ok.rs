//! D001 fixture: ordered collections keep iteration deterministic.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Per-flow byte counters keyed by flow id, in flow-id order.
pub fn tally(flows: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut seen: BTreeSet<u64> = BTreeSet::new();
    let mut bytes: BTreeMap<u64, u64> = BTreeMap::new();
    for &(flow, n) in flows {
        seen.insert(flow);
        *bytes.entry(flow).or_insert(0) += n;
    }
    bytes.into_iter().collect()
}
