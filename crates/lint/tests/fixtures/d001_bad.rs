//! D001 fixture: randomized-hash collections in a simulation path.

use std::collections::HashMap;
use std::collections::HashSet;

/// Per-flow byte counters keyed by flow id.
pub fn tally(flows: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut bytes: HashMap<u64, u64> = HashMap::new();
    for &(flow, n) in flows {
        seen.insert(flow);
        *bytes.entry(flow).or_insert(0) += n;
    }
    bytes.into_iter().collect()
}
