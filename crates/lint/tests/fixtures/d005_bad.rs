//! D005 fixture: order-sensitive float reduction in a file that
//! collects results from worker threads.

/// Fans samples out to workers, then reduces in completion order.
pub fn parallel_mean(chunks: Vec<Vec<f64>>) -> f64 {
    let mut partials = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|c| s.spawn(|| c.iter().copied().sum::<f64>()))
            .collect();
        for h in handles {
            partials.push(h.join().unwrap_or(0.0));
        }
    });
    let n = partials.len() as f64;
    partials.into_iter().fold(0.0f64, |a, b| a + b) / n
}
