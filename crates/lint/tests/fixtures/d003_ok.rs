//! D003 fixture: typed errors instead of panics; test code may assert.

/// Returns the larger of the first and last sample, or `None` when the
/// slice is empty.
pub fn first(samples: &[f64]) -> Option<f64> {
    let head = samples.first()?;
    let tail = samples.last()?;
    Some(head.max(*tail))
}

#[cfg(test)]
mod tests {
    use super::first;

    #[test]
    fn picks_larger_endpoint() {
        // Test code is outside D003's scope: these panicking forms are fine.
        assert!(first(&[]).is_none());
        let v = first(&[1.0, 3.0]).unwrap();
        assert_eq!(v, 3.0);
    }
}
