//! D006 fixture: every public item carries a doc comment.

/// A half-open measurement window.
pub struct Window {
    /// Inclusive start tick.
    pub start: u64,
}

/// Width of the window in ticks.
pub fn documented_width(w: &Window) -> u64 {
    w.start
}

/// Hard cap on concurrent windows.
pub const DOCUMENTED_CAP: u64 = 1024;
