//! D003 fixture: panicking calls in non-test library code.

/// Returns the first sample, panicking when the slice is empty.
pub fn first(samples: &[f64]) -> f64 {
    assert!(!samples.is_empty(), "no samples");
    let head = samples.first().expect("just checked");
    let tail = samples.last().unwrap();
    head.max(*tail)
}
