//! D005 fixture: per-index result slots make the reduction order a
//! pure function of the task order, not of thread timing.

/// Fans samples out to workers; partial sums land in their own indexed
/// slot and the final reduction walks the slots in index order.
pub fn parallel_mean(chunks: Vec<Vec<f64>>) -> f64 {
    let mut partials = vec![0.0f64; chunks.len()];
    std::thread::scope(|s| {
        let mut rest = partials.as_mut_slice();
        for chunk in &chunks {
            let (slot, tail) = match rest.split_first_mut() {
                Some(pair) => pair,
                None => break,
            };
            rest = tail;
            s.spawn(move || {
                let mut acc = 0.0f64;
                for x in chunk {
                    acc += x;
                }
                *slot = acc;
            });
        }
    });
    let n = partials.len() as f64;
    let mut total = 0.0f64;
    for p in &partials {
        total += p;
    }
    total / n
}
