//! D000 fixture: a well-formed directive suppressing a real hit.

/// Reads the head of a non-empty queue.
pub fn head(q: &[u64]) -> u64 {
    // anp-lint: allow(D003) — the caller guarantees a non-empty queue by construction
    q.first().copied().expect("non-empty by contract")
}
