//! D002 fixture: wall-clock reads inside a simulation crate.

use std::time::Instant;

/// Times one simulated step with the host clock (non-reproducible).
pub fn step_duration() -> f64 {
    let start = Instant::now();
    let elapsed = start.elapsed();
    elapsed.as_secs_f64()
}
