//! D006 fixture: undocumented public API surface.

/// Documented wrapper so only the items below violate.
pub struct Window {
    /// Inclusive start tick.
    pub start: u64,
}

pub fn undocumented_width(w: &Window) -> u64 {
    w.start
}

pub const UNDOCUMENTED_CAP: u64 = 1024;
