//! D004 fixture: time arithmetic through the checked constructors.

use crate::{SimDuration, SimTime};

/// Midpoint of a window using the checked operators on the time types
/// themselves (their `Add`/`Sub` impls reject overflow).
pub fn window_mid(start: SimTime, width: SimDuration) -> SimTime {
    start + SimDuration::from_nanos(width.as_nanos() / 2)
}

/// Builds a duration from ticks scaled by the checked multiplier.
pub fn scaled(base_ns: u64, factor: u64) -> SimDuration {
    SimDuration::from_nanos(base_ns).checked_mul(factor)
}
