//! Per-rule fixture tests: every diagnostic code has one violating and
//! one clean fixture, linted under a rule-appropriate synthetic path.
//! The fixtures live in `tests/fixtures/`, which the workspace walk
//! skips, so they never pollute a real `anp lint` run.

use anp_lint::lint_source;

/// Lints `fixture` as if it lived at `rel_path` and returns the codes
/// of its unsuppressed violations.
fn codes(rel_path: &str, fixture: &str) -> Vec<&'static str> {
    let outcome = lint_source(rel_path, fixture);
    outcome.violations.iter().map(|v| v.code).collect()
}

/// Asserts that the bad fixture trips `code` (and nothing else) while
/// the clean fixture is silent under the same path.
fn check_pair(code: &str, rel_path: &str, bad: &str, ok: &str) {
    let bad_codes = codes(rel_path, bad);
    assert!(
        !bad_codes.is_empty(),
        "{code}: bad fixture produced no violations at {rel_path}"
    );
    assert!(
        bad_codes.iter().all(|c| *c == code),
        "{code}: bad fixture tripped other rules too: {bad_codes:?}"
    );
    let ok_codes = codes(rel_path, ok);
    assert!(
        ok_codes.is_empty(),
        "{code}: clean fixture is not clean at {rel_path}: {ok_codes:?}"
    );
}

#[test]
fn d000_malformed_directives() {
    let bad_codes = codes(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d000_bad.rs"),
    );
    assert_eq!(
        bad_codes.iter().filter(|c| **c == "D000").count(),
        2,
        "both malformed directives must be reported: {bad_codes:?}"
    );
    // The reasonless directive suppresses nothing, so the `unwrap_or`
    // line underneath stays clean but the typo'd one is inert too.
    let outcome = lint_source(
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d000_ok.rs"),
    );
    assert!(outcome.violations.is_empty(), "{:?}", outcome.violations);
    assert_eq!(outcome.allowed.len(), 1, "the allow must be recorded");
    assert_eq!(outcome.allowed[0].code, "D003");
}

#[test]
fn d001_hash_collections_in_sim_paths() {
    check_pair(
        "D001",
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d001_bad.rs"),
        include_str!("fixtures/d001_ok.rs"),
    );
    // Outside D001's scope the same source is legal.
    assert!(codes(
        "crates/bench/src/fixture.rs",
        include_str!("fixtures/d001_bad.rs")
    )
    .is_empty());
}

#[test]
fn d002_wall_clock_in_sim_crates() {
    check_pair(
        "D002",
        "crates/simnet/src/fixture.rs",
        include_str!("fixtures/d002_bad.rs"),
        include_str!("fixtures/d002_ok.rs"),
    );
    // The monitor crate is not in D002's scope (it may time real runs).
    assert!(codes(
        "crates/monitor/src/fixture.rs",
        include_str!("fixtures/d002_bad.rs")
    )
    .is_empty());
}

#[test]
fn d003_panicking_calls_in_library_code() {
    let path = "crates/core/src/fixture.rs";
    let bad_codes = codes(path, include_str!("fixtures/d003_bad.rs"));
    assert_eq!(
        bad_codes,
        vec!["D003", "D003", "D003"],
        "assert!, expect(), and unwrap() must each be reported"
    );
    assert!(codes(path, include_str!("fixtures/d003_ok.rs")).is_empty());
    // Whole-file test context (tests/ tree): the same bad source is legal.
    assert!(codes(
        "crates/core/tests/fixture.rs",
        include_str!("fixtures/d003_bad.rs")
    )
    .is_empty());
}

#[test]
fn d004_unchecked_tick_arithmetic() {
    let path = "crates/simnet/src/fixture.rs";
    let bad = codes(path, include_str!("fixtures/d004_bad.rs"));
    assert_eq!(
        bad.iter().filter(|c| **c == "D004").count(),
        2,
        "both the as_nanos() sum and the from_nanos(a * b) must be reported: {bad:?}"
    );
    assert!(bad.iter().all(|c| *c == "D004"), "{bad:?}");
    assert!(codes(path, include_str!("fixtures/d004_ok.rs")).is_empty());
}

#[test]
fn d005_unordered_float_reduction() {
    let path = "crates/core/src/fixture.rs";
    let bad = codes(path, include_str!("fixtures/d005_bad.rs"));
    assert_eq!(
        bad.iter().filter(|c| **c == "D005").count(),
        2,
        "both sum::<f64>() and the float fold must be reported: {bad:?}"
    );
    assert!(bad.iter().all(|c| *c == "D005"), "{bad:?}");
    assert!(codes(path, include_str!("fixtures/d005_ok.rs")).is_empty());
}

#[test]
fn d006_undocumented_pub_items() {
    check_pair(
        "D006",
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d006_bad.rs"),
        include_str!("fixtures/d006_ok.rs"),
    );
    let bad = codes(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/d006_bad.rs"),
    );
    assert_eq!(bad.len(), 2, "the undocumented fn and const: {bad:?}");
    // Crates outside the documented-API scope are exempt.
    assert!(codes(
        "crates/workloads/src/fixture.rs",
        include_str!("fixtures/d006_bad.rs")
    )
    .is_empty());
}
