//! Self-test: the workspace this crate ships in must lint clean. A
//! violation introduced anywhere in the tree fails this test before CI
//! even reaches the dedicated `anp lint` job.

use anp_lint::{lint_workspace, LintOptions};
use std::path::Path;

#[test]
fn workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf);
    let root = match root {
        Some(r) => r,
        None => {
            // Unreachable in practice: the crate always lives two levels
            // below the workspace root.
            return;
        }
    };
    let report = match lint_workspace(&root, &LintOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            // Surface walk errors as a readable failure, not a panic.
            unreachable!("workspace walk failed: {e}");
        }
    };
    let rendered = report.render_human();
    assert!(
        report.is_clean(),
        "the workspace must lint clean; run `anp lint` locally.\n{rendered}"
    );
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan — wrong root?"
    );
}
