//! The diagnostic rules (D001–D006) and the suppression pass.
//!
//! Each rule is a scoped token-pattern match over a [`LexedFile`]; the
//! scopes encode where the workspace's determinism contract applies
//! (see DESIGN.md, "Static analysis: the determinism contract").
//! Suppression is only possible through an inline directive the tool
//! records:
//!
//! ```text
//! // anp-lint: allow(D003) — reason the site is sound
//! ```
//!
//! placed on the violating line or on the line directly above it. A
//! directive that does not parse is itself a violation (D000), so a
//! typo'd allow can never silently disable a rule.

use crate::lexer::{lex, CommentKind, LexedFile, Token, TokenKind};

/// All diagnostic codes, in report order.
pub const ALL_CODES: [&str; 7] = ["D000", "D001", "D002", "D003", "D004", "D005", "D006"];

/// A rule hit before suppression is applied.
#[derive(Debug, Clone)]
pub struct RawViolation {
    /// Diagnostic code (`D001` … `D006`, or `D000` for a malformed
    /// directive).
    pub code: &'static str,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable explanation of the hit.
    pub message: String,
}

/// A suppressed violation, recorded with the directive's reason.
#[derive(Debug, Clone)]
pub struct AllowedHit {
    /// Diagnostic code that was suppressed.
    pub code: &'static str,
    /// 1-based line of the suppressed violation.
    pub line: u32,
    /// The justification text from the allow directive.
    pub reason: String,
}

/// Outcome of linting one file: surviving violations plus the recorded
/// suppressions.
#[derive(Debug, Default)]
pub struct FileOutcome {
    /// Violations that no directive suppressed.
    pub violations: Vec<RawViolation>,
    /// Suppressed hits, with reasons (the audit trail).
    pub allowed: Vec<AllowedHit>,
    /// Trimmed source lines for snippets, keyed by violation line.
    pub snippets: Vec<String>,
}

/// Parsed `anp-lint: allow(...)` directive.
struct AllowDirective {
    codes: Vec<String>,
    reason: String,
    line: u32,
}

/// Lints a single source text as if it lived at `rel_path` (workspace-
/// relative, forward slashes). This is the whole per-file pipeline:
/// lex, run every scoped rule, then apply suppressions.
pub fn lint_source(rel_path: &str, text: &str) -> FileOutcome {
    let whole_file_is_test = is_test_path(rel_path);
    let file = lex(text, whole_file_is_test);

    let mut raw: Vec<RawViolation> = Vec::new();
    let mut directives: Vec<AllowDirective> = Vec::new();
    scan_directives(&file, &mut raw, &mut directives);

    if in_scope(rel_path, D001_SCOPE) {
        rule_d001(&file, &mut raw);
    }
    if in_scope(rel_path, D002_SCOPE) {
        rule_d002(&file, &mut raw);
    }
    if d003_in_scope(rel_path) {
        rule_d003(&file, &mut raw);
    }
    rule_d004(&file, &mut raw);
    rule_d005(&file, &mut raw);
    if in_scope(rel_path, D006_SCOPE) && !whole_file_is_test {
        rule_d006(&file, &mut raw);
    }

    apply_suppressions(&file, raw, &directives)
}

/// Paths where D001 (hash collections) applies: the simulation and
/// result-ordering crates. `IdHashMap` (deterministic hasher) is exempt
/// by name; `std` hash collections are not.
const D001_SCOPE: &[&str] = &[
    "crates/simnet/src/",
    "crates/simmpi/src/",
    "crates/core/src/",
    "crates/flowsim/src/",
];

/// Paths where D002 (wall clock / OS entropy) applies: everything that
/// executes *inside* simulated time. The experiment drivers in
/// `anp-core` legitimately read wall clocks for telemetry and budgets,
/// so they are out of scope here.
const D002_SCOPE: &[&str] = &[
    "crates/simnet/src/",
    "crates/simmpi/src/",
    "crates/flowsim/src/",
    "crates/workloads/src/",
];

/// Paths where D006 (pub items documented) applies.
const D006_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/simnet/src/",
    "crates/simmpi/src/",
];

fn in_scope(rel_path: &str, scope: &[&str]) -> bool {
    scope.iter().any(|p| rel_path.starts_with(p))
}

/// D003 applies to non-test *library* code: every `crates/*/src` file
/// that is not a binary (`src/bin/`), plus the root `src/lib.rs`.
fn d003_in_scope(rel_path: &str) -> bool {
    if rel_path == "src/lib.rs" {
        return true;
    }
    rel_path.starts_with("crates/")
        && rel_path.contains("/src/")
        && !rel_path.contains("/src/bin/")
        && !is_test_path(rel_path)
}

fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/benches/")
        || rel_path.starts_with("examples/")
        || rel_path.contains("/examples/")
}

/// True for tokens the token-pattern rules should look at.
fn live(t: &Token) -> bool {
    !t.in_attr && !t.in_test
}

// ---------------------------------------------------------------- D001

fn rule_d001(file: &LexedFile, out: &mut Vec<RawViolation>) {
    for t in &file.tokens {
        if !live(t) || t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            out.push(RawViolation {
                code: "D001",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` iteration order is nondeterministic (RandomState): use \
                     `BTreeMap`/`BTreeSet`, or `IdHashMap` with documented sorted \
                     iteration, in simulation/result-ordering paths",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- D002

fn rule_d002(file: &LexedFile, out: &mut Vec<RawViolation>) {
    for t in &file.tokens {
        if !live(t) || t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(
            t.text.as_str(),
            "Instant" | "SystemTime" | "thread_rng" | "from_entropy" | "OsRng"
        ) {
            out.push(RawViolation {
                code: "D002",
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}` injects wall-clock time or OS entropy into a simulation \
                     crate; simulated time must come from `SimTime` and randomness \
                     from seeded `StdRng`",
                    t.text
                ),
            });
        }
    }
}

// ---------------------------------------------------------------- D003

fn rule_d003(file: &LexedFile, out: &mut Vec<RawViolation>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !live(t) || t.kind != TokenKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect" => {
                let after_dot =
                    i > 0 && toks[i - 1].text == "." && toks[i - 1].kind == TokenKind::Punct;
                let called = toks.get(i + 1).is_some_and(|n| n.text == "(");
                if after_dot && called {
                    out.push(RawViolation {
                        code: "D003",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "`.{}()` in non-test library code can panic; return a \
                             typed error (extend the crate's error enum) or prove \
                             the case impossible and allow it with a reason",
                            t.text
                        ),
                    });
                }
            }
            "assert" if toks.get(i + 1).is_some_and(|n| n.text == "!") => {
                out.push(RawViolation {
                    code: "D003",
                    line: t.line,
                    col: t.col,
                    message: "bare `assert!` in non-test library code panics in \
                              release builds; use `debug_assert!` for internal \
                              invariants or a typed error for reachable conditions"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------- D004

const SIMTIME_ACCESSORS: [&str; 3] = ["as_nanos", "as_micros", "as_millis"];
const SIMTIME_CONSTRUCTORS: [&str; 4] = ["from_nanos", "from_micros", "from_millis", "from_secs"];

/// True when `tok` is a binary `+`/`-`/`*` (not unary deref/negation):
/// binary operators follow a value-ending token.
fn is_binary_arith(toks: &[Token], i: usize) -> bool {
    let t = &toks[i];
    if t.kind != TokenKind::Punct || !matches!(t.text.as_str(), "+" | "-" | "*") {
        return false;
    }
    let Some(prev) = toks.get(i.wrapping_sub(1)) else {
        return false;
    };
    if i == 0 {
        return false;
    }
    match prev.kind {
        TokenKind::Ident | TokenKind::Number | TokenKind::Str | TokenKind::Char => true,
        TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
        TokenKind::Lifetime => false,
    }
}

fn rule_d004(file: &LexedFile, out: &mut Vec<RawViolation>) {
    let toks = &file.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !live(t) || t.kind != TokenKind::Ident {
            continue;
        }
        // `x.as_nanos() + …`: raw integer arithmetic on extracted ticks.
        if SIMTIME_ACCESSORS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].text == "."
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks.get(i + 2).is_some_and(|n| n.text == ")")
            && i + 3 < toks.len()
            && is_binary_arith(toks, i + 3)
        {
            out.push(RawViolation {
                code: "D004",
                line: t.line,
                col: t.col,
                message: format!(
                    "unchecked `{}{}() {}` arithmetic on extracted ticks wraps in \
                     release builds; compute in SimTime/SimDuration space (their \
                     Add/Sub/Mul are overflow-checked) or use checked integer ops",
                    ".",
                    t.text,
                    toks[i + 3].text
                ),
            });
        }
        // `SimTime::from_nanos(a + b)`: arithmetic inside the constructor
        // argument happens *before* the checked constructor sees it.
        if (t.text == "SimTime" || t.text == "SimDuration")
            && toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_some_and(|n| n.text == ":")
            && toks
                .get(i + 3)
                .is_some_and(|n| SIMTIME_CONSTRUCTORS.contains(&n.text.as_str()))
            && toks.get(i + 4).is_some_and(|n| n.text == "(")
        {
            let open = i + 4;
            let mut depth = 0i32;
            for (off, a) in toks[open..].iter().enumerate() {
                match a.text.as_str() {
                    "(" => depth += 1,
                    ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {
                        if depth >= 1 && is_binary_arith(toks, open + off) {
                            out.push(RawViolation {
                                code: "D004",
                                line: a.line,
                                col: a.col,
                                message: format!(
                                    "arithmetic (`{}`) inside `{}::{}(…)` is unchecked \
                                     integer math; build the operands as \
                                     SimTime/SimDuration and use their checked operators",
                                    a.text,
                                    t.text,
                                    toks[i + 3].text
                                ),
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------- D005

fn rule_d005(file: &LexedFile, out: &mut Vec<RawViolation>) {
    let toks = &file.tokens;
    // The rule only fires in files that do parallel collection at all.
    let parallel = toks.iter().enumerate().any(|(i, t)| {
        t.kind == TokenKind::Ident
            && live(t)
            && (((t.text == "scope" || t.text == "spawn")
                && i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].text == "thread")
                || t.text == "mpsc")
    });
    if !parallel {
        return;
    }
    for (i, t) in toks.iter().enumerate() {
        if !live(t) || t.kind != TokenKind::Ident {
            continue;
        }
        // `.sum::<f64>()` / `.sum::<f32>()`
        if t.text == "sum"
            && toks.get(i + 1).is_some_and(|n| n.text == ":")
            && toks.get(i + 2).is_some_and(|n| n.text == ":")
            && toks.get(i + 3).is_some_and(|n| n.text == "<")
            && toks
                .get(i + 4)
                .is_some_and(|n| n.text == "f64" || n.text == "f32")
        {
            out.push(RawViolation {
                code: "D005",
                line: t.line,
                col: t.col,
                message: "float reduction in a file that collects results in \
                          parallel: float addition is order-sensitive, so the \
                          accumulation must run over an index-ordered container \
                          (document it with an allow, or restructure)"
                    .to_string(),
            });
        }
        // `.fold(0.0, …)` — a float-seeded fold.
        if t.text == "fold"
            && toks.get(i + 1).is_some_and(|n| n.text == "(")
            && toks
                .get(i + 2)
                .is_some_and(|n| n.kind == TokenKind::Number && n.text.contains('.'))
        {
            out.push(RawViolation {
                code: "D005",
                line: t.line,
                col: t.col,
                message: "float-seeded `fold` in a file that collects results in \
                          parallel: float addition is order-sensitive, so the \
                          accumulation must run over an index-ordered container \
                          (document it with an allow, or restructure)"
                    .to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------- D006

const ITEM_KEYWORDS: [&str; 9] = [
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union",
];

fn rule_d006(file: &LexedFile, out: &mut Vec<RawViolation>) {
    // Lines carrying a doc comment (`///`, `//!`, `/** */`) or a `doc`
    // attribute; lines that are purely attributes are transparent when
    // scanning upward from an item to its docs.
    let nlines = file.lines.len() + 2;
    let mut doc_line = vec![false; nlines];
    let mut comment_line = vec![false; nlines];
    for c in &file.comments {
        for l in c.line..=c.end_line {
            if let Some(slot) = comment_line.get_mut(l as usize) {
                *slot = true;
            }
            if c.kind == CommentKind::Doc {
                if let Some(slot) = doc_line.get_mut(l as usize) {
                    *slot = true;
                }
            }
        }
    }
    let mut attr_line = vec![false; nlines];
    let mut code_line = vec![false; nlines];
    for t in &file.tokens {
        let l = t.line as usize;
        if l >= nlines {
            continue;
        }
        if t.in_attr {
            attr_line[l] = true;
            if t.kind == TokenKind::Ident && t.text == "doc" {
                doc_line[l] = true;
            }
        } else {
            code_line[l] = true;
        }
    }

    let toks = &file.tokens;
    // Track trait-impl blocks: their members are documented on the trait.
    let mut block_stack: Vec<bool> = Vec::new(); // true = trait impl
    let mut pending_block_is_trait_impl = false;
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.in_attr || t.in_test {
            i += 1;
            continue;
        }
        match t.text.as_str() {
            "{" => {
                block_stack.push(pending_block_is_trait_impl);
                pending_block_is_trait_impl = false;
            }
            "}" => {
                block_stack.pop();
            }
            "impl" if t.kind == TokenKind::Ident => {
                // Scan the impl header up to its `{`: a `for` keyword (not
                // the HRTB `for<…>`) marks a trait impl.
                let mut j = i + 1;
                while j < toks.len() && toks[j].text != "{" {
                    if toks[j].kind == TokenKind::Ident
                        && toks[j].text == "for"
                        && toks.get(j + 1).map(|n| n.text.as_str()) != Some("<")
                    {
                        pending_block_is_trait_impl = true;
                    }
                    j += 1;
                }
            }
            "pub" if t.kind == TokenKind::Ident => {
                if block_stack.iter().any(|trait_impl| *trait_impl) {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                // `pub(crate)` / `pub(super)` are not public API.
                if toks.get(j).is_some_and(|n| n.text == "(") {
                    i += 1;
                    continue;
                }
                // Skip modifiers to the item keyword.
                while toks
                    .get(j)
                    .is_some_and(|n| matches!(n.text.as_str(), "unsafe" | "async" | "extern"))
                {
                    j += 1;
                }
                let Some(kw) = toks.get(j) else {
                    break;
                };
                let is_item = ITEM_KEYWORDS.contains(&kw.text.as_str())
                    || (kw.text == "const" && toks.get(j + 1).is_some_and(|n| n.text == "fn"));
                if !is_item {
                    // `pub use`, struct fields, macro output: not D006's
                    // business.
                    i += 1;
                    continue;
                }
                // `pub mod name;` (out-of-line): the module's docs live
                // in its own file as `//!`, where `missing_docs` checks
                // them; only inline `pub mod name { … }` is ours.
                if kw.text == "mod" && toks.get(j + 2).is_some_and(|n| n.text == ";") {
                    i += 1;
                    continue;
                }
                let mut l = t.line as usize;
                let mut documented = false;
                while l > 1 {
                    l -= 1;
                    if doc_line[l] {
                        documented = true;
                        break;
                    }
                    // Attribute lines and plain-comment lines (including
                    // anp-lint directives) sit legally between an item
                    // and its docs.
                    if (attr_line[l] || comment_line[l]) && !code_line[l] {
                        continue;
                    }
                    break;
                }
                if !documented {
                    out.push(RawViolation {
                        code: "D006",
                        line: t.line,
                        col: t.col,
                        message: format!(
                            "public `{}` in a contract crate (anp-core/simnet/simmpi) \
                             has no doc comment; every exported item must state its \
                             contract",
                            kw.text
                        ),
                    });
                }
            }
            _ => {}
        }
        i += 1;
    }
}

// ------------------------------------------------------- suppressions

/// Recognizes `anp-lint:` directives in line comments; a directive that
/// fails to parse becomes a D000 violation so typos cannot silently
/// disable a rule.
fn scan_directives(
    file: &LexedFile,
    raw: &mut Vec<RawViolation>,
    directives: &mut Vec<AllowDirective>,
) {
    for c in &file.comments {
        if c.kind != CommentKind::Line {
            continue;
        }
        let text = c.text.trim_start();
        if !text.starts_with("anp-lint:") {
            continue;
        }
        match parse_directive(text) {
            Some((codes, reason)) => directives.push(AllowDirective {
                codes,
                reason,
                line: c.line,
            }),
            None => raw.push(RawViolation {
                code: "D000",
                line: c.line,
                col: 1,
                message: "malformed anp-lint directive; expected \
                          `// anp-lint: allow(Dnnn[, Dnnn…]) — reason`"
                    .to_string(),
            }),
        }
    }
}

/// Parses `anp-lint: allow(D001, D003) — reason`. The reason separator
/// may be an em-dash `—`, `--`, or a single `-`; the reason must be
/// non-empty.
fn parse_directive(text: &str) -> Option<(Vec<String>, String)> {
    let rest = text.strip_prefix("anp-lint:")?.trim_start();
    let rest = rest.strip_prefix("allow")?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let close = rest.find(')')?;
    let (code_list, tail) = rest.split_at(close);
    let mut codes = Vec::new();
    for code in code_list.split(',') {
        let code = code.trim();
        if code.len() != 4
            || !code.starts_with('D')
            || !code[1..].chars().all(|c| c.is_ascii_digit())
        {
            return None;
        }
        codes.push(code.to_string());
    }
    if codes.is_empty() {
        return None;
    }
    let tail = tail[1..].trim_start();
    let reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix("--"))
        .or_else(|| tail.strip_prefix('-'))?
        .trim();
    if reason.is_empty() {
        return None;
    }
    Some((codes, reason.to_string()))
}

/// A directive on line `L` suppresses matching violations on `L` (the
/// trailing-comment style) and on `L+1` (the comment-above style).
fn apply_suppressions(
    file: &LexedFile,
    raw: Vec<RawViolation>,
    directives: &[AllowDirective],
) -> FileOutcome {
    let mut outcome = FileOutcome::default();
    for v in raw {
        let hit = directives.iter().find(|d| {
            (d.line == v.line || d.line + 1 == v.line) && d.codes.iter().any(|c| c == v.code)
        });
        match hit {
            Some(d) => outcome.allowed.push(AllowedHit {
                code: v.code,
                line: v.line,
                reason: d.reason.clone(),
            }),
            None => {
                outcome.snippets.push(file.snippet(v.line));
                outcome.violations.push(v);
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_parses_all_separators() {
        for sep in ["—", "--", "-"] {
            let (codes, reason) =
                parse_directive(&format!("anp-lint: allow(D001, D003) {sep} fine here"))
                    .expect("parses");
            assert_eq!(codes, vec!["D001", "D003"]);
            assert_eq!(reason, "fine here");
        }
    }

    #[test]
    fn directive_requires_reason_and_valid_codes() {
        assert!(parse_directive("anp-lint: allow(D001) —").is_none());
        assert!(parse_directive("anp-lint: allow(D001)").is_none());
        assert!(parse_directive("anp-lint: allow(D1) — short code").is_none());
        assert!(parse_directive("anp-lint: allow() — empty").is_none());
        assert!(parse_directive("anp-lint: permit(D001) — wrong verb").is_none());
    }

    #[test]
    fn malformed_directive_is_d000() {
        let out = lint_source(
            "crates/simnet/src/x.rs",
            "// anp-lint: allow(D001)\nfn f() {}\n",
        );
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].code, "D000");
    }

    #[test]
    fn suppression_covers_same_line_and_next_line() {
        let src = "use std::collections::HashMap; // anp-lint: allow(D001) — test of trailing\n\
                   // anp-lint: allow(D001) — test of above\n\
                   use std::collections::HashMap;\n\
                   use std::collections::HashMap;\n";
        let out = lint_source("crates/simnet/src/x.rs", src);
        assert_eq!(out.allowed.len(), 2);
        assert_eq!(out.violations.len(), 1);
        assert_eq!(out.violations[0].line, 4);
    }

    #[test]
    fn scopes_gate_the_rules() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(
            lint_source("crates/simnet/src/x.rs", src).violations.len(),
            1
        );
        assert_eq!(
            lint_source("crates/metrics/src/x.rs", src).violations.len(),
            0
        );
        assert_eq!(lint_source("tests/x.rs", src).violations.len(), 0);
    }
}
