//! A hand-rolled token scanner for Rust sources.
//!
//! The linter's rules work on token streams, never on raw text, so a
//! `HashMap` mentioned in a string literal, a `unwrap()` in a doc
//! example, or an `Instant` inside a `#[doc = "…"]` attribute can never
//! produce a false positive. The scanner understands:
//!
//! * line comments (`//`), outer/inner doc comments (`///`, `//!`),
//!   and *nested* block comments (`/* /* */ */`, `/** … */`, `/*! … */`);
//! * string literals with escapes, multi-line strings, byte strings,
//!   and raw strings with any number of `#` guards (`r#"…"#`);
//! * char literals versus lifetimes (`'a'` vs `'a`), including escaped
//!   chars (`'\''`, `'\u{1F600}'`);
//! * attributes (`#[…]`, `#![…]`): their tokens are captured but marked
//!   `in_attr`, and `#[cfg(test)]` / `#[test]` items are marked
//!   `in_test` through their entire brace-balanced extent.
//!
//! It is deliberately *not* a parser: no grammar, no AST, no external
//! dependencies (consistent with the workspace's vendored-stand-ins
//! policy). Every diagnostic is a scoped token-pattern match.

/// What kind of lexeme a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`).
    Ident,
    /// Numeric literal (`42`, `0.5`, `1_000u64`).
    Number,
    /// Single punctuation character (`.`, `(`, `+`, …).
    Punct,
    /// String literal of any flavor (contents not retained).
    Str,
    /// Char or byte literal.
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its source position and context flags.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token text (empty for string literals; rules never match on
    /// string contents).
    pub text: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based column (in chars).
    pub col: u32,
    /// Lexeme class.
    pub kind: TokenKind,
    /// True when the token is part of an attribute (`#[…]` / `#![…]`).
    pub in_attr: bool,
    /// True when the token is inside `#[cfg(test)]` / `#[test]` code
    /// (or the whole file is test code: `tests/`, `benches/`).
    pub in_test: bool,
}

/// Which comment syntax produced a [`Comment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommentKind {
    /// `// …`
    Line,
    /// `/* … */` (possibly nested)
    Block,
    /// `/// …` or `//! …` or `/** … */` or `/*! … */`
    Doc,
}

/// A comment with its text and line extent.
#[derive(Debug, Clone)]
pub struct Comment {
    /// Comment body: text after the comment marker, untrimmed.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (same as `line` for `//`).
    pub end_line: u32,
    /// Comment flavor; doc comments feed the D006 documentation check.
    pub kind: CommentKind,
}

/// A fully lexed source file.
#[derive(Debug, Default)]
pub struct LexedFile {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// All comments in source order.
    pub comments: Vec<Comment>,
    /// The source split into lines (for violation snippets).
    pub lines: Vec<String>,
}

impl LexedFile {
    /// The trimmed text of a 1-based source line, for report snippets.
    pub fn snippet(&self, line: u32) -> String {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

struct Scanner {
    chars: Vec<char>,
    i: usize,
    line: u32,
    col: u32,
}

impl Scanner {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.i).copied()?;
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lexes `text`, marking test context from the path: files under
/// `tests/` or `benches/` are entirely test code.
pub fn lex(text: &str, whole_file_is_test: bool) -> LexedFile {
    let mut s = Scanner {
        chars: text.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
    };
    let mut out = LexedFile {
        tokens: Vec::new(),
        comments: Vec::new(),
        lines: text.lines().map(str::to_string).collect(),
    };

    while let Some(c) = s.peek(0) {
        let (line, col) = (s.line, s.col);
        if c.is_whitespace() {
            s.bump();
        } else if c == '/' && s.peek(1) == Some('/') {
            lex_line_comment(&mut s, &mut out, line);
        } else if c == '/' && s.peek(1) == Some('*') {
            lex_block_comment(&mut s, &mut out, line);
        } else if c == '"' {
            lex_string(&mut s);
            push(&mut out, String::new(), line, col, TokenKind::Str);
        } else if c == '\'' {
            lex_quote(&mut s, &mut out, line, col);
        } else if c.is_ascii_digit() {
            let text = lex_number(&mut s);
            push(&mut out, text, line, col, TokenKind::Number);
        } else if c.is_alphabetic() || c == '_' {
            let ident = lex_ident(&mut s);
            // Raw/byte literal prefixes: `r"…"`, `r#"…"#`, `b"…"`,
            // `br#"…"#`, `b'…'`.
            let next = s.peek(0);
            if (ident == "r" || ident == "br") && matches!(next, Some('"') | Some('#')) {
                if lex_raw_string(&mut s) {
                    push(&mut out, String::new(), line, col, TokenKind::Str);
                } else {
                    // `r#ident` raw identifier or stray `#`: keep the
                    // ident; the `#` is re-scanned as punctuation.
                    push(&mut out, ident, line, col, TokenKind::Ident);
                }
            } else if ident == "b" && next == Some('"') {
                lex_string_body(&mut s);
                push(&mut out, String::new(), line, col, TokenKind::Str);
            } else if ident == "b" && next == Some('\'') {
                s.bump();
                lex_char_body(&mut s);
                push(&mut out, String::new(), line, col, TokenKind::Char);
            } else {
                push(&mut out, ident, line, col, TokenKind::Ident);
            }
        } else {
            s.bump();
            push(&mut out, c.to_string(), line, col, TokenKind::Punct);
        }
    }

    mark_attributes_and_tests(&mut out, whole_file_is_test);
    out
}

fn push(out: &mut LexedFile, text: String, line: u32, col: u32, kind: TokenKind) {
    out.tokens.push(Token {
        text,
        line,
        col,
        kind,
        in_attr: false,
        in_test: false,
    });
}

fn lex_line_comment(s: &mut Scanner, out: &mut LexedFile, line: u32) {
    s.bump();
    s.bump();
    let third = s.peek(0);
    // `///` (but not `////…`) and `//!` are doc comments.
    let doc = (third == Some('/') && s.peek(1) != Some('/')) || third == Some('!');
    let mut text = String::new();
    while let Some(c) = s.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        s.bump();
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: line,
        kind: if doc {
            CommentKind::Doc
        } else {
            CommentKind::Line
        },
    });
}

fn lex_block_comment(s: &mut Scanner, out: &mut LexedFile, line: u32) {
    s.bump();
    s.bump();
    // `/**` (not `/***`, not the empty `/**/`) and `/*!` are doc.
    let doc = (s.peek(0) == Some('*') && s.peek(1) != Some('*') && s.peek(1) != Some('/'))
        || s.peek(0) == Some('!');
    let mut depth = 1u32;
    let mut text = String::new();
    while depth > 0 {
        match (s.peek(0), s.peek(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                s.bump();
                s.bump();
                text.push_str("/*");
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                s.bump();
                s.bump();
                if depth > 0 {
                    text.push_str("*/");
                }
            }
            (Some(c), _) => {
                text.push(c);
                s.bump();
            }
            (None, _) => break,
        }
    }
    out.comments.push(Comment {
        text,
        line,
        end_line: s.line,
        kind: if doc {
            CommentKind::Doc
        } else {
            CommentKind::Block
        },
    });
}

fn lex_string(s: &mut Scanner) {
    s.bump(); // opening quote
    lex_string_tail(s);
}

/// For `b"…"`: the scanner sits on the opening quote.
fn lex_string_body(s: &mut Scanner) {
    s.bump();
    lex_string_tail(s);
}

fn lex_string_tail(s: &mut Scanner) {
    while let Some(c) = s.bump() {
        match c {
            '\\' => {
                s.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Raw string after an `r`/`br` prefix: `#`* `"` … `"` `#`*. Returns
/// false if what follows is not actually a raw string (e.g. `r#ident`).
fn lex_raw_string(s: &mut Scanner) -> bool {
    let mut guards = 0usize;
    while s.peek(guards) == Some('#') {
        guards += 1;
    }
    if s.peek(guards) != Some('"') {
        return false;
    }
    for _ in 0..=guards {
        s.bump();
    }
    'scan: while let Some(c) = s.bump() {
        if c == '"' {
            for k in 0..guards {
                if s.peek(k) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..guards {
                s.bump();
            }
            break;
        }
    }
    true
}

/// After a `'`: decides lifetime vs char literal.
fn lex_quote(s: &mut Scanner, out: &mut LexedFile, line: u32, col: u32) {
    s.bump(); // the quote
    let c1 = s.peek(0);
    let is_lifetime = match c1 {
        Some(c) if c.is_alphanumeric() || c == '_' => s.peek(1) != Some('\''),
        _ => false,
    };
    if is_lifetime {
        let mut text = String::from("'");
        while let Some(c) = s.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                s.bump();
            } else {
                break;
            }
        }
        push(out, text, line, col, TokenKind::Lifetime);
    } else {
        lex_char_body(s);
        push(out, String::new(), line, col, TokenKind::Char);
    }
}

/// Char literal body after the opening quote: one (possibly escaped)
/// char then the closing quote.
fn lex_char_body(s: &mut Scanner) {
    match s.bump() {
        Some('\\') => {
            // The escaped character itself first — it may BE a quote
            // (`'\''`) — then scan to the closing quote (covers
            // multi-char escapes like `\u{1F600}`).
            s.bump();
            while let Some(c) = s.bump() {
                if c == '\'' {
                    break;
                }
            }
        }
        Some(_) => {
            s.bump(); // closing quote
        }
        None => {}
    }
}

fn lex_number(s: &mut Scanner) -> String {
    let mut text = String::new();
    let mut last = '\0';
    while let Some(c) = s.peek(0) {
        let fractional_dot =
            c == '.' && !text.contains('.') && s.peek(1).is_some_and(|d| d.is_ascii_digit());
        let exponent_sign = (c == '+' || c == '-')
            && (last == 'e' || last == 'E')
            && s.peek(1).is_some_and(|d| d.is_ascii_digit());
        if c.is_alphanumeric() || c == '_' || fractional_dot || exponent_sign {
            text.push(c);
            last = c;
            s.bump();
        } else {
            break;
        }
    }
    text
}

fn lex_ident(s: &mut Scanner) -> String {
    let mut text = String::new();
    while let Some(c) = s.peek(0) {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            s.bump();
        } else {
            break;
        }
    }
    text
}

/// Second pass: marks attribute spans (`in_attr`) and test-only items
/// (`in_test`). `#[cfg(test)]` / `#[test]` mark the *next item* through
/// its brace-balanced extent; `#![cfg(test)]` marks the whole file.
fn mark_attributes_and_tests(out: &mut LexedFile, whole_file_is_test: bool) {
    let n = out.tokens.len();
    let mut whole_file_test = whole_file_is_test;
    let mut pending_test = false;
    let mut i = 0;
    while i < n {
        if out.tokens[i].text == "#" && out.tokens[i].kind == TokenKind::Punct {
            let mut j = i + 1;
            let inner = j < n && out.tokens[j].text == "!";
            if inner {
                j += 1;
            }
            if j < n && out.tokens[j].text == "[" {
                // Attribute: find the matching `]`.
                let open = j;
                let mut depth = 0i32;
                let mut close = open;
                for (off, t) in out.tokens[open..].iter().enumerate() {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                close = open + off;
                                break;
                            }
                        }
                        _ => {}
                    }
                }
                let body: Vec<&str> = out.tokens[open + 1..close]
                    .iter()
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.as_str())
                    .collect();
                let is_test_attr = body.as_slice() == ["test"]
                    || (body.first() == Some(&"cfg")
                        && body.contains(&"test")
                        && !body.contains(&"not"));
                if is_test_attr {
                    if inner {
                        whole_file_test = true;
                    } else {
                        pending_test = true;
                    }
                }
                for t in &mut out.tokens[i..=close] {
                    t.in_attr = true;
                }
                i = close + 1;
                continue;
            }
        }
        if pending_test {
            // Skip one item: to the matching `}` if a brace opens first,
            // else to the terminating `;`.
            let start = i;
            let mut brace = 0i32;
            let mut end = n - 1;
            let mut j = i;
            while j < n {
                match out.tokens[j].text.as_str() {
                    "{" => brace += 1,
                    "}" => {
                        brace -= 1;
                        if brace == 0 {
                            end = j;
                            break;
                        }
                    }
                    ";" if brace == 0 => {
                        end = j;
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            for t in &mut out.tokens[start..=end.min(n - 1)] {
                t.in_test = true;
            }
            pending_test = false;
            i = end + 1;
            continue;
        }
        i += 1;
    }
    if whole_file_test {
        for t in &mut out.tokens {
            t.in_test = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(file: &LexedFile) -> Vec<&str> {
        file.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let f = lex(r#"let x = "HashMap::unwrap() // not a comment"; y"#, false);
        assert!(idents(&f).contains(&"x"));
        assert!(idents(&f).contains(&"y"));
        assert!(!idents(&f).contains(&"HashMap"));
        assert_eq!(
            f.comments.len(),
            0,
            "string contents must not lex as comments"
        );
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let f = lex(r#"let s = "a\"HashMap\""; done"#, false);
        assert!(!idents(&f).contains(&"HashMap"));
        assert!(idents(&f).contains(&"done"));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = "let s = r#\"unwrap() \" still \" inside\"#; let t = r\"Instant\"; end";
        let f = lex(src, false);
        assert!(!idents(&f).contains(&"unwrap"));
        assert!(!idents(&f).contains(&"Instant"));
        assert!(idents(&f).contains(&"end"));
        assert_eq!(
            f.tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            2
        );
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let f = lex(r#"let a = b"HashMap"; let c = b'x'; end"#, false);
        assert!(!idents(&f).contains(&"HashMap"));
        assert!(idents(&f).contains(&"end"));
    }

    #[test]
    fn nested_block_comments() {
        let f = lex("/* outer /* inner unwrap() */ still comment */ code", false);
        assert!(!idents(&f).contains(&"unwrap"));
        assert!(idents(&f).contains(&"code"));
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].kind, CommentKind::Block);
        assert!(f.comments[0].text.contains("inner unwrap()"));
    }

    #[test]
    fn doc_comments_are_classified() {
        let f = lex(
            "/// outer doc\n//! inner doc\n// plain\n/** block doc */\nfn x() {}",
            false,
        );
        let kinds: Vec<CommentKind> = f.comments.iter().map(|c| c.kind).collect();
        assert_eq!(
            kinds,
            vec![
                CommentKind::Doc,
                CommentKind::Doc,
                CommentKind::Line,
                CommentKind::Doc
            ]
        );
    }

    #[test]
    fn four_slashes_is_not_doc() {
        let f = lex("//// separator\ncode", false);
        assert_eq!(f.comments[0].kind, CommentKind::Line);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let f = lex(
            "fn f<'a>(x: &'a str) { let c = 'b'; let nl = '\\n'; let q = '\\''; }",
            false,
        );
        let lifetimes: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(
            f.tokens
                .iter()
                .filter(|t| t.kind == TokenKind::Char)
                .count(),
            3
        );
        // The `b` in `'b'` must not leak out as an identifier.
        assert!(!idents(&f).contains(&"b"));
    }

    #[test]
    fn attributes_are_marked_and_tokens_kept() {
        let f = lex("#[derive(Debug, Clone)]\nstruct S;", false);
        let derive = f
            .tokens
            .iter()
            .find(|t| t.text == "derive")
            .expect("derive token");
        assert!(derive.in_attr);
        let s = f.tokens.iter().find(|t| t.text == "S").expect("S token");
        assert!(!s.in_attr);
    }

    #[test]
    fn cfg_test_mod_is_test_scoped() {
        let src = "fn lib_code() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n  fn helper() { y.unwrap(); }\n}\n\
                   fn more_lib() { z }";
        let f = lex(src, false);
        let unwraps: Vec<&Token> = f.tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        let z = f.tokens.iter().find(|t| t.text == "z").expect("z");
        assert!(!z.in_test, "code after the test mod is lib code again");
    }

    #[test]
    fn test_attr_with_stacked_attributes() {
        let src = "#[test]\n#[allow(dead_code)]\nfn t() { a.unwrap() }\nfn lib() { b }";
        let f = lex(src, false);
        let a = f.tokens.iter().find(|t| t.text == "a").expect("a");
        assert!(a.in_test);
        let b = f.tokens.iter().find(|t| t.text == "b").expect("b");
        assert!(!b.in_test);
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let f = lex("#[cfg(not(test))]\nfn shipping() { x.unwrap() }", false);
        let x = f.tokens.iter().find(|t| t.text == "x").expect("x");
        assert!(!x.in_test);
    }

    #[test]
    fn whole_file_test_flag() {
        let f = lex("fn anything() { q.unwrap() }", true);
        assert!(f.tokens.iter().all(|t| t.in_test));
    }

    #[test]
    fn numbers_including_floats_and_exponents() {
        let f = lex(
            "let a = 1_000u64; let b = 0.5; let c = 1.5e-3; let r = 1..3;",
            false,
        );
        let nums: Vec<&str> = f
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["1_000u64", "0.5", "1.5e-3", "1", "3"]);
    }
}
