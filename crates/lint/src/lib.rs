//! # anp-lint — workspace determinism & robustness static analysis
//!
//! Every result this reproduction publishes rests on byte-identical
//! determinism (parallel sweeps, `--resume`, the differential oracle)
//! and on typed-error robustness. Those invariants are enforced
//! dynamically by the test suites; this crate makes them checkable
//! *before* any simulation runs, as a self-contained static pass over
//! all workspace Rust sources. There are no external parser
//! dependencies — the scanner in [`lexer`] is hand-rolled, consistent
//! with the workspace's vendored-stand-ins policy.
//!
//! ## Diagnostics
//!
//! | code | rule |
//! |------|------|
//! | D000 | malformed `anp-lint:` directive |
//! | D001 | `HashMap`/`HashSet` in simulation/result-ordering paths |
//! | D002 | wall clock (`Instant`/`SystemTime`) or OS entropy in sim crates |
//! | D003 | `unwrap()`/`expect()`/bare `assert!` in non-test library code |
//! | D004 | unchecked arithmetic on `SimTime`/`SimDuration` ticks |
//! | D005 | order-sensitive float accumulation in parallel-collection files |
//! | D006 | undocumented `pub` item in anp-core/simnet/simmpi |
//!
//! A violation can be suppressed only by an inline directive that the
//! tool records in its report:
//!
//! ```text
//! // anp-lint: allow(D003) — heap is non-empty: checked two lines up
//! ```
//!
//! ## Output
//!
//! [`LintReport::render_human`] prints `CODE path:line:col message`
//! lines; [`LintReport::to_json`] emits the `anp-lint-v1` schema.
//! Both orders are fully deterministic (sorted by file, then line,
//! then column, then code), so the JSON is byte-identical for any
//! `--jobs` setting and any directory-walk order.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use rules::FileOutcome;
use std::path::{Path, PathBuf};

/// Options for a workspace lint pass.
#[derive(Debug, Clone)]
pub struct LintOptions {
    /// Worker threads for the per-file scan. The report is identical
    /// for any value; `1` is fully serial.
    pub jobs: usize,
    /// Quick mode: only library/binary sources (skips `tests/`,
    /// `benches/`, and `examples/` trees).
    pub quick: bool,
}

impl Default for LintOptions {
    fn default() -> Self {
        LintOptions {
            jobs: 1,
            quick: false,
        }
    }
}

/// A surviving (unsuppressed) violation, workspace-relative.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Diagnostic code (`D000` … `D006`).
    pub code: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Explanation of the rule hit.
    pub message: String,
    /// The trimmed source line.
    pub snippet: String,
}

/// A suppressed violation: where, what, and the recorded reason.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// Diagnostic code that was suppressed.
    pub code: &'static str,
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line of the suppressed violation.
    pub line: u32,
    /// Justification from the `anp-lint: allow` directive.
    pub reason: String,
}

/// The result of linting a file tree.
#[derive(Debug, Default)]
pub struct LintReport {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Unsuppressed violations, sorted by (file, line, col, code).
    pub violations: Vec<Violation>,
    /// Recorded suppressions, sorted by (file, line, code).
    pub allowed: Vec<Allowed>,
    /// Whether this was a `--quick` pass (recorded in the JSON so a
    /// quick report is never mistaken for a full one).
    pub quick: bool,
}

/// Why a lint pass could not run to completion.
#[derive(Debug)]
pub enum LintError {
    /// The requested root is not a directory.
    NotADirectory(PathBuf),
    /// A file or directory could not be read.
    Io {
        /// The offending path.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for LintError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintError::NotADirectory(p) => {
                write!(f, "lint root {} is not a directory", p.display())
            }
            LintError::Io { path, source } => {
                write!(f, "reading {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Directory names never descended into: build artefacts, VCS state,
/// the vendored dependency stand-ins (not ours to lint), and the lint
/// crate's own rule fixtures (which contain violations on purpose).
const SKIP_DIRS: [&str; 4] = ["target", "vendor", ".git", "fixtures"];

/// Collects every workspace `.rs` file under `root`, sorted by
/// workspace-relative path so downstream order never depends on the
/// directory walk.
pub fn collect_files(root: &Path, quick: bool) -> Result<Vec<String>, LintError> {
    if !root.is_dir() {
        return Err(LintError::NotADirectory(root.to_path_buf()));
    }
    let mut files = Vec::new();
    walk(root, root, &mut files)?;
    if quick {
        files.retain(|f| !rules_test_tree(f));
    }
    files.sort();
    Ok(files)
}

fn rules_test_tree(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
        || rel.starts_with("examples/")
        || rel.contains("/examples/")
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir).map_err(|source| LintError::Io {
        path: dir.to_path_buf(),
        source,
    })?;
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io {
            path: dir.to_path_buf(),
            source,
        })?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                let rel: Vec<String> = rel
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect();
                out.push(rel.join("/"));
            }
        }
    }
    Ok(())
}

/// Lints one source text as if it lived at `rel_path`; the entry point
/// for fixture and unit tests.
pub fn lint_source(rel_path: &str, text: &str) -> FileOutcome {
    rules::lint_source(rel_path, text)
}

/// Lints every workspace source under `root`. The scan fans out over
/// `opts.jobs` worker threads with interleaved file assignment; the
/// merged report is sorted, so output is byte-identical for any job
/// count.
pub fn lint_workspace(root: &Path, opts: &LintOptions) -> Result<LintReport, LintError> {
    let files = collect_files(root, opts.quick)?;
    let jobs = opts.jobs.max(1).min(files.len().max(1));

    // Worker w owns files w, w+jobs, w+2*jobs, … — disjoint slots, no
    // locks, and the final sort keys on content, not completion order.
    let mut slots: Vec<Vec<Result<(String, FileOutcome), LintError>>> = Vec::new();
    for _ in 0..jobs {
        slots.push(Vec::new());
    }
    std::thread::scope(|s| {
        for (w, slot) in slots.iter_mut().enumerate() {
            let files = &files;
            s.spawn(move || {
                let mut idx = w;
                while idx < files.len() {
                    let rel = &files[idx];
                    let path = root.join(rel);
                    let item = match std::fs::read_to_string(&path) {
                        Ok(text) => Ok((rel.clone(), lint_source(rel, &text))),
                        Err(source) => Err(LintError::Io { path, source }),
                    };
                    slot.push(item);
                    idx += jobs;
                }
            });
        }
    });

    let mut report = LintReport {
        files_scanned: files.len(),
        quick: opts.quick,
        ..LintReport::default()
    };
    for item in slots.into_iter().flatten() {
        let (rel, outcome) = item?;
        for (v, snippet) in outcome.violations.into_iter().zip(outcome.snippets) {
            report.violations.push(Violation {
                code: v.code,
                file: rel.clone(),
                line: v.line,
                col: v.col,
                message: v.message,
                snippet,
            });
        }
        for a in outcome.allowed {
            report.allowed.push(Allowed {
                code: a.code,
                file: rel.clone(),
                line: a.line,
                reason: a.reason,
            });
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.code).cmp(&(&b.file, b.line, b.col, b.code)));
    report
        .allowed
        .sort_by(|a, b| (&a.file, a.line, a.code).cmp(&(&b.file, b.line, b.code)));
    Ok(report)
}

impl LintReport {
    /// True when no unsuppressed violation survived.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation count for one diagnostic code.
    pub fn count(&self, code: &str) -> usize {
        self.violations.iter().filter(|v| v.code == code).count()
    }

    /// Human-readable report: one `CODE path:line:col message` block per
    /// violation, then the suppression audit trail and a summary line.
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            out.push_str(&format!(
                "{} {}:{}:{} {}\n    {}\n",
                v.code, v.file, v.line, v.col, v.message, v.snippet
            ));
        }
        if !self.allowed.is_empty() {
            out.push_str(&format!(
                "{} recorded suppression(s):\n",
                self.allowed.len()
            ));
            for a in &self.allowed {
                out.push_str(&format!(
                    "  {} {}:{} — {}\n",
                    a.code, a.file, a.line, a.reason
                ));
            }
        }
        let mode = if self.quick { " (quick)" } else { "" };
        if self.is_clean() {
            out.push_str(&format!(
                "anp-lint: clean{mode} — {} files, 0 violations, {} suppressions\n",
                self.files_scanned,
                self.allowed.len()
            ));
        } else {
            out.push_str(&format!(
                "anp-lint: FAILED{mode} — {} files, {} violation(s), {} suppression(s)\n",
                self.files_scanned,
                self.violations.len(),
                self.allowed.len()
            ));
        }
        out
    }

    /// The `anp-lint-v1` machine-readable report. Key order, member
    /// order, and formatting are fixed; the bytes depend only on the
    /// linted tree, never on `--jobs` or walk order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("\"schema\":\"anp-lint-v1\",\n");
        out.push_str(&format!("\"quick\":{},\n", self.quick));
        out.push_str(&format!("\"files_scanned\":{},\n", self.files_scanned));
        out.push_str("\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"column\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
                v.code,
                json_escape(&v.file),
                v.line,
                v.col,
                json_escape(&v.message),
                json_escape(&v.snippet)
            ));
        }
        out.push_str("\n],\n\"allowed\":[");
        for (i, a) in self.allowed.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"file\":\"{}\",\"line\":{},\"reason\":\"{}\"}}",
                a.code,
                json_escape(&a.file),
                a.line,
                json_escape(&a.reason)
            ));
        }
        out.push_str("\n],\n\"summary\":{");
        for code in rules::ALL_CODES {
            out.push_str(&format!("\"{}\":{},", code, self.count(code)));
        }
        out.push_str(&format!("\"total\":{}}}\n}}\n", self.violations.len()));
        out
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_covers_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn report_json_is_well_formed_when_empty() {
        let r = LintReport::default();
        let j = r.to_json();
        assert!(j.contains("\"schema\":\"anp-lint-v1\""));
        assert!(j.contains("\"total\":0"));
    }
}
