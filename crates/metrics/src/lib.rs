//! # anp-metrics — statistics substrate
//!
//! Small, dependency-free statistical tools shared by the measurement
//! methodology (`anp-core`) and the experiment harnesses (`anp-bench`):
//!
//! * [`OnlineStats`] — streaming mean/variance (Welford) for latency
//!   samples;
//! * [`Ewma`], [`WindowedQuantiles`], [`Cusum`] — the live monitor's
//!   estimators: decaying moments, sliding-window quantiles, and
//!   change-point detection over probe streams;
//! * [`Histogram`] — fixed-bin latency histograms with the paper's PDFLT
//!   overlap integral `∫ f·g` and distance metrics;
//! * [`Interval`] — `µ±σ` intervals and their overlap (AverageStDevLT);
//! * [`QuartileSummary`] — five-number summaries (Fig. 9 box data);
//! * [`linear_fit`] — least-squares trend lines (Fig. 7 overlays).

#![warn(missing_docs)]

pub mod histogram;
pub mod interval;
pub mod linfit;
pub mod online;
pub mod quartiles;

pub use histogram::Histogram;
pub use interval::Interval;
pub use linfit::{linear_fit, LinearFit};
pub use online::{Cusum, Ewma, OnlineStats, Shift, WindowedQuantiles};
pub use quartiles::{quantile, quantile_sorted, MetricsError, QuartileSummary};
