//! Ordinary least-squares linear fit.
//!
//! The paper's Fig. 7 overlays "the best linear approximation" on each
//! application's degradation-vs-utilization scatter to highlight the trend;
//! the Fig. 7 harness uses this fit for the same purpose.

/// Result of a least-squares fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
    /// Coefficient of determination R² (1 for a perfect fit; 0 when the
    /// fit explains nothing, or when y is constant).
    pub r2: f64,
}

impl LinearFit {
    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Fits a line through `(x, y)` pairs.
///
/// Returns `None` when fewer than two points are given or when all x values
/// coincide (vertical line — slope undefined).
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    let n = xs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mx = xs.iter().sum::<f64>() / nf;
    let my = ys.iter().sum::<f64>() / nf;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    if sxx == 0.0 {
        return None;
    }
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let r2 = if syy == 0.0 {
        // y constant: the horizontal line fits exactly, but R² is
        // conventionally 0/0; report 1 if the fit is flat (it will be).
        1.0
    } else {
        let ss_res: f64 = xs
            .iter()
            .zip(ys)
            .map(|(x, y)| {
                let e = y - (slope * x + intercept);
                e * e
            })
            .sum();
        (1.0 - ss_res / syy).clamp(0.0, 1.0)
    };
    Some(LinearFit {
        slope,
        intercept,
        r2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn exact_line_is_recovered() {
        let xs: Vec<f64> = (0..10).map(f64::from).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x - 2.0).collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept + 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(20.0) - 58.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y_gives_zero_slope() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 5.0];
        let f = linear_fit(&xs, &ys).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(linear_fit(&[1.0], &[2.0]).is_none());
        assert!(linear_fit(&[], &[]).is_none());
        assert!(linear_fit(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = linear_fit(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    fn noisy_fit_has_plausible_r2() {
        let xs: Vec<f64> = (0..50).map(f64::from).collect();
        // y = 2x + 1 with deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + if i % 2 == 0 { 0.5 } else { -0.5 })
            .collect();
        let f = linear_fit(&xs, &ys).unwrap();
        assert!((f.slope - 2.0).abs() < 0.01);
        assert!(f.r2 > 0.99);
    }

    proptest! {
        /// R² is always within [0, 1] and the fit passes through the
        /// centroid of the data.
        #[test]
        fn prop_fit_invariants(
            pts in proptest::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 2..100)
        ) {
            let xs: Vec<f64> = pts.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pts.iter().map(|p| p.1).collect();
            if let Some(f) = linear_fit(&xs, &ys) {
                prop_assert!((0.0..=1.0).contains(&f.r2));
                let mx = xs.iter().sum::<f64>() / xs.len() as f64;
                let my = ys.iter().sum::<f64>() / ys.len() as f64;
                prop_assert!((f.predict(mx) - my).abs() < 1e-6 * (1.0 + my.abs()));
            }
        }
    }
}
