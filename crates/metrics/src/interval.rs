//! Mean ± σ intervals and their overlap — the AverageStDevLT metric.
//!
//! The paper's second look-up-table model (§IV-A.2) describes a latency
//! distribution by the interval `[µ−σ, µ+σ]` and matches an application to
//! the CompressionB configuration whose interval has the largest overlap
//! with the application's.

/// A closed interval on the real line.
///
/// ```
/// use anp_metrics::Interval;
///
/// let a = Interval::mean_pm_sigma(2.0, 0.5); // [1.5, 2.5]
/// let b = Interval::mean_pm_sigma(2.4, 0.3); // [2.1, 2.7]
/// assert!((a.overlap(&b) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower end.
    pub lo: f64,
    /// Upper end.
    pub hi: f64,
}

impl Interval {
    /// Creates an interval; swaps the ends if given in reverse order.
    pub fn new(a: f64, b: f64) -> Self {
        if a <= b {
            Interval { lo: a, hi: b }
        } else {
            Interval { lo: b, hi: a }
        }
    }

    /// The paper's construction: `[µ−σ, µ+σ]`.
    pub fn mean_pm_sigma(mean: f64, sigma: f64) -> Self {
        let s = sigma.abs();
        Interval {
            lo: mean - s,
            hi: mean + s,
        }
    }

    /// Interval length.
    pub fn length(&self) -> f64 {
        self.hi - self.lo
    }

    /// Length of the intersection with `other` (0 when disjoint) — the
    /// quantity AverageStDevLT maximizes.
    pub fn overlap(&self, other: &Interval) -> f64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }

    /// True if `x` lies inside the closed interval.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Midpoint.
    pub fn center(&self) -> f64 {
        (self.lo + self.hi) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_normalizes_order() {
        let i = Interval::new(5.0, 2.0);
        assert_eq!(i.lo, 2.0);
        assert_eq!(i.hi, 5.0);
    }

    #[test]
    fn mean_pm_sigma_handles_negative_sigma() {
        let i = Interval::mean_pm_sigma(10.0, -2.0);
        assert_eq!(i.lo, 8.0);
        assert_eq!(i.hi, 12.0);
        assert_eq!(i.center(), 10.0);
        assert_eq!(i.length(), 4.0);
    }

    #[test]
    fn overlap_cases() {
        let a = Interval::new(0.0, 10.0);
        assert_eq!(a.overlap(&Interval::new(5.0, 15.0)), 5.0); // partial
        assert_eq!(a.overlap(&Interval::new(2.0, 3.0)), 1.0); // contained
        assert_eq!(a.overlap(&Interval::new(20.0, 30.0)), 0.0); // disjoint
        assert_eq!(a.overlap(&Interval::new(10.0, 20.0)), 0.0); // touching
        assert_eq!(a.overlap(&a), 10.0); // self
    }

    #[test]
    fn degenerate_interval() {
        let p = Interval::new(3.0, 3.0);
        assert_eq!(p.length(), 0.0);
        assert!(p.contains(3.0));
        assert_eq!(p.overlap(&Interval::new(0.0, 10.0)), 0.0);
    }

    proptest! {
        /// Overlap is symmetric, non-negative, and bounded by both lengths.
        #[test]
        fn prop_overlap_properties(
            a in -100.0f64..100.0, b in -100.0f64..100.0,
            c in -100.0f64..100.0, d in -100.0f64..100.0,
        ) {
            let x = Interval::new(a, b);
            let y = Interval::new(c, d);
            let o = x.overlap(&y);
            prop_assert!((o - y.overlap(&x)).abs() < 1e-12);
            prop_assert!(o >= 0.0);
            prop_assert!(o <= x.length() + 1e-12);
            prop_assert!(o <= y.length() + 1e-12);
        }

        /// An interval's overlap with itself is its own length.
        #[test]
        fn prop_self_overlap(a in -100.0f64..100.0, b in -100.0f64..100.0) {
            let x = Interval::new(a, b);
            prop_assert!((x.overlap(&x) - x.length()).abs() < 1e-12);
        }
    }
}
