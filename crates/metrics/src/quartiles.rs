//! Quantiles and five-number summaries (the paper's Fig. 9 box plots).

/// Five-number summary of a sample: min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartileSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

/// Linearly interpolated quantile (the "type 7" estimator used by R and
/// NumPy). `q` must be in `[0, 1]`.
///
/// # Panics
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (avoids repeated sorting when
/// computing several quantiles of the same sample).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

impl QuartileSummary {
    /// Computes the five-number summary of a sample.
    ///
    /// # Panics
    /// Panics if `xs` is empty or contains NaN.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "summary of empty sample");
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in summary input"));
        QuartileSummary {
            min: v[0],
            q1: quantile_sorted(&v, 0.25),
            median: quantile_sorted(&v, 0.5),
            q3: quantile_sorted(&v, 0.75),
            max: v[v.len() - 1],
        }
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        // 0..=8: quartiles interpolate exactly on integers.
        let xs: Vec<f64> = (0..9).map(f64::from).collect();
        let s = QuartileSummary::of(&xs);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.q3, 6.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn interpolated_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.5), 2.5);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = QuartileSummary::of(&[7.0]);
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = QuartileSummary::of(&[9.0, 1.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_sample_panics() {
        let _ = QuartileSummary::of(&[]);
    }

    proptest! {
        /// The summary is ordered: min ≤ q1 ≤ median ≤ q3 ≤ max, and all
        /// quantiles lie within the sample range.
        #[test]
        fn prop_summary_ordered(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = QuartileSummary::of(&xs);
            prop_assert!(s.min <= s.q1);
            prop_assert!(s.q1 <= s.median);
            prop_assert!(s.median <= s.q3);
            prop_assert!(s.q3 <= s.max);
        }

        /// Quantile is monotone in q.
        #[test]
        fn prop_quantile_monotone(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (a, b) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, a) <= quantile(&xs, b) + 1e-9);
        }
    }
}
