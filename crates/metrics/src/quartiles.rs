//! Quantiles and five-number summaries (the paper's Fig. 9 box plots).
//!
//! All entry points reject degenerate samples (empty, or containing NaN)
//! with a typed [`MetricsError`] instead of panicking: a degenerate cell in
//! a supervised sweep must surface as a typed `Failed` hole that siblings
//! survive, not as a panic that the supervisor has to catch.

use std::fmt;

/// A sample was too degenerate to summarize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsError {
    /// The sample contained no observations.
    EmptySample,
    /// The sample contained at least one NaN, which has no order.
    NanSample,
    /// The requested quantile fraction was outside `[0, 1]`.
    FractionOutOfRange,
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::EmptySample => write!(f, "quantile of empty sample"),
            MetricsError::NanSample => write!(f, "NaN in quantile input"),
            MetricsError::FractionOutOfRange => {
                write!(f, "quantile fraction out of [0, 1]")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// Five-number summary of a sample: min, Q1, median, Q3, max.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuartileSummary {
    /// Smallest observation.
    pub min: f64,
    /// First quartile (25th percentile).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest observation.
    pub max: f64,
}

/// Sorts a copy of the sample, rejecting NaN with a typed error.
fn sorted_copy(xs: &[f64]) -> Result<Vec<f64>, MetricsError> {
    if xs.is_empty() {
        return Err(MetricsError::EmptySample);
    }
    if xs.iter().any(|x| x.is_nan()) {
        return Err(MetricsError::NanSample);
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    Ok(v)
}

/// Linearly interpolated quantile (the "type 7" estimator used by R and
/// NumPy). `q` must be in `[0, 1]`.
///
/// Degenerate inputs (empty sample, NaN, out-of-range fraction) return a
/// typed [`MetricsError`] instead of panicking.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64, MetricsError> {
    let v = sorted_copy(xs)?;
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (avoids repeated sorting when
/// computing several quantiles of the same sample).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> Result<f64, MetricsError> {
    if sorted.is_empty() {
        return Err(MetricsError::EmptySample);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(MetricsError::FractionOutOfRange);
    }
    let n = sorted.len();
    if n == 1 {
        return Ok(sorted[0]);
    }
    let pos = q * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

impl QuartileSummary {
    /// Computes the five-number summary of a sample. Empty or NaN-bearing
    /// samples yield a typed [`MetricsError`].
    pub fn of(xs: &[f64]) -> Result<Self, MetricsError> {
        let v = sorted_copy(xs)?;
        Ok(QuartileSummary {
            min: v[0],
            // anp-lint: allow(D003) — non-empty by construction: the public constructor rejects empty sample sets
            q1: quantile_sorted(&v, 0.25).expect("non-empty by construction"),
            // anp-lint: allow(D003) — non-empty by construction: the public constructor rejects empty sample sets
            median: quantile_sorted(&v, 0.5).expect("non-empty by construction"),
            // anp-lint: allow(D003) — non-empty by construction: the public constructor rejects empty sample sets
            q3: quantile_sorted(&v, 0.75).expect("non-empty by construction"),
            max: v[v.len() - 1],
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn summary_of_known_sample() {
        // 0..=8: quartiles interpolate exactly on integers.
        let xs: Vec<f64> = (0..9).map(f64::from).collect();
        let s = QuartileSummary::of(&xs).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 4.0);
        assert_eq!(s.q3, 6.0);
        assert_eq!(s.max, 8.0);
        assert_eq!(s.iqr(), 4.0);
    }

    #[test]
    fn interpolated_quantiles() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn single_element() {
        let s = QuartileSummary::of(&[7.0]).unwrap();
        assert_eq!(s.min, 7.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.max, 7.0);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let s = QuartileSummary::of(&[9.0, 1.0, 5.0]).unwrap();
        assert_eq!(s.min, 1.0);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn empty_sample_is_a_typed_error() {
        assert_eq!(QuartileSummary::of(&[]), Err(MetricsError::EmptySample));
        assert_eq!(quantile(&[], 0.5), Err(MetricsError::EmptySample));
        assert_eq!(quantile_sorted(&[], 0.5), Err(MetricsError::EmptySample));
    }

    #[test]
    fn nan_sample_is_a_typed_error() {
        assert_eq!(
            QuartileSummary::of(&[1.0, f64::NAN]),
            Err(MetricsError::NanSample)
        );
        assert_eq!(quantile(&[f64::NAN], 0.5), Err(MetricsError::NanSample));
    }

    #[test]
    fn out_of_range_fraction_is_a_typed_error() {
        assert_eq!(
            quantile(&[1.0, 2.0], 1.5),
            Err(MetricsError::FractionOutOfRange)
        );
        assert_eq!(
            quantile(&[1.0, 2.0], -0.1),
            Err(MetricsError::FractionOutOfRange)
        );
    }

    #[test]
    fn errors_display_their_cause() {
        assert!(MetricsError::EmptySample.to_string().contains("empty"));
        assert!(MetricsError::NanSample.to_string().contains("NaN"));
        assert!(MetricsError::FractionOutOfRange
            .to_string()
            .contains("[0, 1]"));
    }

    proptest! {
        /// The summary is ordered: min ≤ q1 ≤ median ≤ q3 ≤ max, and all
        /// quantiles lie within the sample range.
        #[test]
        fn prop_summary_ordered(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = QuartileSummary::of(&xs).unwrap();
            prop_assert!(s.min <= s.q1);
            prop_assert!(s.q1 <= s.median);
            prop_assert!(s.median <= s.q3);
            prop_assert!(s.q3 <= s.max);
        }

        /// Quantile is monotone in q.
        #[test]
        fn prop_quantile_monotone(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..100),
            q1 in 0.0f64..1.0,
            q2 in 0.0f64..1.0,
        ) {
            let (a, b) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
            prop_assert!(quantile(&xs, a).unwrap() <= quantile(&xs, b).unwrap() + 1e-9);
        }
    }
}
