//! Streaming moment estimators (Welford's algorithm).

/// Single-pass mean/variance/min/max accumulator.
///
/// Uses Welford's update, which is numerically stable for long streams —
/// important because impact experiments can collect millions of latency
/// samples in nanoseconds, where naive sum-of-squares catastrophically
/// cancels.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Adds every item of an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }

    /// Builds an accumulator from a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = OnlineStats::new();
        s.extend(xs.iter().copied());
        s
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (divides by n; 0 when empty).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by n−1; 0 when n < 2).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Rebuilds an accumulator from its raw state — the exact counterpart
    /// of [`OnlineStats::m2`] and the other accessors, so a serialized
    /// accumulator round-trips bit-for-bit (crash-safe sweep journals
    /// depend on this).
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if n == 0 {
            return OnlineStats::new();
        }
        OnlineStats {
            n,
            mean,
            m2,
            min,
            max,
        }
    }

    /// The raw second central moment `Σ(x−µ)²` — the internal Welford
    /// state, exposed for bit-exact serialization (pair with
    /// [`OnlineStats::from_parts`]).
    pub fn m2(&self) -> f64 {
        self.m2
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_stats_are_well_defined() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn known_values() {
        let s = OnlineStats::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn single_sample_has_zero_variance() {
        let s = OnlineStats::from_slice(&[3.5]);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.mean(), 3.5);
    }

    #[test]
    fn merge_empty_is_identity() {
        let mut a = OnlineStats::from_slice(&[1.0, 2.0, 3.0]);
        let before = a.clone();
        a.merge(&OnlineStats::new());
        assert_eq!(a, before);
        let mut e = OnlineStats::new();
        e.merge(&before);
        assert!((e.mean() - before.mean()).abs() < 1e-12);
    }

    #[test]
    fn stable_for_large_offsets() {
        // Welford must survive a huge common offset where naive sum of
        // squares loses all precision.
        let base = 1e12;
        let s = OnlineStats::from_slice(&[base + 1.0, base + 2.0, base + 3.0]);
        assert!((s.mean() - (base + 2.0)).abs() < 1e-3);
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-3);
    }

    proptest! {
        /// Merging two accumulators equals accumulating the concatenation.
        #[test]
        fn prop_merge_equals_concat(
            a in proptest::collection::vec(-1e6f64..1e6, 0..50),
            b in proptest::collection::vec(-1e6f64..1e6, 0..50),
        ) {
            let mut left = OnlineStats::from_slice(&a);
            left.merge(&OnlineStats::from_slice(&b));
            let mut all = a.clone();
            all.extend_from_slice(&b);
            let full = OnlineStats::from_slice(&all);
            prop_assert_eq!(left.count(), full.count());
            if full.count() > 0 {
                prop_assert!((left.mean() - full.mean()).abs() < 1e-6);
                prop_assert!((left.variance() - full.variance()).abs() < 1e-3);
            }
        }

        /// Variance is never negative and min ≤ mean ≤ max.
        #[test]
        fn prop_invariants(xs in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
            let s = OnlineStats::from_slice(&xs);
            prop_assert!(s.variance() >= 0.0);
            prop_assert!(s.min().unwrap() <= s.mean() + 1e-6);
            prop_assert!(s.mean() <= s.max().unwrap() + 1e-6);
        }
    }
}
